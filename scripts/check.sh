#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Run before sending a PR; CI runs the same three steps.
#
#   scripts/check.sh          # everything
#   scripts/check.sh --quick  # skip the test suite (fmt + clippy only)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo test"
    cargo test --workspace
fi

echo "OK"
