#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, the kinemyo analyzer, and the
# full test suite. Run before sending a PR; CI runs the same steps.
#
#   scripts/check.sh          # everything
#   scripts/check.sh --quick  # skip the test suite (fmt + clippy + analyze)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> kinemyo-analyze (determinism, concurrency & durability lints)"
# Human output (with per-lint counts) is the gate; the JSON emission both
# exercises the machine-readable path and leaves an artifact CI can
# annotate diffs from.
cargo run -q -p kinemyo-analyze
echo "==> kinemyo-analyze --format json (findings artifact)"
ANALYZE_JSON="${ANALYZE_JSON:-$(mktemp)}"
cargo run -q -p kinemyo-analyze -- --format json > "$ANALYZE_JSON"
echo "findings JSON written to $ANALYZE_JSON"

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> cargo test"
    cargo test --workspace

    if [[ "${KINEMYO_SKIP_PERF:-}" != "1" ]]; then
        echo "==> perf smoke (quick benches vs BENCH_baseline.json, >25% fails)"
        # A fresh CRITERION_HOME keeps stale results from older bench runs
        # out of the comparison. Only the compute-bound hot-path benches run
        # here; regenerate the full baseline with scripts/bench_json.sh.
        PERF_DIR="$(mktemp -d)"
        CRITERION_HOME="$PERF_DIR/criterion" KINEMYO_BENCH_QUICK=1 \
            cargo bench -q -p kinemyo-bench --bench feature_extraction
        CRITERION_HOME="$PERF_DIR/criterion" KINEMYO_BENCH_QUICK=1 \
            cargo bench -q -p kinemyo-bench --bench clustering_parallel
        cargo run -q -p kinemyo-bench --bin bench_json -- collect \
            --criterion-dir "$PERF_DIR/criterion" --out "$PERF_DIR/current.json"
        cargo run -q -p kinemyo-bench --bin bench_json -- compare \
            BENCH_baseline.json "$PERF_DIR/current.json" --tolerance 0.25
        rm -rf "$PERF_DIR"

        echo "==> ANN smoke (recall@10 >= 0.95 and >= 10x speedup vs linear at 100k points)"
        # The committed reference numbers live in BENCH_ann.json; regenerate
        # with:  cargo run --release -p kinemyo-bench --bin ann_sweep -- \
        #            --points 100000 --queries 200 --gate --out BENCH_ann.json
        cargo run -q --release -p kinemyo-bench --bin ann_sweep -- \
            --points 100000 --queries 100 --gate
    else
        echo "==> perf smoke skipped (KINEMYO_SKIP_PERF=1)"
    fi

    echo "==> serve smoke test (train -> serve -> client -> shutdown)"
    SMOKE_DIR="$(mktemp -d)"
    trap 'kill "${SERVE_PID:-}" "${NODE_A_PID:-}" "${NODE_B_PID:-}" "${NODE_C_PID:-}" 2>/dev/null; rm -rf "$SMOKE_DIR"' EXIT
    cargo run -q -p kinemyo-cli -- generate --limb hand --participants 1 \
        --trials 2 --out "$SMOKE_DIR/ds.kmyo"
    cargo run -q -p kinemyo-cli -- train --dataset "$SMOKE_DIR/ds.kmyo" \
        --clusters 6 --out "$SMOKE_DIR/model.json"
    cargo run -q -p kinemyo-cli -- serve --model "$SMOKE_DIR/model.json" \
        --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$SMOKE_DIR/port" ]] && break
        sleep 0.1
    done
    [[ -s "$SMOKE_DIR/port" ]] || { echo "server never bound"; exit 1; }
    ADDR="$(tr -d '[:space:]' < "$SMOKE_DIR/port")"
    cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op health
    cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op classify \
        --dataset "$SMOKE_DIR/ds.kmyo" --record 0
    cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op stats
    cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op shutdown
    wait "$SERVE_PID"
    SERVE_PID=""

    echo "==> streaming smoke test (replay session -> drift retrain -> byte-equal re-classify)"
    # Two fresh daemons run the identical seeded replay with an armed
    # drift detector; everything downstream of the socket is
    # deterministic, so the rolling windows, the drift-triggered hot
    # re-trains, and a post-retrain classification must agree byte for
    # byte across the two runs.
    STREAM_A=""
    STREAM_B=""
    for RUN in a b; do
        rm -f "$SMOKE_DIR/port"
        cargo run -q -p kinemyo-cli -- serve --model "$SMOKE_DIR/model.json" \
            --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" \
            --session-retrain "$SMOKE_DIR/ds.kmyo" --session-drift 0.8:4:2:6:8 &
        SERVE_PID=$!
        for _ in $(seq 1 100); do
            [[ -s "$SMOKE_DIR/port" ]] && break
            sleep 0.1
        done
        [[ -s "$SMOKE_DIR/port" ]] || { echo "streaming server never bound"; exit 1; }
        ADDR="$(tr -d '[:space:]' < "$SMOKE_DIR/port")"
        cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op stream \
            --replay hand:1:3:2007 > "$SMOKE_DIR/stream_$RUN"
        cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op classify \
            --dataset "$SMOKE_DIR/ds.kmyo" --record 0 > "$SMOKE_DIR/reclassify_$RUN"
        cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op shutdown
        wait "$SERVE_PID"
        SERVE_PID=""
    done
    grep -q 'cluster=' "$SMOKE_DIR/stream_a" \
        || { echo "stream produced no rolling windows"; exit 1; }
    grep -q ' 0 rejected frames' "$SMOKE_DIR/stream_a" \
        || { echo "replay frames were rejected"; exit 1; }
    grep -q 'retrained=true' "$SMOKE_DIR/stream_a" \
        || { echo "drift never triggered a hot re-train"; exit 1; }
    cmp -s "$SMOKE_DIR/stream_a" "$SMOKE_DIR/stream_b" \
        || { echo "identical replays produced different rolling results"; exit 1; }
    cmp -s "$SMOKE_DIR/reclassify_a" "$SMOKE_DIR/reclassify_b" \
        || { echo "post-retrain models diverged across runs"; exit 1; }

    echo "==> durability smoke test (ingest -> restart -> verify)"
    # First daemon life: ingest one motion into the durable store.
    rm -f "$SMOKE_DIR/port"
    cargo run -q -p kinemyo-cli -- serve --model "$SMOKE_DIR/model.json" \
        --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" \
        --store "$SMOKE_DIR/store" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$SMOKE_DIR/port" ]] && break
        sleep 0.1
    done
    [[ -s "$SMOKE_DIR/port" ]] || { echo "server never bound"; exit 1; }
    ADDR="$(tr -d '[:space:]' < "$SMOKE_DIR/port")"
    cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op insert \
        --dataset "$SMOKE_DIR/ds.kmyo" --record 0 | grep -q '"durable":true' \
        || { echo "insert was not acknowledged durably"; exit 1; }
    cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op persist
    cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op shutdown
    wait "$SERVE_PID"
    SERVE_PID=""
    # Offline view agrees, then a second daemon life recovers the motion.
    cargo run -q -p kinemyo-cli -- db stats --dir "$SMOKE_DIR/store"
    rm -f "$SMOKE_DIR/port"
    cargo run -q -p kinemyo-cli -- serve --model "$SMOKE_DIR/model.json" \
        --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" \
        --store "$SMOKE_DIR/store" &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$SMOKE_DIR/port" ]] && break
        sleep 0.1
    done
    [[ -s "$SMOKE_DIR/port" ]] || { echo "restarted server never bound"; exit 1; }
    ADDR="$(tr -d '[:space:]' < "$SMOKE_DIR/port")"
    BEFORE_JSON="$(cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op health)"
    echo "$BEFORE_JSON"
    # One training set of 12 motions (6 classes x 2 trials) + 1 ingested.
    echo "$BEFORE_JSON" | grep -q '"motions":13' \
        || { echo "restart lost the ingested motion"; exit 1; }
    cargo run -q -p kinemyo-cli -- client --addr "$ADDR" --op shutdown
    wait "$SERVE_PID"
    SERVE_PID=""

    echo "==> cluster smoke test (3 nodes -> ingest -> kill leader -> failover)"
    # Follower replication ports are fixed up front so each follower's
    # peer list can name the other before either has started.
    REPL_B="127.0.0.1:$((21000 + RANDOM % 9000))"
    REPL_C="$REPL_B"
    while [[ "$REPL_C" == "$REPL_B" ]]; do
        REPL_C="127.0.0.1:$((21000 + RANDOM % 9000))"
    done
    rm -f "$SMOKE_DIR/port_a" "$SMOKE_DIR/port_b" "$SMOKE_DIR/port_c"
    cargo run -q -p kinemyo-cli -- cluster node --model "$SMOKE_DIR/model.json" \
        --store "$SMOKE_DIR/store_a" --node-id 1 --heartbeat-ms 50 \
        --election-timeout-ms 300 --port-file "$SMOKE_DIR/port_a" &
    NODE_A_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$SMOKE_DIR/port_a" ]] && break
        sleep 0.1
    done
    [[ -s "$SMOKE_DIR/port_a" ]] || { echo "cluster leader never bound"; exit 1; }
    SERVE_A="$(sed -n 1p "$SMOKE_DIR/port_a" | tr -d '[:space:]')"
    REPL_A="$(sed -n 2p "$SMOKE_DIR/port_a" | tr -d '[:space:]')"
    cargo run -q -p kinemyo-cli -- cluster node --model "$SMOKE_DIR/model.json" \
        --store "$SMOKE_DIR/store_b" --node-id 2 --repl-addr "$REPL_B" \
        --leader "$REPL_A" --peers "$REPL_A,$REPL_C" --heartbeat-ms 50 \
        --election-timeout-ms 300 --port-file "$SMOKE_DIR/port_b" &
    NODE_B_PID=$!
    cargo run -q -p kinemyo-cli -- cluster node --model "$SMOKE_DIR/model.json" \
        --store "$SMOKE_DIR/store_c" --node-id 3 --repl-addr "$REPL_C" \
        --leader "$REPL_A" --peers "$REPL_A,$REPL_B" --heartbeat-ms 50 \
        --election-timeout-ms 300 --port-file "$SMOKE_DIR/port_c" &
    NODE_C_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$SMOKE_DIR/port_b" && -s "$SMOKE_DIR/port_c" ]] && break
        sleep 0.1
    done
    [[ -s "$SMOKE_DIR/port_b" && -s "$SMOKE_DIR/port_c" ]] \
        || { echo "cluster followers never bound"; exit 1; }
    SERVE_B="$(sed -n 1p "$SMOKE_DIR/port_b" | tr -d '[:space:]')"
    SERVE_C="$(sed -n 1p "$SMOKE_DIR/port_c" | tr -d '[:space:]')"
    # Ingest through the leader, then wait until both replicas see the
    # motion (12 trained + 1 ingested).
    cargo run -q -p kinemyo-cli -- client --addr "$SERVE_A" --op insert \
        --dataset "$SMOKE_DIR/ds.kmyo" --record 0 | grep -q '"durable":true' \
        || { echo "cluster insert was not durable"; exit 1; }
    for FOLLOWER in "$SERVE_B" "$SERVE_C"; do
        for _ in $(seq 1 100); do
            cargo run -q -p kinemyo-cli -- client --addr "$FOLLOWER" --op health \
                | grep -q '"motions":13' && break
            sleep 0.1
        done
        cargo run -q -p kinemyo-cli -- client --addr "$FOLLOWER" --op health \
            | grep -q '"motions":13' \
            || { echo "follower $FOLLOWER never replicated the insert"; exit 1; }
    done
    # A follower must refuse writes with a typed redirect.
    cargo run -q -p kinemyo-cli -- client --addr "$SERVE_B" --op insert \
        --dataset "$SMOKE_DIR/ds.kmyo" --record 1 | grep -q '"not_leader"' \
        || { echo "follower accepted a write"; exit 1; }
    BEFORE="$(cargo run -q -p kinemyo-cli -- client --addr "$SERVE_A" --op classify \
        --dataset "$SMOKE_DIR/ds.kmyo" --record 1)"
    # Kill the leader and wait for a follower to promote itself.
    cargo run -q -p kinemyo-cli -- client --addr "$SERVE_A" --op shutdown
    wait "$NODE_A_PID"
    NODE_A_PID=""
    PROMOTED=""
    for _ in $(seq 1 200); do
        for CAND in "$SERVE_B" "$SERVE_C"; do
            if cargo run -q -p kinemyo-cli -- client --addr "$CAND" --op health \
                | grep -q '"role":"leader"'; then
                PROMOTED="$CAND"
                break 2
            fi
        done
        sleep 0.1
    done
    [[ -n "$PROMOTED" ]] || { echo "no follower promoted itself"; exit 1; }
    # The promoted replica serves the dead leader's exact answers and
    # accepts writes.
    AFTER="$(cargo run -q -p kinemyo-cli -- client --addr "$PROMOTED" --op classify \
        --dataset "$SMOKE_DIR/ds.kmyo" --record 1)"
    [[ "$AFTER" == "$BEFORE" ]] \
        || { echo "promoted follower diverged from the dead leader"; exit 1; }
    cargo run -q -p kinemyo-cli -- client --addr "$PROMOTED" --op insert \
        --dataset "$SMOKE_DIR/ds.kmyo" --record 2 | grep -q '"durable":true' \
        || { echo "promoted leader refused a write"; exit 1; }
    cargo run -q -p kinemyo-cli -- client --addr "$SERVE_B" --op shutdown || true
    cargo run -q -p kinemyo-cli -- client --addr "$SERVE_C" --op shutdown || true
    wait "$NODE_B_PID" "$NODE_C_PID"
    NODE_B_PID=""
    NODE_C_PID=""
fi

echo "OK"
