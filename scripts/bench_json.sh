#!/usr/bin/env bash
# Runs the tracked criterion benches and emits the flat bench-JSON map
# (schema: kinemyo-bench-json/1, see DESIGN.md §13).
#
#   scripts/bench_json.sh                        # full sampling, JSON to stdout
#   scripts/bench_json.sh --quick                # reduced sampling
#   scripts/bench_json.sh --out BENCH_baseline.json   # (re)record the baseline
#
# Flags may be combined. The emitted numbers are mean nanoseconds per
# iteration per bench id; regenerate the committed baseline only on the
# reference machine configuration noted in EXPERIMENTS.md.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
OUT=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick) QUICK=1; shift ;;
        --out) OUT="$2"; shift 2 ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
done

BENCHES=(feature_extraction clustering_parallel serve_throughput store_ingest)
for bench in "${BENCHES[@]}"; do
    echo "==> cargo bench --bench $bench" >&2
    if [[ -n "$QUICK" ]]; then
        KINEMYO_BENCH_QUICK=1 cargo bench -q -p kinemyo-bench --bench "$bench"
    else
        cargo bench -q -p kinemyo-bench --bench "$bench"
    fi
done

if [[ -n "$OUT" ]]; then
    cargo run -q -p kinemyo-bench --bin bench_json -- collect --out "$OUT"
    echo "wrote $OUT" >&2
else
    cargo run -q -p kinemyo-bench --bin bench_json -- collect
fi
