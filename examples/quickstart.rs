//! Quickstart: generate a synthetic test bed, train the paper's pipeline,
//! and classify held-out motions.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use kinemyo::biosim::{Dataset, DatasetSpec};
use kinemyo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small right-hand test bed: 2 participants × 4 trials of each of
    //    the 6 hand motion classes, captured by the simulated synchronized
    //    mocap + EMG chain.
    println!("generating synthetic test bed ...");
    let dataset = Dataset::generate(DatasetSpec::hand_default().with_size(2, 4))?;
    println!(
        "  {} records, {} classes, limb = {}",
        dataset.len(),
        dataset.classes().len(),
        dataset.spec.limb
    );

    // 2. Hold the last trial of every (participant, class) out as queries.
    let (train, queries) = stratified_split(&dataset.records, 1);
    println!(
        "  {} training motions, {} queries",
        train.len(),
        queries.len()
    );

    // 3. Train: window features (IAV + weighted SVD) → fuzzy c-means →
    //    2c-length min/max membership vectors → feature database.
    let config = PipelineConfig::builder()
        .window_ms(100.0)
        .clusters(12)
        .build()?;
    let model = MotionClassifier::train(&train, dataset.spec.limb, &config)?;
    println!(
        "trained: {} motions in db, {} clusters, {}-d window points\n",
        model.db().len(),
        model.fcm().num_clusters(),
        model.point_dim()
    );

    // 4. Classify every query and report.
    let mut correct = 0;
    for q in &queries {
        let result = model.classify_record(q)?;
        let ok = result.predicted == q.class;
        correct += ok as usize;
        println!(
            "query {:>3} truth={:<12} predicted={:<12} {}  (nearest: {} @ {:.3})",
            q.id,
            q.class.to_string(),
            result.predicted.to_string(),
            if ok { "✓" } else { "✗" },
            result.neighbors[0].meta.class,
            result.neighbors[0].distance,
        );
    }
    println!(
        "\n{}/{} queries correct ({:.1}%)",
        correct,
        queries.len(),
        correct as f64 / queries.len() as f64 * 100.0
    );
    Ok(())
}
