//! Prosthetic-control style streaming classification. The paper (Sec. 5):
//! "To analyze just one limb makes more sense in prosthetic control and
//! medical rehabilitation of single limb." A controller cannot wait for a
//! full recording — this example feeds synchronized frames one at a time
//! and watches the classifier's belief evolve window by window.
//!
//! ```bash
//! cargo run --release --example prosthetic_control
//! ```

use kinemyo::biosim::{Dataset, DatasetSpec};
use kinemyo::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training the hand model ...");
    let dataset = Dataset::generate(DatasetSpec::hand_default().with_size(2, 5))?;
    // Train on all but the last trial per (participant, class).
    let (train, queries): (Vec<&MotionRecord>, Vec<&MotionRecord>) =
        stratified_split(&dataset.records, 1);
    let config = PipelineConfig::default()
        .with_window_ms(100.0)
        .with_clusters(12);
    let model = MotionClassifier::train(&train, Limb::RightHand, &config)?;

    // Stream three different query motions through one reusable session.
    let mut session = StreamingSession::new(&model);
    for q in queries.iter().take(3) {
        session.reset();
        println!(
            "\nstreaming query {} (truth: {}) — {} frames at 120 Hz",
            q.id,
            q.class,
            q.frames()
        );
        let mut decisions: Vec<String> = Vec::new();
        let started = Instant::now();
        let mut per_frame_worst_ns = 0u128;
        for f in 0..q.frames() {
            let pelvis = [q.pelvis[f].x, q.pelvis[f].y, q.pelvis[f].z];
            let t0 = Instant::now();
            let completed = session.push_frame(q.mocap.row(f), pelvis, q.emg.row(f))?;
            per_frame_worst_ns = per_frame_worst_ns.max(t0.elapsed().as_nanos());
            if let Some(assignment) = completed {
                // A window just closed: re-classify with what we have.
                if let Some((predicted, _)) = session.classify(5)? {
                    decisions.push(format!(
                        "w{:<3} cluster {:<2} (h={:.2}) → {}",
                        session.windows_seen(),
                        assignment.cluster,
                        assignment.membership,
                        predicted
                    ));
                }
            }
        }
        let total = started.elapsed();
        // Show the belief trajectory, sparsely.
        let every = (decisions.len() / 6).max(1);
        for d in decisions.iter().step_by(every) {
            println!("  {d}");
        }
        if let Some((final_class, neighbors)) = session.classify(5)? {
            println!(
                "  final: {} ({}) — top neighbour {} at {:.3}",
                final_class,
                if final_class == q.class {
                    "correct"
                } else {
                    "WRONG"
                },
                neighbors[0].meta.class,
                neighbors[0].distance
            );
        }
        println!(
            "  processed {} frames in {:.1} ms (worst single frame {:.2} ms) — \
             {:.0}x faster than real time",
            q.frames(),
            total.as_secs_f64() * 1e3,
            per_frame_worst_ns as f64 / 1e6,
            (q.frames() as f64 / 120.0) / total.as_secs_f64()
        );
    }
    Ok(())
}
