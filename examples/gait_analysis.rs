//! Gait / lower-limb analysis: the paper motivates the integration of
//! motion capture and EMG with "gait analysis and several orthopedic
//! applications". This example evaluates the right-leg pipeline and prints
//! a per-class clinical-style report: confusion matrix, per-class recall,
//! and the EMG channel balance (front-shin vs back-shin activity) that a
//! physical therapist would inspect.
//!
//! ```bash
//! cargo run --release --example gait_analysis
//! ```

use kinemyo::biosim::{Dataset, DatasetSpec};
use kinemyo::class_index;
use kinemyo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating right-leg test bed ...");
    let dataset = Dataset::generate(DatasetSpec::leg_default().with_size(3, 6))?;
    let classes = MotionClass::all_for(Limb::RightLeg);

    // EMG balance per class: mean front-shin vs back-shin envelope.
    println!("\nEMG channel balance (mean envelope, µV):");
    println!(
        "{:>12} {:>12} {:>12} {:>8}",
        "class", "front shin", "back shin", "ratio"
    );
    for &class in classes {
        let (mut front, mut back, mut n) = (0.0, 0.0, 0usize);
        for r in dataset.records.iter().filter(|r| r.class == class) {
            for f in 0..r.frames() {
                front += r.emg[(f, 0)];
                back += r.emg[(f, 1)];
            }
            n += r.frames();
        }
        let (front, back) = (front / n as f64 * 1e6, back / n as f64 * 1e6);
        println!(
            "{:>12} {:>12.2} {:>12.2} {:>8.2}",
            class.to_string(),
            front,
            back,
            front / back.max(1e-9)
        );
    }

    // Train/evaluate with the paper's defaults.
    let (train, queries) = stratified_split(&dataset.records, 2);
    let config = PipelineConfig::default()
        .with_window_ms(150.0)
        .with_clusters(15);
    let outcome = evaluate(&train, &queries, Limb::RightLeg, &config)?;

    println!(
        "\nclassification over {} held-out trials: misclassification {:.1}%, kNN-correct {:.1}%",
        outcome.queries, outcome.misclassification_pct, outcome.knn_correct_pct
    );

    // Confusion matrix.
    println!("\nconfusion matrix (rows = truth, cols = predicted):");
    print!("{:>12}", "");
    for &c in classes {
        print!("{:>11}", c.to_string());
    }
    println!();
    for &truth in classes {
        print!("{:>12}", truth.to_string());
        for &pred in classes {
            print!(
                "{:>11}",
                outcome.confusion.get(
                    class_index(Limb::RightLeg, truth),
                    class_index(Limb::RightLeg, pred)
                )
            );
        }
        println!();
    }

    println!("\nper-class recall:");
    for &c in classes {
        match outcome.confusion.recall(class_index(Limb::RightLeg, c)) {
            Some(r) => println!("  {:<12} {:>6.1}%", c.to_string(), r * 100.0),
            None => println!("  {:<12} (no queries)", c.to_string()),
        }
    }
    Ok(())
}
