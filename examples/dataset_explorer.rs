//! Dataset exploration and persistence: generate a synchronized test bed,
//! print the acquisition-level statistics a lab notebook would record
//! (per-class duration, EMG envelope scale, marker excursion), save it to
//! JSON, and load it back.
//!
//! ```bash
//! cargo run --release --example dataset_explorer
//! ```

use kinemyo::biosim::{Dataset, DatasetSpec};
use kinemyo::prelude::*;
use kinemyo_linalg::stats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::hand_default().with_size(2, 3);
    println!("generating: {spec:#?}\n");
    let dataset = Dataset::generate(spec)?;

    println!(
        "{:>12} {:>7} {:>12} {:>16} {:>18}",
        "class", "trials", "mean dur (s)", "biceps RMS (µV)", "wrist range (mm)"
    );
    for &class in MotionClass::all_for(dataset.spec.limb) {
        let records: Vec<_> = dataset
            .records
            .iter()
            .filter(|r| r.class == class)
            .collect();
        let durations: Vec<f64> = records.iter().map(|r| r.frames() as f64 / 120.0).collect();
        // Biceps = EMG channel 0 for the hand limb.
        let mut rms_values = Vec::new();
        let mut ranges = Vec::new();
        for r in &records {
            let biceps: Vec<f64> = (0..r.frames()).map(|f| r.emg[(f, 0)]).collect();
            rms_values.push(stats::rms(&biceps)? * 1e6);
            // Wrist (radius marker) vertical excursion, columns 6..9 → y=7.
            let ys: Vec<f64> = (0..r.frames()).map(|f| r.mocap[(f, 7)]).collect();
            ranges.push(stats::max(&ys)? - stats::min(&ys)?);
        }
        println!(
            "{:>12} {:>7} {:>12.2} {:>16.2} {:>18.0}",
            class.to_string(),
            records.len(),
            stats::mean(&durations)?,
            stats::mean(&rms_values)?,
            stats::mean(&ranges)?
        );
    }

    // Persistence round-trip.
    let path = std::env::temp_dir().join("kinemyo_dataset.json");
    dataset.save_json(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "\nsaved {} records to {} ({:.1} MiB)",
        dataset.len(),
        path.display(),
        bytes as f64 / (1024.0 * 1024.0)
    );
    let reloaded = Dataset::load_json(&path)?;
    assert_eq!(reloaded.len(), dataset.len());
    assert!(reloaded.records[0]
        .mocap
        .approx_eq(&dataset.records[0].mocap, 0.0));
    println!(
        "reload verified: {} records, bit-identical mocap matrices",
        reloaded.len()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
