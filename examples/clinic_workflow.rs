//! Clinic workflow: train once, persist the model, reload it in a later
//! session and keep classifying — the deployment pattern the paper's
//! prosthetic-control and rehabilitation motivation implies.
//!
//! ```bash
//! cargo run --release --example clinic_workflow
//! ```

use kinemyo::biosim::{Dataset, DatasetSpec};
use kinemyo::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model_path = std::env::temp_dir().join("kinemyo_clinic_model.json");

    // ---- Session 1: calibration day --------------------------------------
    println!("[session 1] capturing calibration trials ...");
    let dataset = Dataset::generate(DatasetSpec::leg_default().with_size(1, 5))?;
    let (train, _) = stratified_split(&dataset.records, 1);

    // Pick the cluster count without labels (Xie-Beni).
    let base = PipelineConfig::default().with_window_ms(150.0);
    let selection = select_cluster_count(&train, &base, &[4, 6, 8, 12])?;
    println!(
        "[session 1] unsupervised cluster selection chose c = {} from {:?}",
        selection.best,
        selection
            .candidates
            .iter()
            .map(|c| c.clusters)
            .collect::<Vec<_>>()
    );

    let model = MotionClassifier::train(
        &train,
        dataset.spec.limb,
        &base.with_clusters(selection.best),
    )?;
    model.save_json(&model_path)?;
    println!(
        "[session 1] model saved to {} ({:.1} KiB)",
        model_path.display(),
        std::fs::metadata(&model_path)?.len() as f64 / 1024.0
    );
    drop(model);

    // ---- Session 2: a later day, fresh process ---------------------------
    println!("\n[session 2] loading persisted model ...");
    let model = MotionClassifier::load_json(&model_path)?;
    println!(
        "[session 2] restored: {} motions, {} clusters, limb {}",
        model.db().len(),
        model.fcm().num_clusters(),
        model.limb()
    );
    // New recordings from the same patient (new seed → new trials).
    let todays = Dataset::generate(DatasetSpec::leg_default().with_size(1, 2).with_seed(777))?;
    // Classify the whole visit in one batched call — queries fan out
    // across worker threads per the model's thread policy.
    let queries: Vec<&MotionRecord> = todays.records.iter().collect();
    let mut correct = 0;
    for (r, result) in queries.iter().zip(model.classify_batch(&queries)) {
        let c = result?;
        let ok = c.predicted == r.class;
        correct += ok as usize;
        println!(
            "  record {:>2} truth={:<11} predicted={:<11} {}",
            r.id,
            r.class.to_string(),
            c.predicted.to_string(),
            if ok { "✓" } else { "✗" }
        );
    }
    println!(
        "\n{}/{} of today's motions recognized by the restored model",
        correct,
        todays.len()
    );
    std::fs::remove_file(&model_path).ok();
    Ok(())
}
