//! Capped exponential backoff with seeded jitter.
//!
//! Shared by [`ServeClient::connect_with_retry`](crate::ServeClient::connect_with_retry)
//! and the cluster router's per-shard retry loop. The jitter source is a
//! SplitMix64 stream seeded from the policy, never wall-clock entropy, so
//! a retry schedule is a pure function of `(policy, attempt)` — tests
//! replay the exact same sleeps every run, in line with the workspace's
//! `unseeded-rng` lint.

use std::time::Duration;

/// Knobs of one retry schedule.
///
/// Attempt `n` (0-based) sleeps `jitter(min(cap, base·2ⁿ))` before
/// retrying, where `jitter(d)` draws uniformly from `[d/2, d]` ("equal
/// jitter" — enough spread to de-synchronize a thundering herd while
/// keeping a deterministic lower bound on spacing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First delay, before doubling.
    pub base: Duration,
    /// Upper bound a doubled delay is clamped to.
    pub cap: Duration,
    /// Total attempts (the first try counts; `1` means no retries).
    pub max_attempts: u32,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            max_attempts: 5,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Sets the initial delay.
    pub fn with_base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Sets the delay cap.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Sets the total attempt budget.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets the jitter seed (vary it per client/shard so replicas do not
    /// retry in lockstep).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Starts a fresh schedule over this policy.
    pub fn schedule(&self) -> Backoff {
        Backoff {
            policy: self.clone(),
            attempt: 0,
            state: self.seed,
        }
    }
}

/// An in-progress schedule: yields the sleep before each retry.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// Delay to sleep before the *next* attempt, or `None` once the
    /// attempt budget is spent (the caller should give up with a typed
    /// `Unavailable`).
    pub fn next_delay(&mut self) -> Option<Duration> {
        // max_attempts total tries ⇒ max_attempts - 1 sleeps between them.
        if self.attempt + 1 >= self.policy.max_attempts {
            return None;
        }
        let exp = self.attempt.min(62);
        self.attempt += 1;
        let uncapped = self
            .policy
            .base
            .checked_mul(1u32 << exp.min(31))
            .unwrap_or(self.policy.cap);
        let full = uncapped.min(self.policy.cap).max(Duration::from_micros(1));
        // Equal jitter: uniform in [full/2, full].
        let span_us = (full.as_micros() / 2).max(1) as u64;
        let jitter_us = splitmix64(&mut self.state) % span_us;
        Some(full - Duration::from_micros(span_us) + Duration::from_micros(jitter_us + 1))
    }

    /// Attempts taken so far (completed `next_delay` calls + 1 for the
    /// initial try).
    pub fn attempts(&self) -> u32 {
        self.attempt + 1
    }
}

/// One step of the SplitMix64 stream: updates `state`, returns the output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let policy = RetryPolicy::default().with_seed(7);
        let mut s1 = policy.schedule();
        let mut s2 = policy.schedule();
        for _ in 0..4 {
            assert_eq!(s1.next_delay(), s2.next_delay());
        }
    }

    #[test]
    fn delays_double_up_to_the_cap_within_jitter_bounds() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(40),
            max_attempts: 6,
            seed: 42,
        };
        let mut schedule = policy.schedule();
        let mut fulls = vec![10u64, 20, 40, 40, 40];
        fulls.truncate(5); // 6 attempts ⇒ 5 sleeps
        for full_ms in fulls {
            let d = schedule.next_delay().expect("within budget");
            let lo = Duration::from_millis(full_ms) / 2;
            let hi = Duration::from_millis(full_ms);
            assert!(d >= lo && d <= hi, "{d:?} outside [{lo:?}, {hi:?}]");
        }
        assert_eq!(schedule.next_delay(), None, "budget must be bounded");
    }

    #[test]
    fn single_attempt_policy_never_sleeps() {
        let mut schedule = RetryPolicy::default().with_max_attempts(1).schedule();
        assert_eq!(schedule.next_delay(), None);
        assert_eq!(schedule.attempts(), 1);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = RetryPolicy::default().with_seed(1).schedule();
        let mut b = RetryPolicy::default().with_seed(2).schedule();
        let mut differed = false;
        for _ in 0..4 {
            if a.next_delay() != b.next_delay() {
                differed = true;
            }
        }
        assert!(differed, "seeds 1 and 2 produced identical schedules");
    }
}
