//! The classification daemon: acceptor → bounded queue → micro-batcher →
//! worker pool, with hot model reload and graceful drain.
//!
//! Thread layout (all plain std threads; no async runtime):
//!
//! ```text
//! acceptor ──spawns──▶ connection threads (one per client)
//!                         │  try_send — full queue ⇒ typed `overloaded`
//!                         ▼
//!                 bounded job queue (sync_channel)
//!                         │
//!                      batcher  — coalesces ≤ batch_max jobs per
//!                         │       batch_wait, expires stale jobs
//!                         ▼
//!                 bounded batch channel
//!                         │
//!                  worker pool (×N) — SharedModel::load() once per
//!                         │           batch ⇒ reload-safe snapshot
//!                         ▼
//!            MotionClassifier::classify_batch
//! ```
//!
//! Shedding happens at the *entrance*: a connection thread's `try_send`
//! onto the bounded queue either succeeds or immediately produces a
//! typed `overloaded` response, so memory use is constant no matter the
//! offered load. Shutdown is a drain: the flag stops new work, queued
//! jobs still get answers, and every thread exits through channel
//! disconnection — no thread is ever killed mid-request.

use crate::protocol::{
    decode_frame, write_frame, BatchItem, Request, Response, Role, ServeError, MAX_FRAME_BYTES,
};
use crate::stats::{StatsCollector, StatsSnapshot};
use kinemyo::pipeline::RecordMeta;
use kinemyo::{MotionClassifier, SharedModel};
use kinemyo_biosim::MotionRecord;
use kinemyo_session::{RetrainSource, SessionConfig, SessionEngine};
use kinemyo_store::{DurableDb, StoreConfig};
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`]. The defaults suit an interactive
/// deployment: shallow queue (bounded latency), small batch window
/// (coalesce bursts without adding visible delay).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Bounded request-queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Most jobs coalesced into one `classify_batch` call.
    pub batch_max: usize,
    /// How long the batcher waits to fill a batch after the first job.
    pub batch_wait: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Queue-time budget per request; jobs older than this are expired
    /// with a typed `deadline_exceeded` instead of being computed.
    pub request_deadline: Duration,
    /// Artificial delay before each batch executes. A fault-injection
    /// knob in the spirit of `kinemyo-biosim::faults`: tests and load
    /// experiments use it to make overload and drain scenarios
    /// deterministic. Keep at zero in production.
    pub worker_delay: Duration,
    /// Directory of the durable store backing `insert` requests. When
    /// set, the store is opened (or created) at startup, its recovered
    /// motions are grafted into the model's database, and every ingest
    /// is WAL-logged before it is acknowledged. `None` keeps ingestion
    /// memory-only.
    pub store_dir: Option<PathBuf>,
    /// Slow-loris guard: once the first byte of a frame has arrived,
    /// the rest must follow within this budget or the connection is
    /// answered with a typed error and closed. A peer trickling one
    /// byte per poll interval can therefore pin a connection thread for
    /// at most this long, not forever.
    pub frame_timeout: Duration,
    /// Streaming-session knobs: table capacity, idle timeout, window
    /// arms, drift thresholds.
    pub session: SessionConfig,
    /// Re-train corpus arming the drift-adaptation loop. `None` leaves
    /// drift triggers observed-but-inert (no hot re-train).
    pub session_retrain: Option<Arc<RetrainSource>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 256,
            batch_max: 16,
            batch_wait: Duration::from_millis(2),
            workers: 2,
            request_deadline: Duration::from_secs(5),
            worker_delay: Duration::ZERO,
            store_dir: None,
            frame_timeout: Duration::from_secs(30),
            session: SessionConfig::default(),
            session_retrain: None,
        }
    }
}

impl ServeConfig {
    /// Sets the listen address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the bounded queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the micro-batch size budget.
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// Sets the micro-batch time budget.
    pub fn with_batch_wait(mut self, batch_wait: Duration) -> Self {
        self.batch_wait = batch_wait;
        self
    }

    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-request queue-time budget.
    pub fn with_request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Sets the fault-injection worker delay (tests only).
    pub fn with_worker_delay(mut self, delay: Duration) -> Self {
        self.worker_delay = delay;
        self
    }

    /// Sets the durable-store directory backing `insert` requests.
    pub fn with_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Sets the per-frame completion budget (slow-loris guard).
    pub fn with_frame_timeout(mut self, timeout: Duration) -> Self {
        self.frame_timeout = timeout;
        self
    }

    /// Sets the streaming-session knobs.
    pub fn with_session_config(mut self, session: SessionConfig) -> Self {
        self.session = session;
        self
    }

    /// Arms the drift-adaptation loop with its re-train corpus.
    pub fn with_session_retrain(mut self, source: impl Into<Arc<RetrainSource>>) -> Self {
        self.session_retrain = Some(source.into());
        self
    }

    /// Rejects configurations that would deadlock or never serve.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::Config {
                reason: "queue_capacity must be >= 1 (0 would rendezvous every request)".into(),
            });
        }
        if self.batch_max == 0 {
            return Err(ServeError::Config {
                reason: "batch_max must be >= 1".into(),
            });
        }
        if self.workers == 0 {
            return Err(ServeError::Config {
                reason: "workers must be >= 1".into(),
            });
        }
        if self.request_deadline.is_zero() {
            return Err(ServeError::Config {
                reason: "request_deadline must be > 0".into(),
            });
        }
        if self.frame_timeout.is_zero() {
            return Err(ServeError::Config {
                reason: "frame_timeout must be > 0".into(),
            });
        }
        self.session.validate().map_err(|e| ServeError::Config {
            reason: e.to_string(),
        })?;
        Ok(())
    }
}

/// One queued classification job. `resp` routes the answer back to the
/// connection thread that submitted it; `index` is its position within
/// the client's request (0 for single classifies).
struct Job {
    record: MotionRecord,
    index: usize,
    resp: SyncSender<(usize, BatchItem)>,
    enqueued: Instant,
    deadline: Instant,
}

/// The node's live cluster role: readable lock-free on the dispatch hot
/// path, flippable at any moment by the cluster layer (promotion turns a
/// follower into a leader while its connections keep serving).
pub(crate) struct RoleCell {
    /// Encoded [`Role`] (`Single`=0, `Leader`=1, `Follower`=2, `Router`=3).
    state: AtomicU8,
    /// Where a follower redirects writers; rewritten on promotion.
    leader_hint: Mutex<Option<String>>,
}

impl RoleCell {
    fn new() -> Self {
        Self {
            state: AtomicU8::new(0),
            leader_hint: Mutex::new(None),
        }
    }

    fn get(&self) -> Role {
        match self.state.load(Ordering::Acquire) {
            1 => Role::Leader,
            2 => Role::Follower,
            3 => Role::Router,
            _ => Role::Single,
        }
    }

    fn set(&self, role: Role, leader_hint: Option<String>) {
        *self.leader_hint.lock() = leader_hint;
        let code = match role {
            Role::Single => 0,
            Role::Leader => 1,
            Role::Follower => 2,
            Role::Router => 3,
        };
        self.state.store(code, Ordering::Release);
    }

    fn hint(&self) -> Option<String> {
        self.leader_hint.lock().clone()
    }
}

/// State shared by every server thread.
struct ServerShared {
    model: SharedModel,
    model_path: Option<PathBuf>,
    /// Durable store grafted onto the model's database; `None` when the
    /// server was started without a store directory. Shared with the
    /// cluster layer, which replicates through the same store handle.
    store: Option<Arc<DurableDb<RecordMeta>>>,
    /// Cluster role gating mutating ops (follower ⇒ `NotLeader`).
    role: RoleCell,
    /// Serializes id allocation with the insert that claims the id, so
    /// two concurrent ingests can never race to the same fresh id.
    ingest: Mutex<()>,
    /// The streaming-session engine; session ops dispatch into it
    /// directly on connection threads (no batcher hop — a frame push is
    /// O(d) per frame and latency-bound, not throughput-bound).
    sessions: SessionEngine,
    stats: StatsCollector,
    shutting_down: AtomicBool,
    started: Instant,
    config: ServeConfig,
}

impl ServerShared {
    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    fn snapshot(&self) -> StatsSnapshot {
        let mut snapshot = self
            .stats
            .snapshot(self.uptime_ms(), self.model.generation());
        snapshot.sessions = self.sessions.stats();
        snapshot
    }
}

/// A running classification daemon. Dropping the handle shuts the
/// server down and joins every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Starts a server around a freshly trained/loaded model. `reload`
    /// requests will be refused (there is no file to re-read); use
    /// [`Server::start_from_file`] for reloadable deployments.
    pub fn start(model: MotionClassifier, config: ServeConfig) -> Result<Self, ServeError> {
        Self::start_shared(SharedModel::new(model), None, config)
    }

    /// Loads a saved model and starts a server that can hot-reload it:
    /// a `reload` request re-reads `path` and atomically swaps the new
    /// model in while in-flight requests finish on the old one.
    pub fn start_from_file(path: &Path, config: ServeConfig) -> Result<Self, ServeError> {
        let model = MotionClassifier::load_json(path)?;
        Self::start_shared(SharedModel::new(model), Some(path.to_owned()), config)
    }

    /// Starts a server over an externally owned [`SharedModel`] handle
    /// (the caller may swap models itself, e.g. after in-process
    /// retraining).
    pub fn start_shared(
        model: SharedModel,
        model_path: Option<PathBuf>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        // Open (or create) the durable store before accepting work:
        // recovered motions are replayed into the model's database here,
        // so the first query already sees everything ever acknowledged.
        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(DurableDb::open_or_create_into(
                dir,
                StoreConfig::default(),
                model.load().shared_db().clone(),
            )?)),
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // The engine shares the server's model slot: a drift-triggered
        // re-train swap is indistinguishable from a `reload` to every
        // other consumer of the handle.
        let mut sessions =
            SessionEngine::new(model.clone(), config.session.clone()).map_err(|e| {
                ServeError::Config {
                    reason: e.to_string(),
                }
            })?;
        if let Some(source) = &config.session_retrain {
            sessions = sessions.with_retrain(Arc::clone(source));
        }

        let shared = Arc::new(ServerShared {
            model,
            model_path,
            store,
            role: RoleCell::new(),
            ingest: Mutex::new(()),
            sessions,
            stats: StatsCollector::new(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            config: config.clone(),
        });

        // Bounded end to end: queue (admission), batch channel
        // (dispatch). When workers fall behind, the batch channel fills,
        // then the queue fills, then arrivals shed — memory stays flat.
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let (batch_tx, batch_rx) = mpsc::sync_channel::<Vec<Job>>(config.workers);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let batch_rx = Arc::clone(&batch_rx);
                std::thread::Builder::new()
                    .name(format!("kinemyo-serve-worker-{i}"))
                    .spawn(move || worker_loop(&batch_rx, &shared))
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>, _>>()?;

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("kinemyo-serve-batcher".into())
                .spawn(move || batcher_loop(&job_rx, &batch_tx, &shared))
                .map_err(ServeError::Io)?
        };

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("kinemyo-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, &conns, &job_tx))
                .map_err(ServeError::Io)?
        };

        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            batcher: Some(batcher),
            workers,
            conns,
        })
    }

    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// The shared model handle (swap through it for in-process reload).
    pub fn model(&self) -> SharedModel {
        self.shared.model.clone()
    }

    /// The durable store handle, when the server has one. The cluster
    /// layer replicates through it: leader-side WAL shipping reads from
    /// and follower-side applies write into the same store the serve
    /// path uses, so there is exactly one commit point.
    pub fn store(&self) -> Option<Arc<DurableDb<RecordMeta>>> {
        self.shared.store.clone()
    }

    /// The node's current cluster role.
    pub fn role(&self) -> Role {
        self.shared.role.get()
    }

    /// The streaming-session engine (inspection and tests; wire clients
    /// drive it through the `session_*` ops).
    pub fn sessions(&self) -> &SessionEngine {
        &self.shared.sessions
    }

    /// Sets the node's cluster role and (for followers) where to point
    /// writers. Takes effect on the next dispatched request; in-flight
    /// requests finish under the role they were admitted with.
    pub fn set_role(&self, role: Role, leader_hint: Option<String>) {
        self.shared.role.set(role, leader_hint);
    }

    /// True once shutdown has begun (via this handle or a client
    /// `shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Acquire)
    }

    /// Begins a graceful shutdown: stop admitting work, drain the
    /// queue, answer everything in flight. Returns immediately; use
    /// [`Server::wait`] (or drop the handle) to block until drained.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::Release);
    }

    /// Blocks until the server has fully drained and every thread has
    /// exited. Returns the final stats snapshot. If shutdown has not
    /// been requested yet, this waits for a client `shutdown` request —
    /// the blocking call a daemon `main` wants.
    pub fn wait(mut self) -> StatsSnapshot {
        self.join_all();
        self.shared.snapshot()
    }

    fn join_all(&mut self) {
        // Join order mirrors the drain cascade: the acceptor exits on
        // the flag and drops its queue sender; connection threads exit
        // (flag, ≤ the 100 ms read timeout) and drop theirs; the
        // batcher then sees the queue disconnect *after* consuming
        // every queued job, drops the batch sender; workers finish the
        // remaining batches and exit.
        if let Some(h) = self.acceptor.take() {
            h.join().ok();
        }
        loop {
            let handles: Vec<_> = self.conns.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                h.join().ok();
            }
        }
        if let Some(h) = self.batcher.take() {
            h.join().ok();
        }
        for h in self.workers.drain(..) {
            h.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join_all();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("shutting_down", &self.is_shutting_down())
            .finish_non_exhaustive()
    }
}

/// Accepts connections until shutdown; owns the original queue sender
/// and hands a clone to each connection thread.
fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<ServerShared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    job_tx: &SyncSender<Job>,
) {
    // The accept loop doubles as the session idle sweeper: its poll
    // cadence is the one periodic heartbeat the server already has.
    let mut last_sweep = Instant::now();
    while !shared.shutting_down.load(Ordering::Acquire) {
        if last_sweep.elapsed() >= Duration::from_millis(500) {
            shared.sessions.sweep_idle();
            last_sweep = Instant::now();
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.record_connection();
                let shared = Arc::clone(shared);
                let job_tx = job_tx.clone();
                let spawned = std::thread::Builder::new()
                    .name("kinemyo-serve-conn".into())
                    .spawn(move || connection_loop(stream, &shared, &job_tx));
                if let Ok(handle) = spawned {
                    conns.lock().push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Serves one client: read frame → dispatch → write frame, until EOF,
/// error, or shutdown.
fn connection_loop(stream: TcpStream, shared: &Arc<ServerShared>, job_tx: &SyncSender<Job>) {
    stream.set_nodelay(true).ok();
    // The periodic timeout is the shutdown poll: an idle connection
    // notices the drain flag within 100 ms instead of pinning `join`.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // `take` hard-bounds how much of an unterminated frame we will ever
    // buffer; the limit is topped back up after each completed frame.
    let mut reader = BufReader::new(read_half.take(MAX_FRAME_BYTES as u64 + 1));
    let mut writer = stream;
    let mut line = String::new();
    // Slow-loris guard: set when the first bytes of a frame arrive,
    // cleared when the frame completes. A peer that keeps a frame open
    // past `frame_timeout` gets a typed error and the connection closed.
    let mut frame_started: Option<Instant> = None;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF (or the take-limit; both end the conn)
            Ok(_) => {
                frame_started = None;
                if line.len() > MAX_FRAME_BYTES {
                    let resp = Response::Error {
                        message: ServeError::FrameTooLarge {
                            got: line.len(),
                            max: MAX_FRAME_BYTES,
                        }
                        .to_string(),
                    };
                    write_frame(&mut writer, &resp).ok();
                    break;
                }
                if line.trim().is_empty() {
                    // Blank keep-alive line; ignore.
                    line.clear();
                    reader.get_mut().set_limit(MAX_FRAME_BYTES as u64 + 1);
                    continue;
                }
                let (resp, close) = dispatch(&line, shared, job_tx);
                line.clear();
                reader.get_mut().set_limit(MAX_FRAME_BYTES as u64 + 1);
                if write_frame(&mut writer, &resp).is_err() || close {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if line.len() > MAX_FRAME_BYTES {
                    let resp = Response::Error {
                        message: ServeError::FrameTooLarge {
                            got: line.len(),
                            max: MAX_FRAME_BYTES,
                        }
                        .to_string(),
                    };
                    write_frame(&mut writer, &resp).ok();
                    break;
                }
                if line.is_empty() {
                    frame_started = None;
                } else {
                    // A frame is in flight; a trickling writer gets a
                    // bounded window to finish it, then a typed error.
                    let started = *frame_started.get_or_insert_with(Instant::now);
                    if started.elapsed() >= shared.config.frame_timeout {
                        let resp = Response::Error {
                            message: format!(
                                "frame timed out: {} byte(s) received but no newline within {:?}",
                                line.len(),
                                shared.config.frame_timeout
                            ),
                        };
                        shared.stats.record_malformed();
                        write_frame(&mut writer, &resp).ok();
                        break;
                    }
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Handles one decoded frame. Returns the response and whether the
/// connection should close afterwards.
fn dispatch(line: &str, shared: &Arc<ServerShared>, job_tx: &SyncSender<Job>) -> (Response, bool) {
    let request: Request = match decode_frame(line) {
        Ok(r) => r,
        Err(e) => {
            shared.stats.record_malformed();
            return (
                Response::Error {
                    message: e.to_string(),
                },
                false,
            );
        }
    };
    match request {
        Request::Classify { record } => {
            if shared.shutting_down.load(Ordering::Acquire) {
                shared.stats.record_rejected_shutdown();
                return (Response::ShuttingDown, false);
            }
            let mut items = submit_and_wait(vec![record], shared, job_tx);
            let response = match items.pop().expect("one item per record") {
                BatchItem::Ok { result } => Response::Result {
                    result,
                    cluster: None,
                },
                BatchItem::Overloaded => Response::Overloaded {
                    queue_capacity: shared.config.queue_capacity,
                },
                BatchItem::DeadlineExceeded { waited_ms } => {
                    Response::DeadlineExceeded { waited_ms }
                }
                BatchItem::Failed { message } => Response::Error { message },
            };
            (response, false)
        }
        Request::ClassifyBatch { records } => {
            if shared.shutting_down.load(Ordering::Acquire) {
                shared.stats.record_rejected_shutdown();
                return (Response::ShuttingDown, false);
            }
            let results = submit_and_wait(records, shared, job_tx);
            (
                Response::BatchResult {
                    results,
                    cluster: None,
                },
                false,
            )
        }
        Request::Insert { record } => {
            if shared.shutting_down.load(Ordering::Acquire) {
                shared.stats.record_rejected_shutdown();
                return (Response::ShuttingDown, false);
            }
            // Followers never take writes: the leader's WAL is the one
            // ordering of the database, and a follower-side insert would
            // fork it. Writers are redirected, not silently absorbed.
            if shared.role.get() == Role::Follower {
                return (
                    Response::NotLeader {
                        leader_hint: shared.role.hint(),
                    },
                    false,
                );
            }
            (do_insert(record, shared), false)
        }
        Request::Persist => (do_persist(shared), false),
        Request::Compact => (do_compact(shared), false),
        Request::Health => {
            let model = shared.model.load();
            let motions = model.db().len();
            (
                Response::Health {
                    model_generation: shared.model.generation(),
                    motions,
                    limb: model.limb(),
                    uptime_ms: shared.uptime_ms(),
                    role: shared.role.get(),
                    index: model.index_kind(),
                },
                false,
            )
        }
        Request::Stats => (
            Response::Stats {
                stats: shared.snapshot(),
            },
            false,
        ),
        Request::Reload => (do_reload(shared), false),
        Request::SessionOpen { policy, arms } => {
            if shared.shutting_down.load(Ordering::Acquire) {
                shared.stats.record_rejected_shutdown();
                return (Response::ShuttingDown, false);
            }
            (
                crate::session::do_open(&shared.sessions, policy, arms),
                false,
            )
        }
        // Push/result/close still answer during a drain so in-flight
        // sessions finish cleanly; only new opens are refused above.
        Request::SessionPush { session, frames } => (
            crate::session::do_push(&shared.sessions, session, &frames),
            false,
        ),
        Request::SessionResult { session } => {
            (crate::session::do_result(&shared.sessions, session), false)
        }
        Request::SessionClose { session } => {
            (crate::session::do_close(&shared.sessions, session), false)
        }
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::Release);
            // Ack, then close; the drain cascade takes it from here.
            (Response::ShuttingDown, true)
        }
    }
}

/// Enqueues each record as a job and collects per-item outcomes in
/// input order. Items that cannot be admitted are answered immediately
/// (`overloaded`), without failing their siblings.
fn submit_and_wait(
    records: Vec<MotionRecord>,
    shared: &Arc<ServerShared>,
    job_tx: &SyncSender<Job>,
) -> Vec<BatchItem> {
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    // Bounded at `n`: each admitted job is answered exactly once (the
    // batcher sheds expired jobs with DeadlineExceeded; workers answer
    // the rest), so `n` slots can never block a sender.
    let (resp_tx, resp_rx) = mpsc::sync_channel(n);
    let mut items: Vec<Option<BatchItem>> = (0..n).map(|_| None).collect();
    let mut pending = 0usize;
    let now = Instant::now();
    let deadline = now + shared.config.request_deadline;
    for (index, record) in records.into_iter().enumerate() {
        let job = Job {
            record,
            index,
            resp: resp_tx.clone(),
            enqueued: now,
            deadline,
        };
        match job_tx.try_send(job) {
            Ok(()) => {
                shared.stats.queue_entered();
                pending += 1;
            }
            Err(TrySendError::Full(_)) => {
                shared.stats.record_shed();
                items[index] = Some(BatchItem::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => {
                items[index] = Some(BatchItem::Failed {
                    message: "server pipeline stopped".into(),
                });
            }
        }
    }
    drop(resp_tx);
    // Backstop well past the deadline: if a response ever went missing
    // (a worker died), the client gets a typed failure, not a hang.
    let hard_stop = deadline + Duration::from_secs(30);
    while pending > 0 {
        let budget = hard_stop
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        match resp_rx.recv_timeout(budget) {
            Ok((index, item)) => {
                if items[index].is_none() {
                    pending -= 1;
                }
                items[index] = Some(item);
            }
            Err(_) => break,
        }
    }
    items
        .into_iter()
        .map(|slot| {
            slot.unwrap_or(BatchItem::Failed {
                message: "response lost (worker gave no answer)".into(),
            })
        })
        .collect()
}

/// Ingests one motion: feature-extract with the current model, assign a
/// fresh id, append to the visible database — through the durable store
/// (WAL first) when one is configured.
fn do_insert(record: MotionRecord, shared: &Arc<ServerShared>) -> Response {
    let model = shared.model.load();
    let fv = match model.query_feature_vector(&record) {
        Ok(fv) => fv,
        Err(e) => {
            shared.stats.record_failed();
            return Response::Error {
                message: format!("insert failed: {e}"),
            };
        }
    };
    let meta = RecordMeta {
        record_id: record.id,
        class: record.class,
        participant: record.participant,
        trial: record.trial,
    };
    let _serialized = shared.ingest.lock();
    let inserted = match &shared.store {
        Some(store) => {
            let id = store.next_id();
            store
                .insert(id, meta, fv.into_vec()) // analyze: allow(io-under-lock) ingest is serialized by design: id allocation and the WAL commit must be atomic, so the durable append runs under this lock
                .map(|()| id)
                .map_err(|e| e.to_string())
        }
        None => {
            let db = model.shared_db();
            let id = db.with_read(|db| db.max_id().map_or(0, |m| m + 1));
            db.insert(id, meta, fv.into_vec()) // analyze: allow(io-under-lock) name-level resolution conflates SharedDb::insert (in-memory) with DurableDb::insert; the ingest lock only serializes id allocation
                .map(|()| id)
                .map_err(|e| e.to_string())
        }
    };
    match inserted {
        Ok(id) => {
            shared.stats.record_ingested();
            Response::Inserted {
                id,
                motions: model.db().len(),
                durable: shared.store.is_some(),
            }
        }
        Err(message) => {
            shared.stats.record_failed();
            Response::Error {
                message: format!("insert failed: {message}"),
            }
        }
    }
}

/// Snapshots the durable store ([`Request::Persist`]).
fn do_persist(shared: &Arc<ServerShared>) -> Response {
    let Some(store) = &shared.store else {
        return Response::Error {
            message: "server has no durable store (start it with a store directory)".into(),
        };
    };
    match store.persist() {
        Ok(info) => Response::Persisted {
            generation: info.generation,
            entries: info.entries,
            bytes: info.bytes,
        },
        Err(e) => Response::Error {
            message: format!("persist failed: {e}"),
        },
    }
}

/// Snapshots and reclaims superseded store files ([`Request::Compact`]).
fn do_compact(shared: &Arc<ServerShared>) -> Response {
    let Some(store) = &shared.store else {
        return Response::Error {
            message: "server has no durable store (start it with a store directory)".into(),
        };
    };
    match store.compact() {
        Ok(info) => Response::Compacted {
            generation: info.generation,
            entries: info.entries,
            files_removed: info.files_removed,
            bytes_reclaimed: info.bytes_reclaimed,
        },
        Err(e) => Response::Error {
            message: format!("compact failed: {e}"),
        },
    }
}

/// Re-reads the model file and swaps it in atomically. Any failure
/// keeps the current model serving.
fn do_reload(shared: &Arc<ServerShared>) -> Response {
    let Some(path) = &shared.model_path else {
        return Response::Error {
            message: "server was not started from a model file; nothing to reload".into(),
        };
    };
    match MotionClassifier::load_json(path) {
        Ok(next) => {
            let current = shared.model.load();
            if next.limb() != current.limb() {
                return Response::Error {
                    message: format!(
                        "reload refused: file is a {} model but this server serves {}",
                        next.limb(),
                        current.limb()
                    ),
                };
            }
            // Re-graft the durable store before the swap: every ingested
            // motion is replayed into the new model's database, so the
            // moment the swap lands, queries see training + ingested
            // entries exactly as before. Failure keeps the old model.
            if let Some(store) = &shared.store {
                if let Err(e) = store.rebind(next.shared_db().clone()) {
                    return Response::Error {
                        message: format!(
                            "reload refused: could not re-graft the durable store: {e}"
                        ),
                    };
                }
            }
            shared.model.swap(next);
            shared.stats.record_reload();
            let swapped = shared.model.load();
            let motions = swapped.db().len();
            Response::Reloaded {
                model_generation: shared.model.generation(),
                motions,
            }
        }
        Err(e) => Response::Error {
            message: format!("reload failed, keeping current model: {e}"),
        },
    }
}

/// Coalesces queued jobs into batches within the time/size budget and
/// expires jobs that outlived their deadline.
fn batcher_loop(
    job_rx: &Receiver<Job>,
    batch_tx: &SyncSender<Vec<Job>>,
    shared: &Arc<ServerShared>,
) {
    let config = &shared.config;
    loop {
        // Anchor job: block until work arrives or every sender is gone
        // (the drain cascade's end-of-input signal).
        let first = match job_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        shared.stats.queue_left();
        let mut jobs = vec![first];
        let batch_deadline = Instant::now() + config.batch_wait;
        while jobs.len() < config.batch_max {
            let now = Instant::now();
            if now >= batch_deadline {
                // Budget spent: still take whatever is already queued.
                match job_rx.try_recv() {
                    Ok(job) => {
                        shared.stats.queue_left();
                        jobs.push(job);
                        continue;
                    }
                    Err(_) => break,
                }
            }
            match job_rx.recv_timeout(batch_deadline - now) {
                Ok(job) => {
                    shared.stats.queue_left();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        let now = Instant::now();
        jobs.retain(|job| {
            if now > job.deadline {
                shared.stats.record_deadline_expired();
                let waited_ms = now.duration_since(job.enqueued).as_millis() as u64;
                job.resp
                    .send((job.index, BatchItem::DeadlineExceeded { waited_ms }))
                    .ok();
                false
            } else {
                true
            }
        });
        if jobs.is_empty() {
            continue;
        }
        if batch_tx.send(jobs).is_err() {
            break; // workers gone; nothing left to do
        }
    }
}

/// Executes batches: one model snapshot per batch (reload-safe), fan
/// out through `classify_batch`, route answers back per job.
fn worker_loop(batch_rx: &Arc<Mutex<Receiver<Vec<Job>>>>, shared: &Arc<ServerShared>) {
    loop {
        // Hold the receiver lock only for the dequeue so the pool
        // drains batches concurrently.
        let next = { batch_rx.lock().recv() };
        let Ok(jobs) = next else { break };
        if !shared.config.worker_delay.is_zero() {
            std::thread::sleep(shared.config.worker_delay);
        }
        let model = shared.model.load();
        shared.stats.record_batch(jobs.len());
        let refs: Vec<&MotionRecord> = jobs.iter().map(|job| &job.record).collect();
        let results = model.classify_batch(&refs);
        for (job, result) in jobs.iter().zip(results) {
            shared.stats.record_latency(job.enqueued.elapsed());
            let item = match result {
                Ok(classification) => {
                    shared.stats.record_served();
                    BatchItem::Ok {
                        result: classification,
                    }
                }
                Err(e) => {
                    shared.stats.record_failed();
                    BatchItem::Failed {
                        message: e.to_string(),
                    }
                }
            };
            job.resp.send((job.index, item)).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert!(ServeConfig::default().validate().is_ok());
        assert!(ServeConfig::default()
            .with_queue_capacity(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default().with_batch_max(0).validate().is_err());
        assert!(ServeConfig::default().with_workers(0).validate().is_err());
        assert!(ServeConfig::default()
            .with_request_deadline(Duration::ZERO)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_frame_timeout(Duration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn role_cell_flips_atomically_and_carries_the_leader_hint() {
        let cell = RoleCell::new();
        assert_eq!(cell.get(), Role::Single);
        assert_eq!(cell.hint(), None);
        cell.set(Role::Follower, Some("127.0.0.1:7001".into()));
        assert_eq!(cell.get(), Role::Follower);
        assert_eq!(cell.hint().as_deref(), Some("127.0.0.1:7001"));
        // Promotion: hint is cleared in the same call that flips the role.
        cell.set(Role::Leader, None);
        assert_eq!(cell.get(), Role::Leader);
        assert_eq!(cell.hint(), None);
    }

    #[test]
    fn config_builders_set_fields() {
        let c = ServeConfig::default()
            .with_addr("0.0.0.0:9000")
            .with_queue_capacity(7)
            .with_batch_max(3)
            .with_batch_wait(Duration::from_millis(9))
            .with_workers(5)
            .with_request_deadline(Duration::from_secs(1))
            .with_worker_delay(Duration::from_millis(1))
            .with_frame_timeout(Duration::from_millis(250));
        assert_eq!(c.addr, "0.0.0.0:9000");
        assert_eq!(c.queue_capacity, 7);
        assert_eq!(c.batch_max, 3);
        assert_eq!(c.batch_wait, Duration::from_millis(9));
        assert_eq!(c.workers, 5);
        assert_eq!(c.request_deadline, Duration::from_secs(1));
        assert_eq!(c.worker_delay, Duration::from_millis(1));
        assert_eq!(c.frame_timeout, Duration::from_millis(250));
    }
}
