//! Lock-free server counters: request outcomes, queue depth, batch-size
//! and latency histograms.
//!
//! The collector is a bag of atomics touched on the hot path; the
//! [`StatsSnapshot`] read model is assembled on demand for the `stats`
//! request. Latency percentiles come from a fixed-bucket histogram —
//! O(1) per observation, a few hundred bytes of state, no allocation and
//! no dependency — at the cost of quantiles being rounded up to a bucket
//! boundary.

use kinemyo_session::SessionStatsSnapshot;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (inclusive, µs) of the latency buckets; one overflow
/// bucket follows. Spacing is roughly ×2.5 from 100 µs to 10 s, which
/// brackets everything from a warm micro-batch to a pathological stall.
pub const LATENCY_BOUNDS_US: [u64; 16] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// Upper bounds (inclusive) of the batch-size buckets; one overflow
/// bucket follows.
pub const BATCH_BOUNDS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

const LAT_BUCKETS: usize = LATENCY_BOUNDS_US.len() + 1;
const BATCH_BUCKETS: usize = BATCH_BOUNDS.len() + 1;

/// Hot-path counters, shared across server threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct StatsCollector {
    served: AtomicU64,
    ingested: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    deadline_expired: AtomicU64,
    malformed: AtomicU64,
    rejected_shutdown: AtomicU64,
    reloads: AtomicU64,
    connections: AtomicU64,
    batches: AtomicU64,
    queue_depth: AtomicI64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    latency_hist: [AtomicU64; LAT_BUCKETS],
}

impl StatsCollector {
    /// Fresh collector with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A request was classified and answered.
    pub fn record_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// A motion was ingested into the live database.
    pub fn record_ingested(&self) {
        self.ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was shed because the queue was full.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// The pipeline returned an error for a request.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request expired in the queue.
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// A frame could not be decoded.
    pub fn record_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request arrived after shutdown began and was refused.
    pub fn record_rejected_shutdown(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    /// A model reload succeeded.
    pub fn record_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// A client connection was accepted.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A job entered the bounded queue.
    pub fn queue_entered(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the bounded queue (into a batch).
    pub fn queue_left(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A batch of `size` jobs was dispatched to a worker.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let idx = BATCH_BOUNDS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BATCH_BOUNDS.len());
        self.batch_hist[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// One request's queue-to-answer latency.
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.latency_hist[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Assembles the read model. Counters keep running while the
    /// snapshot is taken; the result is consistent to within the
    /// requests in flight at that instant.
    pub fn snapshot(&self, uptime_ms: u64, model_generation: u64) -> StatsSnapshot {
        let latency_hist: Vec<u64> = self
            .latency_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0) as u64,
            p50_latency_us: quantile_us(&latency_hist, 0.50),
            p99_latency_us: quantile_us(&latency_hist, 0.99),
            batch_hist: self
                .batch_hist
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            latency_hist,
            uptime_ms,
            model_generation,
            sessions: SessionStatsSnapshot::default(),
        }
    }
}

/// The `q`-quantile over a `LATENCY_BOUNDS_US`-shaped histogram,
/// reported as the matching bucket's upper bound (rounded up; the
/// overflow bucket reports the last bound). 0 when empty.
fn quantile_us(hist: &[u64], q: f64) -> u64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &count) in hist.iter().enumerate() {
        cum += count;
        if cum >= rank {
            return LATENCY_BOUNDS_US
                .get(i)
                .copied()
                .unwrap_or(LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1]);
        }
    }
    LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1]
}

/// Point-in-time view of the server counters; the payload of the
/// `stats` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests classified and answered.
    pub served: u64,
    /// Motions ingested into the live database.
    #[serde(default)]
    pub ingested: u64,
    /// Requests shed on a full queue.
    pub shed: u64,
    /// Requests whose classification returned a typed error.
    pub failed: u64,
    /// Requests expired in the queue.
    pub deadline_expired: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
    /// Requests refused because shutdown had begun.
    pub rejected_shutdown: u64,
    /// Successful model reloads.
    pub reloads: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Jobs sitting in the bounded queue right now.
    pub queue_depth: u64,
    /// Median queue-to-answer latency, µs (bucket upper bound).
    pub p50_latency_us: u64,
    /// 99th-percentile queue-to-answer latency, µs (bucket upper bound).
    pub p99_latency_us: u64,
    /// Batch-size histogram; buckets per [`BATCH_BOUNDS`] + overflow.
    pub batch_hist: Vec<u64>,
    /// Latency histogram; buckets per [`LATENCY_BOUNDS_US`] + overflow.
    pub latency_hist: Vec<u64>,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Model swaps since the server started.
    pub model_generation: u64,
    /// Streaming-session counters (all zero on pre-session servers).
    #[serde(default)]
    pub sessions: SessionStatsSnapshot,
}

impl StatsSnapshot {
    /// Total requests that received any terminal answer through the
    /// queue path (served + shed + failed + expired). Malformed frames
    /// and shutdown rejections are counted separately.
    pub fn total_answered(&self) -> u64 {
        self.served + self.shed + self.failed + self.deadline_expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counters_accumulate() {
        let c = StatsCollector::new();
        c.record_served();
        c.record_served();
        c.record_ingested();
        c.record_shed();
        c.record_failed();
        c.record_deadline_expired();
        c.record_malformed();
        c.record_rejected_shutdown();
        c.record_reload();
        c.record_connection();
        let s = c.snapshot(1234, 2);
        assert_eq!(s.served, 2);
        assert_eq!(s.ingested, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.deadline_expired, 1);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.rejected_shutdown, 1);
        assert_eq!(s.reloads, 1);
        assert_eq!(s.connections, 1);
        assert_eq!(s.total_answered(), 5);
        assert_eq!(s.uptime_ms, 1234);
        assert_eq!(s.model_generation, 2);
    }

    #[test]
    fn queue_depth_tracks_enter_and_leave() {
        let c = StatsCollector::new();
        c.queue_entered();
        c.queue_entered();
        c.queue_left();
        assert_eq!(c.snapshot(0, 0).queue_depth, 1);
        c.queue_left();
        c.queue_left(); // spurious extra leave clamps at 0 in the snapshot
        assert_eq!(c.snapshot(0, 0).queue_depth, 0);
    }

    #[test]
    fn batch_histogram_buckets_by_size() {
        let c = StatsCollector::new();
        c.record_batch(1);
        c.record_batch(2);
        c.record_batch(3); // ≤4
        c.record_batch(64);
        c.record_batch(65); // overflow
        let s = c.snapshot(0, 0);
        assert_eq!(s.batches, 5);
        assert_eq!(s.batch_hist[0], 1); // ≤1
        assert_eq!(s.batch_hist[1], 1); // ≤2
        assert_eq!(s.batch_hist[2], 1); // ≤4
        assert_eq!(s.batch_hist[6], 1); // ≤64
        assert_eq!(s.batch_hist[7], 1); // >64
        assert_eq!(s.batch_hist.iter().sum::<u64>(), 5);
    }

    #[test]
    fn latency_quantiles_round_up_to_bucket_bounds() {
        let c = StatsCollector::new();
        for _ in 0..99 {
            c.record_latency(Duration::from_micros(80)); // ≤100 bucket
        }
        c.record_latency(Duration::from_millis(40)); // ≤50_000 bucket
        let s = c.snapshot(0, 0);
        assert_eq!(s.p50_latency_us, 100);
        assert_eq!(s.p99_latency_us, 100);
        assert_eq!(s.latency_hist.iter().sum::<u64>(), 100);

        // With 2% slow observations the p99 lands in the slow bucket.
        let c = StatsCollector::new();
        for _ in 0..98 {
            c.record_latency(Duration::from_micros(80));
        }
        c.record_latency(Duration::from_millis(40));
        c.record_latency(Duration::from_millis(40));
        assert_eq!(c.snapshot(0, 0).p99_latency_us, 50_000);
    }

    #[test]
    fn empty_and_overflow_quantiles_are_defined() {
        let c = StatsCollector::new();
        assert_eq!(c.snapshot(0, 0).p50_latency_us, 0);
        c.record_latency(Duration::from_secs(3600)); // overflow bucket
        let s = c.snapshot(0, 0);
        assert_eq!(s.p50_latency_us, *LATENCY_BOUNDS_US.last().unwrap());
        assert_eq!(*s.latency_hist.last().unwrap(), 1);
    }
}
