//! Glue between the wire dispatch loop and the [`SessionEngine`]:
//! engine results become typed protocol responses here, so the server
//! loop stays a thin router and every session failure mode keeps its
//! machine-matchable variant (`session_overloaded`, `session_unknown`).

use crate::protocol::Response;
use kinemyo_session::{SessionEngine, SessionError, WireFrame};

/// Maps a session-layer failure onto its wire response. The connection
/// always stays open: a session error is an answer, not a transport
/// fault.
fn refusal(err: SessionError) -> Response {
    match err {
        SessionError::Overloaded { capacity } => Response::SessionOverloaded { capacity },
        SessionError::UnknownSession { session } => Response::SessionUnknown { session },
        SessionError::Config { reason } => Response::Error {
            message: format!("session config error: {reason}"),
        },
        SessionError::Model(e) => Response::Error {
            message: format!("session model error: {e}"),
        },
    }
}

/// Handles `session_open`.
pub(crate) fn do_open(
    engine: &SessionEngine,
    policy: kinemyo_session::ReloadPolicy,
    arms: Option<Vec<usize>>,
) -> Response {
    match engine.open(policy, arms.as_deref()) {
        Ok(opened) => Response::SessionOpened {
            session: opened.session,
            generation: opened.generation,
            window_lens: opened.window_lens,
            budget_us: opened.budget_us,
        },
        Err(e) => refusal(e),
    }
}

/// Handles `session_push`.
pub(crate) fn do_push(engine: &SessionEngine, session: u64, frames: &[WireFrame]) -> Response {
    match engine.push(session, frames) {
        Ok(reply) => Response::SessionWindows {
            session: reply.session,
            generation: reply.generation,
            windows: reply.windows,
            rejected: reply.rejected,
            drift: reply.drift,
        },
        Err(e) => refusal(e),
    }
}

/// Handles `session_result`.
pub(crate) fn do_result(engine: &SessionEngine, session: u64) -> Response {
    match engine.result(session) {
        Ok(verdict) => Response::SessionResult { verdict },
        Err(e) => refusal(e),
    }
}

/// Handles `session_close`.
pub(crate) fn do_close(engine: &SessionEngine, session: u64) -> Response {
    match engine.close(session) {
        Ok(summary) => Response::SessionClosed { summary },
        Err(e) => refusal(e),
    }
}
