//! Blocking client for the newline-delimited JSON protocol.
//!
//! One connection, synchronous request/response. Used by the
//! `kinemyo client` subcommand, the loopback benchmarks, and the
//! end-to-end tests; third parties can speak the protocol with nothing
//! but a TCP socket and a JSON library.

use crate::backoff::RetryPolicy;
use crate::protocol::{read_frame, write_frame, BatchItem, Request, Response, ServeError};
use crate::stats::StatsSnapshot;
use kinemyo::pipeline::Classification;
use kinemyo_biosim::MotionRecord;
use kinemyo_session::{ReloadPolicy, WireFrame};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Connects with a bounded, seeded retry schedule: each failed
    /// `connect` sleeps a capped-exponential, jittered delay (see
    /// [`RetryPolicy`]) before the next try. After the attempt budget is
    /// spent the typed [`ServeError::Unavailable`] reports how many
    /// attempts were made and why the last one failed — callers (the
    /// cluster router, the CLI) branch on it instead of parsing prose.
    pub fn connect_with_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        policy: &RetryPolicy,
    ) -> Result<Self, ServeError> {
        let mut schedule = policy.schedule();
        loop {
            let last = match Self::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => e,
            };
            match schedule.next_delay() {
                Some(delay) => std::thread::sleep(delay),
                None => {
                    return Err(ServeError::Unavailable {
                        attempts: schedule.attempts(),
                        last: last.to_string(),
                    })
                }
            }
        }
    }

    /// Caps how long [`ServeClient::call`] waits for a response.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.writer, request)?;
        read_frame(&mut self.reader)
    }

    /// Classifies one record, unwrapping the success case. Typed
    /// rejections (`overloaded`, `shutting_down`, ...) surface as the
    /// raw [`Response`] in the error position so callers can branch.
    pub fn classify(&mut self, record: &MotionRecord) -> Result<Classification, CallOutcome> {
        let response = self
            .call(&Request::Classify {
                record: record.clone(),
            })
            .map_err(CallOutcome::Transport)?;
        match response {
            Response::Result { result, .. } => Ok(result),
            other => Err(CallOutcome::Rejected(Box::new(other))),
        }
    }

    /// Classifies a batch, returning per-item outcomes in input order.
    pub fn classify_batch(
        &mut self,
        records: &[MotionRecord],
    ) -> Result<Vec<BatchItem>, CallOutcome> {
        let response = self
            .call(&Request::ClassifyBatch {
                records: records.to_vec(),
            })
            .map_err(CallOutcome::Transport)?;
        match response {
            Response::BatchResult { results, .. } => Ok(results),
            other => Err(CallOutcome::Rejected(Box::new(other))),
        }
    }

    /// Fetches the server stats snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, CallOutcome> {
        match self.call(&Request::Stats).map_err(CallOutcome::Transport)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(CallOutcome::Rejected(Box::new(other))),
        }
    }

    /// Ingests one motion into the server's live database; answers
    /// `Response::Inserted` with the assigned id on success.
    pub fn insert(&mut self, record: &MotionRecord) -> Result<Response, ServeError> {
        self.call(&Request::Insert {
            record: record.clone(),
        })
    }

    /// Asks the server to write a new durable-store snapshot.
    pub fn persist(&mut self) -> Result<Response, ServeError> {
        self.call(&Request::Persist)
    }

    /// Asks the server to snapshot and reclaim superseded store files.
    pub fn compact(&mut self) -> Result<Response, ServeError> {
        self.call(&Request::Compact)
    }

    /// Probes server health (generation, motion count, limb, uptime).
    pub fn health(&mut self) -> Result<Response, ServeError> {
        self.call(&Request::Health)
    }

    /// Asks the server to re-read its model file.
    pub fn reload(&mut self) -> Result<Response, ServeError> {
        self.call(&Request::Reload)
    }

    /// Asks the server to drain and exit; returns the ack.
    pub fn shutdown(&mut self) -> Result<Response, ServeError> {
        self.call(&Request::Shutdown)
    }

    /// Opens a streaming session, unwrapping the session id. Typed
    /// refusals (`session_overloaded`, `shutting_down`, ...) surface as
    /// the raw [`Response`] so callers can branch.
    pub fn session_open(
        &mut self,
        policy: ReloadPolicy,
        arms: Option<Vec<usize>>,
    ) -> Result<u64, CallOutcome> {
        let response = self
            .call(&Request::SessionOpen { policy, arms })
            .map_err(CallOutcome::Transport)?;
        match response {
            Response::SessionOpened { session, .. } => Ok(session),
            other => Err(CallOutcome::Rejected(Box::new(other))),
        }
    }

    /// Pushes a batch of interleaved mocap/EMG frames into a session;
    /// answers `Response::SessionWindows` with any rolling windows the
    /// batch completed.
    pub fn session_push(
        &mut self,
        session: u64,
        frames: &[WireFrame],
    ) -> Result<Response, ServeError> {
        self.call(&Request::SessionPush {
            session,
            frames: frames.to_vec(),
        })
    }

    /// Fetches the per-arm verdict for a live session.
    pub fn session_result(&mut self, session: u64) -> Result<Response, ServeError> {
        self.call(&Request::SessionResult { session })
    }

    /// Closes a session, returning its lifetime summary.
    pub fn session_close(&mut self, session: u64) -> Result<Response, ServeError> {
        self.call(&Request::SessionClose { session })
    }
}

/// Why a typed convenience call did not produce its success value.
#[derive(Debug)]
pub enum CallOutcome {
    /// The socket or framing failed.
    Transport(ServeError),
    /// The server answered, but with a non-success response
    /// (`overloaded`, `shutting_down`, `deadline_exceeded`, `error`).
    Rejected(Box<Response>),
}

impl std::fmt::Display for CallOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallOutcome::Transport(e) => write!(f, "transport: {e}"),
            CallOutcome::Rejected(r) => write!(f, "rejected: {r:?}"),
        }
    }
}

impl std::error::Error for CallOutcome {}
