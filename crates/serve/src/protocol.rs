//! Wire protocol: newline-delimited JSON frames with typed payloads.
//!
//! One request or response per line. JSON keeps the protocol inspectable
//! with `nc`/`jq` and reuses the exact serde representations of
//! [`MotionRecord`] and [`Classification`] that the persistence layer
//! already ships, and `serde_json`'s `float_roundtrip` feature makes the
//! f64 payloads bit-exact across the socket — a served classification is
//! identical to an offline one.
//!
//! Every way a request can fail has a dedicated, machine-matchable
//! response variant (`overloaded`, `shutting_down`, `deadline_exceeded`,
//! `error`), so clients never have to parse prose to find out what
//! happened.

use kinemyo::cluster::ClusterHealth;
use kinemyo::pipeline::Classification;
use kinemyo_biosim::{Limb, MotionRecord};
use kinemyo_session::{
    DriftReport, RejectedFrame, ReloadPolicy, RollingWindow, SessionSummary, SessionVerdict,
    WireFrame,
};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

use crate::stats::StatsSnapshot;

/// Hard cap on a single frame's size (64 MiB). A frame larger than this
/// is refused before it is buffered further, so a stuck or malicious
/// peer cannot grow server memory without bound.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A client request, tagged by `"op"` on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Classify one motion record.
    Classify {
        /// The query motion (mocap ‖ EMG, synchronized).
        record: MotionRecord,
    },
    /// Classify several records; items are micro-batched server-side and
    /// answered per item (one shed item does not fail its siblings).
    ClassifyBatch {
        /// The query motions.
        records: Vec<MotionRecord>,
    },
    /// Ingest one motion into the live database: the record is run
    /// through the feature pipeline and the resulting vector is appended
    /// — WAL-logged first when the server has a durable store, so an
    /// acknowledged insert survives restarts and power cuts.
    Insert {
        /// The motion to ingest (mocap ‖ EMG, synchronized).
        record: MotionRecord,
    },
    /// Write a new store snapshot generation and rotate the WAL onto it.
    Persist,
    /// [`Request::Persist`], then delete every store file the new
    /// snapshot supersedes.
    Compact,
    /// Liveness + current-model probe.
    Health,
    /// Server counters snapshot.
    Stats,
    /// Re-read the model file the server was started from and swap it in
    /// atomically; in-flight requests finish on the old model.
    Reload,
    /// Open a long-lived streaming session: subsequent `session_push`
    /// frames feed rolling per-window classifications until
    /// `session_close` (or idle eviction). The session binds the current
    /// model generation under the requested reload policy.
    SessionOpen {
        /// How the session reacts to a model swap mid-stream.
        #[serde(default)]
        policy: ReloadPolicy,
        /// Window-length arms to run besides the model's trained length;
        /// absent means the server's configured arms.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        arms: Option<Vec<usize>>,
    },
    /// Push interleaved mocap/EMG frames into a live session. Answered
    /// with `session_windows` carrying every window that completed.
    SessionPush {
        /// The session id from `session_opened`.
        session: u64,
        /// Synchronized frames, oldest first.
        frames: Vec<WireFrame>,
    },
    /// Ask for the session's rolling multi-arm verdict without closing.
    SessionResult {
        /// The session id from `session_opened`.
        session: u64,
    },
    /// Close a session and collect its final accounting.
    SessionClose {
        /// The session id from `session_opened`.
        session: u64,
    },
    /// Stop accepting work, drain the queue, exit.
    Shutdown,
}

/// A node's place in a cluster, reported by [`Response::Health`] so
/// operators and the failover smoke test can find the current leader
/// without out-of-band state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum Role {
    /// A standalone daemon — no cluster, accepts everything.
    #[default]
    Single,
    /// The replication leader: accepts ingest, ships WAL entries.
    Leader,
    /// A replication follower: serves reads, refuses ingest with a
    /// typed [`Response::NotLeader`].
    Follower,
    /// A scatter-gather router in front of the shards.
    Router,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Single => write!(f, "single"),
            Role::Leader => write!(f, "leader"),
            Role::Follower => write!(f, "follower"),
            Role::Router => write!(f, "router"),
        }
    }
}

/// Per-item outcome inside a [`Response::BatchResult`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum BatchItem {
    /// The item was classified.
    Ok {
        /// The classification result.
        result: Classification,
    },
    /// The bounded queue was full when this item arrived; it was shed.
    Overloaded,
    /// The item waited in the queue past its deadline.
    DeadlineExceeded {
        /// How long the item had waited when it was expired.
        waited_ms: u64,
    },
    /// The pipeline returned a typed error for this item.
    Failed {
        /// The pipeline error, rendered.
        message: String,
    },
}

/// A server response, tagged by `"status"` on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum Response {
    /// Successful single classification.
    Result {
        /// The classification result.
        result: Classification,
        /// Which shards contributed, when the answer came from a
        /// scatter-gather router; absent from single-node responses.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        cluster: Option<ClusterHealth>,
    },
    /// Per-item outcomes of a `classify_batch` request, in input order.
    BatchResult {
        /// One outcome per submitted record.
        results: Vec<BatchItem>,
        /// Which shards contributed, when the answer came from a
        /// scatter-gather router; absent from single-node responses.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        cluster: Option<ClusterHealth>,
    },
    /// The bounded request queue was full; the request was shed without
    /// being enqueued. Back off and retry.
    Overloaded {
        /// The queue capacity that was exhausted.
        queue_capacity: usize,
    },
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The request waited in the queue past the per-request deadline.
    DeadlineExceeded {
        /// How long the request had waited when it was expired.
        waited_ms: u64,
    },
    /// The request was unintelligible or failed outside the queue path
    /// (malformed frame, unknown op, reload failure, ...).
    Error {
        /// What went wrong.
        message: String,
    },
    /// This node is a replication follower and the request mutates the
    /// database; re-send it to the leader.
    NotLeader {
        /// The leader's serve address, when this follower knows it.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        leader_hint: Option<String>,
    },
    /// Answer to a successful [`Request::Insert`].
    Inserted {
        /// Database id assigned to the ingested motion.
        id: usize,
        /// Motions in the visible database after the insert.
        motions: usize,
        /// True when the insert was WAL-logged to a durable store before
        /// being acknowledged; false means it lives only in memory.
        durable: bool,
    },
    /// Answer to a successful [`Request::Persist`].
    Persisted {
        /// Generation the new snapshot established.
        generation: u64,
        /// Entries captured in it.
        entries: usize,
        /// Its size in bytes.
        bytes: u64,
    },
    /// Answer to a successful [`Request::Compact`].
    Compacted {
        /// Generation the compaction snapshot established.
        generation: u64,
        /// Entries captured in it.
        entries: usize,
        /// Obsolete files deleted.
        files_removed: usize,
        /// Bytes those files occupied.
        bytes_reclaimed: u64,
    },
    /// Answer to [`Request::Health`].
    Health {
        /// Number of model swaps since the server started.
        model_generation: u64,
        /// Motions in the current model's database.
        motions: usize,
        /// Limb the current model was trained for.
        limb: Limb,
        /// Milliseconds since the server started.
        uptime_ms: u64,
        /// The node's cluster role (`single` outside a cluster).
        #[serde(default)]
        role: Role,
        /// Effective retrieval backend of the loaded model (`linear`,
        /// `hybrid`, or `ann`). Pre-ANN frames without the field decode
        /// as the historical `hybrid` default.
        #[serde(default)]
        index: kinemyo::IndexBackend,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The counters snapshot.
        stats: StatsSnapshot,
    },
    /// Answer to a successful [`Request::Reload`].
    Reloaded {
        /// Model generation after the swap.
        model_generation: u64,
        /// Motions in the newly loaded model.
        motions: usize,
    },
    /// Answer to a successful [`Request::SessionOpen`].
    SessionOpened {
        /// The allocated session id; quote it in every later session op.
        session: u64,
        /// Model generation the session bound at open.
        generation: u64,
        /// Window lengths of the running arms, primary first.
        window_lens: Vec<usize>,
        /// Per-window latency budget (µs) the server is serving under.
        budget_us: u64,
    },
    /// Answer to [`Request::SessionPush`]: rolling classifications for
    /// every window any arm completed, plus typed rejections for
    /// malformed frames (the session stays alive).
    SessionWindows {
        /// The session id (echoed for multiplexing clients).
        session: u64,
        /// Model generation the windows were scored against.
        generation: u64,
        /// Completed windows across all arms, in completion order.
        windows: Vec<RollingWindow>,
        /// Malformed frames rejected without killing the session.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        rejected: Vec<RejectedFrame>,
        /// Present when this push crossed the drift threshold.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        drift: Option<DriftReport>,
    },
    /// Answer to [`Request::SessionResult`].
    SessionResult {
        /// The rolling multi-arm verdict.
        verdict: SessionVerdict,
    },
    /// Answer to [`Request::SessionClose`].
    SessionClosed {
        /// Final accounting for the closed session.
        summary: SessionSummary,
    },
    /// The bounded session table is full; the open was shed. Back off,
    /// or close an idle session.
    SessionOverloaded {
        /// The session-table capacity that was exhausted.
        capacity: usize,
    },
    /// No live session with this id: it was never opened, was closed,
    /// or was evicted by the idle sweep. Re-open and re-stream.
    SessionUnknown {
        /// The id the request presented.
        session: u64,
    },
}

/// Errors raised by the serving layer itself (transport and framing);
/// classification failures travel inside [`Response`] variants instead.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame could not be encoded or decoded.
    Protocol {
        /// Decoder/encoder explanation.
        reason: String,
    },
    /// A frame exceeded [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Observed size so far, bytes.
        got: usize,
        /// The configured cap, bytes.
        max: usize,
    },
    /// The peer closed the connection mid-exchange.
    Closed,
    /// Every connection attempt in a bounded retry schedule failed; the
    /// peer is treated as down until a later retry cycle.
    Unavailable {
        /// Connection attempts spent.
        attempts: u32,
        /// The final attempt's failure, rendered.
        last: String,
    },
    /// The model could not be loaded (startup or reload).
    Model(kinemyo::KinemyoError),
    /// The durable store could not be opened or recovered at startup.
    Store(kinemyo_store::StoreError),
    /// Invalid server configuration.
    Config {
        /// The violated constraint.
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            ServeError::FrameTooLarge { got, max } => {
                write!(f, "frame too large: {got} bytes (cap {max})")
            }
            ServeError::Closed => write!(f, "connection closed by peer"),
            ServeError::Unavailable { attempts, last } => {
                write!(f, "peer unavailable after {attempts} attempt(s): {last}")
            }
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Config { reason } => write!(f, "invalid serve config: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Model(e) => Some(e),
            ServeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<kinemyo::KinemyoError> for ServeError {
    fn from(e: kinemyo::KinemyoError) -> Self {
        ServeError::Model(e)
    }
}

impl From<kinemyo_store::StoreError> for ServeError {
    fn from(e: kinemyo_store::StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Serializes `msg` as one newline-terminated JSON frame and flushes.
pub fn write_frame<W: Write, T: Serialize>(writer: &mut W, msg: &T) -> Result<(), ServeError> {
    let mut json = serde_json::to_string(msg).map_err(|e| ServeError::Protocol {
        reason: format!("frame encoding failed: {e}"),
    })?;
    json.push('\n');
    writer.write_all(json.as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Reads one newline-terminated frame and decodes it. Returns
/// [`ServeError::Closed`] on clean EOF before any bytes of a frame.
pub fn read_frame<R: BufRead, T: for<'de> Deserialize<'de>>(
    reader: &mut R,
) -> Result<T, ServeError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(ServeError::Closed);
    }
    if line.len() > MAX_FRAME_BYTES {
        return Err(ServeError::FrameTooLarge {
            got: line.len(),
            max: MAX_FRAME_BYTES,
        });
    }
    decode_frame(&line)
}

/// Decodes one already-read frame line.
pub fn decode_frame<T: for<'de> Deserialize<'de>>(line: &str) -> Result<T, ServeError> {
    serde_json::from_str(line.trim_end()).map_err(|e| ServeError::Protocol {
        reason: format!("frame decoding failed: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// True when the real serde_json backend is linked in. The offline
    /// stub build compiles this crate but cannot move JSON at runtime;
    /// roundtrip tests are skipped there (see `.claude/skills/verify`).
    fn json_available() -> bool {
        serde_json::to_string(&0u32).is_ok()
    }

    #[test]
    fn request_roundtrip_via_frames() {
        if !json_available() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Health).unwrap();
        write_frame(&mut buf, &Request::Stats).unwrap();
        write_frame(&mut buf, &Request::Shutdown).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 3);
        let mut reader = std::io::BufReader::new(&buf[..]);
        assert!(matches!(
            read_frame::<_, Request>(&mut reader).unwrap(),
            Request::Health
        ));
        assert!(matches!(
            read_frame::<_, Request>(&mut reader).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            read_frame::<_, Request>(&mut reader).unwrap(),
            Request::Shutdown
        ));
        assert!(matches!(
            read_frame::<_, Request>(&mut reader),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn responses_are_tagged_and_snake_cased() {
        if !json_available() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        let json = serde_json::to_string(&Response::Overloaded { queue_capacity: 7 }).unwrap();
        assert!(json.contains("\"status\":\"overloaded\""), "{json}");
        assert!(json.contains("\"queue_capacity\":7"), "{json}");
        let json = serde_json::to_string(&Response::ShuttingDown).unwrap();
        assert!(json.contains("shutting_down"), "{json}");
        let back: Response = decode_frame(&json).unwrap();
        assert!(matches!(back, Response::ShuttingDown));
    }

    #[test]
    fn store_ops_roundtrip_on_the_wire() {
        if !json_available() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        let json = serde_json::to_string(&Request::Persist).unwrap();
        assert!(json.contains("\"op\":\"persist\""), "{json}");
        assert!(matches!(
            decode_frame::<Request>(&json).unwrap(),
            Request::Persist
        ));
        let json = serde_json::to_string(&Request::Compact).unwrap();
        assert!(matches!(
            decode_frame::<Request>(&json).unwrap(),
            Request::Compact
        ));
        let json = serde_json::to_string(&Response::Inserted {
            id: 41,
            motions: 42,
            durable: true,
        })
        .unwrap();
        assert!(json.contains("\"status\":\"inserted\""), "{json}");
        match decode_frame::<Response>(&json).unwrap() {
            Response::Inserted {
                id,
                motions,
                durable,
            } => {
                assert_eq!(id, 41);
                assert_eq!(motions, 42);
                assert!(durable);
            }
            other => panic!("unexpected {other:?}"),
        }
        let json = serde_json::to_string(&Response::Persisted {
            generation: 3,
            entries: 9,
            bytes: 1024,
        })
        .unwrap();
        assert!(json.contains("\"status\":\"persisted\""), "{json}");
        let json = serde_json::to_string(&Response::Compacted {
            generation: 4,
            entries: 9,
            files_removed: 2,
            bytes_reclaimed: 2048,
        })
        .unwrap();
        assert!(json.contains("\"status\":\"compacted\""), "{json}");
        assert!(json.contains("\"bytes_reclaimed\":2048"), "{json}");
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        if !json_available() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        assert!(matches!(
            decode_frame::<Request>("not json"),
            Err(ServeError::Protocol { .. })
        ));
        assert!(matches!(
            decode_frame::<Request>("{\"op\":\"no_such_op\"}"),
            Err(ServeError::Protocol { .. })
        ));
    }

    #[test]
    fn cluster_variants_roundtrip_on_the_wire() {
        if !json_available() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        // NotLeader with and without a hint.
        let json = serde_json::to_string(&Response::NotLeader {
            leader_hint: Some("127.0.0.1:7001".into()),
        })
        .unwrap();
        assert!(json.contains("\"status\":\"not_leader\""), "{json}");
        match decode_frame::<Response>(&json).unwrap() {
            Response::NotLeader { leader_hint } => {
                assert_eq!(leader_hint.as_deref(), Some("127.0.0.1:7001"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let json = serde_json::to_string(&Response::NotLeader { leader_hint: None }).unwrap();
        assert!(!json.contains("leader_hint"), "{json}");

        // Health now reports the node role; pre-cluster frames without
        // the field still decode (role defaults to `single`).
        let json = serde_json::to_string(&Response::Health {
            model_generation: 1,
            motions: 9,
            limb: kinemyo_biosim::Limb::RightHand,
            uptime_ms: 5,
            role: Role::Follower,
            index: kinemyo::IndexBackend::Ann,
        })
        .unwrap();
        assert!(json.contains("\"role\":\"follower\""), "{json}");
        assert!(json.contains("\"index\":\"ann\""), "{json}");
        let legacy = json
            .replace(",\"role\":\"follower\"", "")
            .replace(",\"index\":\"ann\"", "");
        match decode_frame::<Response>(&legacy).unwrap() {
            Response::Health { role, index, .. } => {
                assert_eq!(role, Role::Single);
                assert_eq!(index, kinemyo::IndexBackend::Hybrid);
            }
            other => panic!("unexpected {other:?}"),
        }

        // BatchResult's cluster section is omitted when absent and
        // round-trips when a router attached one.
        let json = serde_json::to_string(&Response::BatchResult {
            results: Vec::new(),
            cluster: None,
        })
        .unwrap();
        assert!(!json.contains("cluster"), "{json}");
        let health = ClusterHealth::from_shards(vec![kinemyo::cluster::ShardHealth {
            shard: 0,
            replica: "127.0.0.1:7010".into(),
            attempts: 2,
            status: kinemyo::cluster::ShardStatus::Dead {
                reason: "connection refused".into(),
            },
            elapsed_ms: 12,
        }]);
        let json = serde_json::to_string(&Response::BatchResult {
            results: Vec::new(),
            cluster: Some(health.clone()),
        })
        .unwrap();
        assert!(json.contains("\"state\":\"dead\""), "{json}");
        match decode_frame::<Response>(&json).unwrap() {
            Response::BatchResult { cluster, .. } => assert_eq!(cluster, Some(health)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn session_ops_roundtrip_on_the_wire() {
        if !json_available() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        // Open defaults: policy omitted decodes as rebind, arms absent.
        let open: Request = decode_frame("{\"op\":\"session_open\"}").unwrap();
        match open {
            Request::SessionOpen { policy, arms } => {
                assert_eq!(policy, ReloadPolicy::Rebind);
                assert!(arms.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        let json = serde_json::to_string(&Request::SessionOpen {
            policy: ReloadPolicy::FinishOld,
            arms: Some(vec![15, 60]),
        })
        .unwrap();
        assert!(json.contains("\"op\":\"session_open\""), "{json}");
        assert!(json.contains("\"finish_old\""), "{json}");

        let json = serde_json::to_string(&Request::SessionPush {
            session: 7,
            frames: vec![WireFrame {
                mocap: vec![0.1 + 0.2],
                pelvis: [0.0, 1.0 / 3.0, 0.0],
                emg: vec![42.5],
                t_ms: Some(8),
            }],
        })
        .unwrap();
        assert!(json.contains("\"op\":\"session_push\""), "{json}");
        match decode_frame::<Request>(&json).unwrap() {
            Request::SessionPush { session, frames } => {
                assert_eq!(session, 7);
                // float_roundtrip keeps the payload bit-exact.
                assert_eq!(frames[0].mocap[0].to_bits(), (0.1f64 + 0.2).to_bits());
                assert_eq!(frames[0].pelvis[1].to_bits(), (1.0f64 / 3.0).to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }

        // Typed shedding and unknown-session refusals.
        let json = serde_json::to_string(&Response::SessionOverloaded { capacity: 64 }).unwrap();
        assert!(json.contains("\"status\":\"session_overloaded\""), "{json}");
        let json = serde_json::to_string(&Response::SessionUnknown { session: 9 }).unwrap();
        assert!(json.contains("\"status\":\"session_unknown\""), "{json}");

        // A windows response with no rejections omits the field and
        // decodes back to an empty vec.
        let json = serde_json::to_string(&Response::SessionWindows {
            session: 7,
            generation: 2,
            windows: vec![RollingWindow {
                arm: 30,
                window: 0,
                cluster: 3,
                membership: 0.91,
                margin: 0.4,
            }],
            rejected: Vec::new(),
            drift: None,
        })
        .unwrap();
        assert!(json.contains("\"status\":\"session_windows\""), "{json}");
        assert!(!json.contains("rejected"), "{json}");
        assert!(!json.contains("drift"), "{json}");
        match decode_frame::<Response>(&json).unwrap() {
            Response::SessionWindows {
                windows, rejected, ..
            } => {
                assert_eq!(windows.len(), 1);
                assert!(rejected.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        let json = serde_json::to_string(&Response::SessionWindows {
            session: 7,
            generation: 3,
            windows: Vec::new(),
            rejected: vec![RejectedFrame {
                index: 2,
                reason: "mocap value at column 1 is not finite".into(),
            }],
            drift: Some(DriftReport {
                window: 12,
                retrained: true,
                generation: 3,
            }),
        })
        .unwrap();
        assert!(json.contains("\"retrained\":true"), "{json}");
        match decode_frame::<Response>(&json).unwrap() {
            Response::SessionWindows {
                rejected, drift, ..
            } => {
                assert_eq!(rejected[0].index, 2);
                assert_eq!(drift.map(|d| d.window), Some(12));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = ServeError::FrameTooLarge { got: 100, max: 10 };
        assert!(e.to_string().contains("100"));
        let e = ServeError::Protocol {
            reason: "bad tag".into(),
        };
        assert!(e.to_string().contains("bad tag"));
        assert!(ServeError::Closed.to_string().contains("closed"));
        let e = ServeError::Unavailable {
            attempts: 4,
            last: "connection refused".into(),
        };
        let rendered = e.to_string();
        assert!(rendered.contains("4 attempt(s)"), "{rendered}");
        assert!(rendered.contains("connection refused"), "{rendered}");
    }
}
