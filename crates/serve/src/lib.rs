//! # kinemyo-serve
//!
//! A production-shaped classification daemon for the kinemyo pipeline:
//! newline-delimited JSON over TCP, a bounded request queue with explicit
//! load shedding, a micro-batcher that coalesces concurrent queries onto
//! [`MotionClassifier::classify_batch`](kinemyo::MotionClassifier::classify_batch),
//! hot model reload through an atomically swappable
//! [`SharedModel`](kinemyo::SharedModel), per-request deadlines, and a
//! graceful drain shutdown. Plain `std::net` + OS threads — no async
//! runtime.
//!
//! With a store directory configured
//! ([`ServeConfig::with_store_dir`](server::ServeConfig::with_store_dir)),
//! `insert` requests are WAL-logged through a
//! [`kinemyo_store::DurableDb`] before they are acknowledged, and a
//! restarted daemon recovers every ingested motion bit-identically.
//!
//! Beyond request/response, the daemon serves long-lived **streaming
//! sessions** (`session_open` / `session_push` / `session_result` /
//! `session_close`): clients push interleaved mocap/EMG frames and get
//! rolling per-window classifications, multi-window arm comparisons, and
//! drift-triggered hot re-training — see [`kinemyo_session`] for the
//! engine and `DESIGN.md` §17 for the lifecycle and invariants.
//!
//! ## Architecture
//!
//! ```text
//! clients ──TCP──► acceptor ──► connection threads
//!                                   │ try_send (shed on full)
//!                                   ▼
//!                     bounded job queue (sync_channel)
//!                                   ▼
//!                     micro-batcher (size/time budget)
//!                                   ▼
//!                     worker pool ── classify_batch ──► per-job replies
//! ```
//!
//! Backpressure is honest end to end: every queue is bounded, and a full
//! queue produces a typed `overloaded` response instead of latency.
//!
//! ## Quick start
//!
//! ```no_run
//! use kinemyo_serve::{ServeClient, ServeConfig, Server};
//! # use kinemyo::{MotionClassifier, PipelineConfig};
//! # use kinemyo_biosim::{Dataset, DatasetSpec};
//! # let dataset = Dataset::generate(DatasetSpec::hand_default().with_size(1, 2)).unwrap();
//! # let refs: Vec<_> = dataset.records.iter().collect();
//! # let model = MotionClassifier::train(&refs, dataset.spec.limb,
//! #     &PipelineConfig::default()).unwrap();
//!
//! let server = Server::start(model, ServeConfig::default()).unwrap();
//! let addr = server.local_addr();
//!
//! let mut client = ServeClient::connect(addr).unwrap();
//! let result = client.classify(&dataset.records[0]).unwrap();
//! println!("predicted {:?}", result.predicted);
//!
//! server.shutdown();
//! let stats = server.wait();
//! assert_eq!(stats.served, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backoff;
pub mod client;
pub mod protocol;
pub mod server;
mod session;
pub mod stats;

pub use backoff::{Backoff, RetryPolicy};
pub use client::{CallOutcome, ServeClient};
pub use protocol::{
    decode_frame, read_frame, write_frame, BatchItem, Request, Response, Role, ServeError,
    MAX_FRAME_BYTES,
};
pub use server::{ServeConfig, Server};
pub use stats::{StatsCollector, StatsSnapshot, BATCH_BOUNDS, LATENCY_BOUNDS_US};

// Session wire types travel inside `session_*` frames; re-exported so
// protocol consumers need only this crate.
pub use kinemyo_session::{
    DriftConfig, DriftReport, RejectedFrame, ReloadPolicy, RetrainSource, RollingWindow,
    SessionConfig, SessionStatsSnapshot, SessionSummary, SessionVerdict, WireFrame,
};
