//! The session engine: the daemon-side facade tying together the
//! bounded table, the per-session arm engines, and the online-adaptation
//! loop (drift trigger → snapshot → deterministic re-train → shared
//! model swap).

use crate::config::SessionConfig;
use crate::session::WireSession;
use crate::table::SessionTable;
use crate::wire::{
    DriftReport, RejectedFrame, ReloadPolicy, RollingWindow, SessionStatsSnapshot, SessionSummary,
    SessionVerdict, WireFrame,
};
use crate::{Result, SessionError};
use kinemyo::{MotionClassifier, PipelineConfig, SharedModel};
use kinemyo_biosim::{Limb, MotionRecord};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The corpus a drift-triggered re-train runs against: the base training
/// records plus the triggering session's snapshot. Training is
/// deterministic given these inputs and the pipeline seed, which is what
/// makes "same replay ⇒ byte-equal post-reload model" testable.
#[derive(Debug)]
pub struct RetrainSource {
    /// Base training records (the corpus the serving model came from).
    pub records: Vec<MotionRecord>,
    /// Limb under study; must match the serving model.
    pub limb: Limb,
    /// Pipeline configuration (clusters, seed, modality, ...) for the
    /// re-train.
    pub config: PipelineConfig,
}

/// What `open` returns: everything the wire's `session_opened` carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opened {
    /// The allocated session id.
    pub session: u64,
    /// Model generation the session bound at open.
    pub generation: u64,
    /// Window lengths of the running arms, primary first.
    pub window_lens: Vec<usize>,
    /// Per-window latency budget (µs) the daemon is serving under.
    pub budget_us: u64,
}

/// What one `push` returns: everything `session_windows` carries.
#[derive(Debug, Clone, PartialEq)]
pub struct PushReply {
    /// The session id (echoed for multiplexing clients).
    pub session: u64,
    /// Model generation the windows were scored against.
    pub generation: u64,
    /// Completed windows across all arms, in completion order.
    pub windows: Vec<RollingWindow>,
    /// Malformed frames rejected without killing the session.
    pub rejected: Vec<RejectedFrame>,
    /// Present when this push crossed the drift threshold.
    pub drift: Option<DriftReport>,
}

#[derive(Debug, Default)]
struct Counters {
    opened: AtomicU64,
    closed: AtomicU64,
    evicted: AtomicU64,
    shed: AtomicU64,
    unknown: AtomicU64,
    frames: AtomicU64,
    rejected_frames: AtomicU64,
    windows: AtomicU64,
    drift_triggers: AtomicU64,
    retrains: AtomicU64,
}

/// The long-lived session engine embedded in the serve daemon. All
/// methods take `&self`: sessions are interior-mutable behind their
/// slots, so pushes on different sessions run concurrently, and a hot
/// re-train only holds the triggering session's lock.
#[derive(Debug)]
pub struct SessionEngine {
    table: SessionTable,
    shared: SharedModel,
    config: SessionConfig,
    retrain: Option<Arc<RetrainSource>>,
    retrain_busy: AtomicBool,
    counters: Counters,
    epoch: Instant,
}

impl SessionEngine {
    /// Builds an engine over a shared model handle. Without a
    /// [`RetrainSource`] drift triggers are observed and reported but
    /// never re-train.
    pub fn new(shared: SharedModel, config: SessionConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            table: SessionTable::new(config.max_sessions),
            shared,
            config,
            retrain: None,
            retrain_busy: AtomicBool::new(false),
            counters: Counters::default(),
            epoch: Instant::now(),
        })
    }

    /// Wires in the re-train corpus, arming the online-adaptation loop.
    pub fn with_retrain(mut self, source: impl Into<Arc<RetrainSource>>) -> Self {
        self.retrain = Some(source.into());
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The shared model handle sessions bind against.
    pub fn shared(&self) -> &SharedModel {
        &self.shared
    }

    /// Whether the online-adaptation loop is armed.
    pub fn retrain_armed(&self) -> bool {
        self.retrain.is_some()
    }

    fn now_ms(&self) -> u64 {
        // Truncation after ~584 million years of uptime is acceptable.
        self.epoch.elapsed().as_millis() as u64
    }

    /// Opens a session, shedding with [`SessionError::Overloaded`] at
    /// capacity. `extra_arms` overrides the configured arm lengths when
    /// present.
    pub fn open(&self, policy: ReloadPolicy, extra_arms: Option<&[usize]>) -> Result<Opened> {
        let arms = extra_arms.unwrap_or(&self.config.extra_arms);
        let id = self.table.reserve_id();
        let session = WireSession::open(
            id,
            &self.shared,
            policy,
            arms,
            self.config.drift,
            self.config.snapshot_frames,
        )?;
        let generation = session.generation();
        let window_lens = session.window_lens();
        match self.table.insert(session, self.now_ms()) {
            Ok(_slot) => {
                self.counters.opened.fetch_add(1, Ordering::Relaxed);
                Ok(Opened {
                    session: id,
                    generation,
                    window_lens,
                    budget_us: self.config.window_budget_us,
                })
            }
            Err(e) => {
                if matches!(e, SessionError::Overloaded { .. }) {
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Pushes frames into a session: applies the reload policy against
    /// the current model generation, streams the frames through every
    /// arm, and — when the drift detector fires — runs the hot re-train
    /// and swaps the shared model.
    pub fn push(&self, id: u64, frames: &[WireFrame]) -> Result<PushReply> {
        let Some(slot) = self.table.get(id) else {
            self.counters.unknown.fetch_add(1, Ordering::Relaxed);
            return Err(SessionError::UnknownSession { session: id });
        };
        // Stamp before the work so a long push cannot be evicted from
        // under the caller by a concurrent sweep.
        slot.touch(self.now_ms());
        let mut session = slot.lock();
        session.observe_generation(&self.shared);
        let out = session.push_frames(frames);
        let accepted = frames.len() - out.rejected.len();
        self.counters
            .frames
            .fetch_add(accepted as u64, Ordering::Relaxed);
        self.counters
            .rejected_frames
            .fetch_add(out.rejected.len() as u64, Ordering::Relaxed);
        self.counters
            .windows
            .fetch_add(out.windows.len() as u64, Ordering::Relaxed);
        let drift = match out.drift_at {
            Some(window) => {
                self.counters.drift_triggers.fetch_add(1, Ordering::Relaxed);
                Some(self.handle_drift(&mut session, window))
            }
            None => None,
        };
        let reply = PushReply {
            session: id,
            generation: session.generation(),
            windows: out.windows,
            rejected: out.rejected,
            drift,
        };
        drop(session);
        slot.touch(self.now_ms());
        Ok(reply)
    }

    /// The rolling multi-arm verdict for a live session.
    pub fn result(&self, id: u64) -> Result<SessionVerdict> {
        let Some(slot) = self.table.get(id) else {
            self.counters.unknown.fetch_add(1, Ordering::Relaxed);
            return Err(SessionError::UnknownSession { session: id });
        };
        slot.touch(self.now_ms());
        let session = slot.lock();
        session.verdict(self.config.knn_k)
    }

    /// Closes a session and returns its final accounting.
    pub fn close(&self, id: u64) -> Result<SessionSummary> {
        let Some(slot) = self.table.remove(id) else {
            self.counters.unknown.fetch_add(1, Ordering::Relaxed);
            return Err(SessionError::UnknownSession { session: id });
        };
        self.counters.closed.fetch_add(1, Ordering::Relaxed);
        let session = slot.lock();
        session.summary(self.config.knn_k)
    }

    /// Evicts sessions idle past the configured timeout; returns how
    /// many were evicted. The serve daemon calls this from its accept
    /// loop's idle ticks.
    pub fn sweep_idle(&self) -> usize {
        let timeout_ms = self.config.idle_timeout.as_millis() as u64;
        let evicted = self.table.sweep_idle(self.now_ms(), timeout_ms);
        self.counters
            .evicted
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        evicted.len()
    }

    /// Live session count.
    pub fn live_sessions(&self) -> usize {
        self.table.len()
    }

    /// A point-in-time counter snapshot for `ServerStats`.
    pub fn stats(&self) -> SessionStatsSnapshot {
        SessionStatsSnapshot {
            opened: self.counters.opened.load(Ordering::Relaxed),
            closed: self.counters.closed.load(Ordering::Relaxed),
            evicted: self.counters.evicted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            unknown: self.counters.unknown.load(Ordering::Relaxed),
            frames: self.counters.frames.load(Ordering::Relaxed),
            rejected_frames: self.counters.rejected_frames.load(Ordering::Relaxed),
            windows: self.counters.windows.load(Ordering::Relaxed),
            drift_triggers: self.counters.drift_triggers.load(Ordering::Relaxed),
            retrains: self.counters.retrains.load(Ordering::Relaxed),
            live: self.table.len() as u64,
        }
    }

    /// Handles a drift trigger: snapshot the session, re-train against
    /// the base corpus plus that snapshot, swap the shared model. Runs
    /// on the pushing connection's thread while holding only the
    /// triggering session's lock, so every other session keeps streaming
    /// (and none of their frames are dropped) while the re-train runs.
    fn handle_drift(&self, session: &mut WireSession, window: usize) -> DriftReport {
        let not_retrained = |generation| DriftReport {
            window,
            retrained: false,
            generation,
        };
        let Some(source) = &self.retrain else {
            return not_retrained(self.shared.generation());
        };
        if session.snapshot_len() < session.primary_window_len() {
            return not_retrained(self.shared.generation());
        }
        let Ok(Some(class)) = session.primary_prediction(self.config.knn_k) else {
            return not_retrained(self.shared.generation());
        };
        // One re-train at a time daemon-wide; a concurrent trigger loses
        // the race, reports `retrained: false`, and its session simply
        // observes the winner's generation bump.
        if self.retrain_busy.swap(true, Ordering::AcqRel) {
            return not_retrained(self.shared.generation());
        }
        let next_id = source.records.iter().map(|r| r.id + 1).max().unwrap_or(0);
        let retrained = session
            .snapshot_record(next_id, class)
            .and_then(|snapshot| {
                let mut refs: Vec<&MotionRecord> = source.records.iter().collect();
                refs.push(&snapshot);
                MotionClassifier::train(&refs, source.limb, &source.config)
                    .map_err(SessionError::from)
            });
        self.retrain_busy.store(false, Ordering::Release);
        match retrained {
            Ok(model) => {
                self.shared.swap(model);
                self.counters.retrains.fetch_add(1, Ordering::Relaxed);
                // The triggering session sees the new model immediately
                // under its own policy.
                session.observe_generation(&self.shared);
                DriftReport {
                    window,
                    retrained: true,
                    generation: self.shared.generation(),
                }
            }
            Err(_) => not_retrained(self.shared.generation()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DriftConfig;
    use kinemyo_biosim::{Dataset, DatasetSpec};
    use std::time::Duration;

    fn base() -> (Vec<MotionRecord>, SharedModel, PipelineConfig) {
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
        let cfg = PipelineConfig::default().with_clusters(8);
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let model = MotionClassifier::train(&refs, Limb::RightHand, &cfg).unwrap();
        (ds.records, SharedModel::new(model), cfg)
    }

    fn frames_of(r: &MotionRecord) -> Vec<WireFrame> {
        (0..r.frames())
            .map(|f| WireFrame {
                mocap: r.mocap.row(f).to_vec(),
                pelvis: [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z],
                emg: r.emg.row(f).to_vec(),
                t_ms: None,
            })
            .collect()
    }

    #[test]
    fn open_push_result_close_roundtrip() {
        let (records, shared, _cfg) = base();
        let engine = SessionEngine::new(shared, SessionConfig::default()).unwrap();
        let opened = engine.open(ReloadPolicy::Rebind, None).unwrap();
        assert_eq!(opened.window_lens.len(), 1);
        let frames = frames_of(&records[0]);
        let reply = engine.push(opened.session, &frames).unwrap();
        assert!(!reply.windows.is_empty());
        assert!(reply.rejected.is_empty());
        let verdict = engine.result(opened.session).unwrap();
        assert_eq!(verdict.predicted, Some(records[0].class));
        let summary = engine.close(opened.session).unwrap();
        assert_eq!(summary.frames, frames.len() as u64);
        assert!(matches!(
            engine.push(opened.session, &frames),
            Err(SessionError::UnknownSession { .. })
        ));
        let stats = engine.stats();
        assert_eq!(stats.opened, 1);
        assert_eq!(stats.closed, 1);
        assert_eq!(stats.unknown, 1);
        assert_eq!(stats.live, 0);
    }

    #[test]
    fn capacity_sheds_typed() {
        let (_records, shared, _cfg) = base();
        let engine =
            SessionEngine::new(shared, SessionConfig::default().with_max_sessions(2)).unwrap();
        engine.open(ReloadPolicy::Rebind, None).unwrap();
        engine.open(ReloadPolicy::Rebind, None).unwrap();
        assert!(matches!(
            engine.open(ReloadPolicy::Rebind, None),
            Err(SessionError::Overloaded { capacity: 2 })
        ));
        assert_eq!(engine.stats().shed, 1);
    }

    #[test]
    fn idle_sweep_evicts() {
        let (_records, shared, _cfg) = base();
        let engine = SessionEngine::new(
            shared,
            SessionConfig::default().with_idle_timeout(Duration::from_millis(1)),
        )
        .unwrap();
        let opened = engine.open(ReloadPolicy::Rebind, None).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(engine.sweep_idle(), 1);
        assert_eq!(engine.live_sessions(), 0);
        assert!(matches!(
            engine.result(opened.session),
            Err(SessionError::UnknownSession { .. })
        ));
    }

    #[test]
    fn malformed_frames_keep_session_alive() {
        let (records, shared, _cfg) = base();
        let engine = SessionEngine::new(shared, SessionConfig::default()).unwrap();
        let opened = engine.open(ReloadPolicy::Rebind, None).unwrap();
        let mut frames = frames_of(&records[0]);
        frames[3].mocap[0] = f64::NAN;
        frames[7].emg.pop();
        let reply = engine.push(opened.session, &frames).unwrap();
        assert_eq!(reply.rejected.len(), 2);
        assert_eq!(reply.rejected[0].index, 3);
        assert_eq!(reply.rejected[1].index, 7);
        // Session is still live and classifying.
        assert!(engine.result(opened.session).is_ok());
        assert_eq!(engine.stats().rejected_frames, 2);
    }

    #[test]
    fn multi_arm_winner_is_reported() {
        let (records, shared, _cfg) = base();
        let win = shared.load().window().len();
        let engine = SessionEngine::new(
            shared,
            SessionConfig::default().with_extra_arms(vec![win / 2, win * 2]),
        )
        .unwrap();
        let opened = engine.open(ReloadPolicy::Rebind, None).unwrap();
        assert_eq!(opened.window_lens, vec![win, win / 2, win * 2]);
        engine
            .push(opened.session, &frames_of(&records[2]))
            .unwrap();
        let verdict = engine.result(opened.session).unwrap();
        assert_eq!(verdict.arms.len(), 3);
        assert!(verdict
            .arms
            .iter()
            .any(|a| a.window_len == verdict.winner_window_len));
        let winner = verdict
            .arms
            .iter()
            .find(|a| a.window_len == verdict.winner_window_len)
            .unwrap();
        for arm in &verdict.arms {
            assert!(winner.mean_margin.total_cmp(&arm.mean_margin).is_ge());
        }
    }

    #[test]
    fn drift_triggers_deterministic_retrain() {
        let (records, _shared, cfg) = base();
        let drift = DriftConfig {
            enabled: true,
            baseline: 2,
            recent: 2,
            ratio: 0.9,
            min_windows: 4,
            cooldown: 4,
        };
        let run = |shared: SharedModel| {
            let engine = SessionEngine::new(
                shared,
                SessionConfig::default()
                    .with_drift(drift)
                    .with_snapshot_frames(256),
            )
            .unwrap()
            .with_retrain(RetrainSource {
                records: records.clone(),
                limb: Limb::RightHand,
                config: cfg.clone(),
            });
            let opened = engine.open(ReloadPolicy::Rebind, None).unwrap();
            // Confident prefix, then a scrambled tail: margins collapse.
            let mut reports = Vec::new();
            for r in [&records[0], &records[0]] {
                let reply = engine.push(opened.session, &frames_of(r)).unwrap();
                reports.extend(reply.drift);
            }
            let mut tail = frames_of(&records[0]);
            for (i, f) in tail.iter_mut().enumerate() {
                for (j, v) in f.emg.iter_mut().enumerate() {
                    *v = ((i * 31 + j * 7) % 13) as f64 * 40.0;
                }
                for (j, v) in f.mocap.iter_mut().enumerate() {
                    *v += (((i * 17 + j * 3) % 11) as f64 - 5.0) * 60.0;
                }
            }
            for _ in 0..4 {
                let reply = engine.push(opened.session, &tail).unwrap();
                reports.extend(reply.drift);
            }
            (reports, engine.shared().load(), engine.stats())
        };
        let refs: Vec<&MotionRecord> = records.iter().collect();
        let m0 = MotionClassifier::train(&refs, Limb::RightHand, &cfg).unwrap();
        let (reports_a, model_a, stats_a) = run(SharedModel::new(
            MotionClassifier::train(&refs, Limb::RightHand, &cfg).unwrap(),
        ));
        let (reports_b, model_b, stats_b) = run(SharedModel::new(
            MotionClassifier::train(&refs, Limb::RightHand, &cfg).unwrap(),
        ));
        // Same stream ⇒ same trigger point and identical post-retrain
        // model (training is deterministic under the pipeline seed).
        assert_eq!(reports_a, reports_b);
        assert_eq!(stats_a.drift_triggers, stats_b.drift_triggers);
        assert_eq!(stats_a.retrains, stats_b.retrains);
        if stats_a.retrains > 0 {
            let dir = std::env::temp_dir();
            let pa = dir.join(format!("kinemyo_drift_a_{}.json", std::process::id()));
            let pb = dir.join(format!("kinemyo_drift_b_{}.json", std::process::id()));
            // Byte-equality is only provable where the JSON runtime is
            // real; under the stub it degrades to the counters above.
            if model_a.save_json(&pa).is_ok() && model_b.save_json(&pb).is_ok() {
                let a = std::fs::read(&pa).unwrap();
                let b = std::fs::read(&pb).unwrap();
                assert_eq!(a, b, "post-retrain models must be byte-equal");
            }
            let _ = std::fs::remove_file(&pa);
            let _ = std::fs::remove_file(&pb);
            // And the retrained corpus grew by the snapshot record.
            assert_ne!(
                model_a.db().len(),
                m0.db().len(),
                "retrain must fold the snapshot record into the corpus"
            );
        }
    }

    #[test]
    fn finish_old_pins_generation_while_rebind_follows() {
        let (records, shared, cfg) = base();
        let engine = SessionEngine::new(shared, SessionConfig::default()).unwrap();
        let pinned = engine.open(ReloadPolicy::FinishOld, None).unwrap();
        let follower = engine.open(ReloadPolicy::Rebind, None).unwrap();
        assert_eq!(pinned.generation, follower.generation);
        // External hot reload: generation bump through the shared handle.
        let refs: Vec<&MotionRecord> = records.iter().collect();
        let next = MotionClassifier::train(&refs, Limb::RightHand, &cfg).unwrap();
        engine.shared().swap(next);
        let frames = frames_of(&records[1]);
        let a = engine.push(pinned.session, &frames).unwrap();
        let b = engine.push(follower.session, &frames).unwrap();
        assert_eq!(a.generation, pinned.generation, "finish_old stays pinned");
        assert_eq!(b.generation, follower.generation + 1, "rebind follows");
        // Both still produce rolling windows — no frames lost either way.
        assert!(!a.windows.is_empty());
        assert!(!b.windows.is_empty());
    }
}
