//! Serde-facing session types. These structs appear verbatim inside the
//! serve protocol's `session_*` request/response frames, so every field
//! here is wire format: additions must be `#[serde(default)]` and
//! nothing may be renamed without a protocol version bump.

use kinemyo_biosim::MotionClass;
use serde::{Deserialize, Serialize};

/// One synchronized sensor frame as it crosses the wire: a mocap marker
/// row (pelvis-global millimetres), the pelvis position for that frame,
/// and one EMG sample per channel. `serde_json` is configured with
/// `float_roundtrip`, so the f64 payload survives the socket bit-exactly
/// — the precondition for wire/batch bit-identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireFrame {
    /// Marker coordinates, `3 * joints` values.
    pub mocap: Vec<f64>,
    /// Pelvis position `[x, y, z]` for pelvis-local normalization.
    pub pelvis: [f64; 3],
    /// One sample per EMG channel.
    pub emg: Vec<f64>,
    /// Optional capture timestamp (milliseconds) from the replay corpus;
    /// carried for observability, never used in classification.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub t_ms: Option<u64>,
}

/// How a session reacts to a model generation bump (hot reload or
/// drift-triggered re-train) while it is mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ReloadPolicy {
    /// Rebind to the new model at the next push: rolling windows from
    /// then on score against the fresh centers. The incremental
    /// extractor state carries over (features are model-independent).
    #[default]
    Rebind,
    /// Finish the stream on the `Arc` snapshot the session opened with;
    /// the old model stays alive until the last such session closes.
    FinishOld,
}

/// One completed window's rolling classification, emitted inside a
/// `session_windows` response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RollingWindow {
    /// Window length (frames) of the arm that completed — the arm's id.
    pub arm: usize,
    /// Zero-based window index within that arm.
    pub window: usize,
    /// Winning fuzzy cluster.
    pub cluster: usize,
    /// Winning membership value.
    pub membership: f64,
    /// Margin over the runner-up cluster.
    pub margin: f64,
}

/// A frame the session rejected (wrong arity, non-finite values). The
/// session stays alive; the frame was not buffered by any arm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectedFrame {
    /// Index of the frame within the push that carried it.
    pub index: usize,
    /// Typed reason, rendered from the pipeline error.
    pub reason: String,
}

/// Drift-detector outcome piggybacked on a `session_windows` response
/// when the observed push crossed the drift threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Primary-arm window index (within the session) that triggered.
    pub window: usize,
    /// Whether the hot re-train ran and swapped the shared model.
    /// `false` means the trigger was observed but re-training was
    /// unavailable (no corpus wired), already in flight, or failed.
    pub retrained: bool,
    /// Shared-model generation after handling the trigger.
    pub generation: u64,
}

/// Per-arm rollup reported by `session_result` / `session_close`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmReport {
    /// The arm's window length in frames.
    pub window_len: usize,
    /// Completed windows.
    pub windows: usize,
    /// Mean membership margin over those windows (0 before the first).
    pub mean_margin: f64,
    /// The arm's rolling classification, absent before its first window.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub predicted: Option<MotionClass>,
}

/// The rolling verdict for a live session (`session_result`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionVerdict {
    /// Session id.
    pub session: u64,
    /// Model generation the verdict was computed against.
    pub generation: u64,
    /// Frames accepted so far.
    pub frames: u64,
    /// All arms, primary first.
    pub arms: Vec<ArmReport>,
    /// Window length of the winning arm (highest mean margin; ties to
    /// the earlier arm). Always present — with no completed windows the
    /// primary arm wins vacuously.
    pub winner_window_len: usize,
    /// The winning arm's classification, absent before its first window.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub predicted: Option<MotionClass>,
}

/// Final accounting returned by `session_close`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Session id.
    pub session: u64,
    /// Frames accepted over the session's lifetime.
    pub frames: u64,
    /// Frames rejected (malformed) over the session's lifetime.
    pub rejected_frames: u64,
    /// Drift triggers observed on this session.
    pub drift_triggers: u64,
    /// The closing verdict.
    pub verdict: SessionVerdict,
}

/// Aggregate session counters folded into the daemon's `ServerStats`.
/// All integers, so the enclosing snapshot keeps its `Eq`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct SessionStatsSnapshot {
    /// Sessions opened.
    pub opened: u64,
    /// Sessions closed by the client.
    pub closed: u64,
    /// Sessions evicted by the idle sweep.
    pub evicted: u64,
    /// Opens shed at capacity.
    pub shed: u64,
    /// Pushes/results addressed to unknown session ids.
    pub unknown: u64,
    /// Frames accepted across all sessions.
    pub frames: u64,
    /// Frames rejected as malformed.
    pub rejected_frames: u64,
    /// Windows completed across all arms.
    pub windows: u64,
    /// Drift triggers observed.
    pub drift_triggers: u64,
    /// Hot re-trains completed (model generation bumps).
    pub retrains: u64,
    /// Live sessions at snapshot time (gauge).
    pub live: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json_available() -> bool {
        serde_json::to_string(&0u32).is_ok()
    }

    #[test]
    fn wire_frame_roundtrips_bit_exact() {
        if !json_available() {
            return;
        }
        let f = WireFrame {
            mocap: vec![0.1 + 0.2, f64::MIN_POSITIVE, -1_234.567_890_123_456_7],
            pelvis: [1.0 / 3.0, 0.0, -0.0],
            emg: vec![1e-300, 7.297_352_569_3e-3],
            t_ms: Some(42),
        };
        let s = serde_json::to_string(&f).unwrap();
        let back: WireFrame = serde_json::from_str(&s).unwrap();
        for (a, b) in f.mocap.iter().zip(&back.mocap) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in f.emg.iter().zip(&back.emg) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in f.pelvis.iter().zip(&back.pelvis) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.t_ms, Some(42));
    }

    #[test]
    fn reload_policy_wire_names() {
        if !json_available() {
            return;
        }
        assert_eq!(
            serde_json::to_string(&ReloadPolicy::Rebind).unwrap(),
            "\"rebind\""
        );
        assert_eq!(
            serde_json::to_string(&ReloadPolicy::FinishOld).unwrap(),
            "\"finish_old\""
        );
        let p: ReloadPolicy = serde_json::from_str("\"finish_old\"").unwrap();
        assert_eq!(p, ReloadPolicy::FinishOld);
    }

    #[test]
    fn stats_snapshot_tolerates_missing_fields() {
        if !json_available() {
            return;
        }
        let s: SessionStatsSnapshot = serde_json::from_str("{\"opened\":3}").unwrap();
        assert_eq!(s.opened, 3);
        assert_eq!(s.retrains, 0);
        assert_eq!(SessionStatsSnapshot::default().opened, 0);
    }
}
