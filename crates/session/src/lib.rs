//! # kinemyo-session
//!
//! Long-lived streaming classification sessions, the engine behind the
//! serve daemon's `session_*` wire operations.
//!
//! The paper's pipeline is batch: record a whole motion, window it,
//! extract features, classify. A prosthetic controller or live telemetry
//! consumer instead holds a connection open and pushes synchronized
//! mocap/EMG frames as they are captured. This crate turns that traffic
//! into a first-class workload:
//!
//! * [`SessionEngine`] — the daemon-side facade: open / push / result /
//!   close, bounded by a [`SessionTable`] with typed overload shedding
//!   and idle-timeout eviction.
//! * Each session runs one [`kinemyo::SessionCore`] per configured
//!   window length (a multi-window "arm" study, after the window-length
//!   sensitivity results in the EMG literature); the per-stream winner
//!   is the arm with the highest mean membership margin.
//! * A deterministic [`DriftDetector`] watches the primary arm's margin
//!   distribution; past the configured threshold the engine snapshots
//!   the session's recent frames, re-trains against the base corpus plus
//!   that snapshot, and swaps the model through the existing
//!   [`kinemyo::SharedModel`] generation reload. In-flight sessions
//!   observe the generation bump and either rebind or finish on the old
//!   model — their [`ReloadPolicy`] is typed per session.
//!
//! Because the arm engines are the same incremental extractors used by
//! the batch query path and the guard layer's clean path, a clean wire
//! session reproduces offline `evaluate_guarded` classifications bit for
//! bit — the invariant the serve-layer e2e suite pins down.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod config;
mod drift;
mod engine;
mod session;
mod table;
mod wire;

pub use config::{DriftConfig, SessionConfig};
pub use drift::DriftDetector;
pub use engine::{Opened, PushReply, RetrainSource, SessionEngine};
pub use session::WireSession;
pub use table::{SessionSlot, SessionTable};
pub use wire::{
    ArmReport, DriftReport, RejectedFrame, ReloadPolicy, RollingWindow, SessionStatsSnapshot,
    SessionSummary, SessionVerdict, WireFrame,
};

use std::fmt;

/// Typed failures of the session layer. The serve crate maps these onto
/// wire responses (`session_overloaded`, `session_unknown`, ...).
#[derive(Debug)]
pub enum SessionError {
    /// The session table is at capacity; the open was shed.
    Overloaded {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// No live session with this id (never opened, closed, or evicted).
    UnknownSession {
        /// The id the caller presented.
        session: u64,
    },
    /// The engine or session configuration is invalid.
    Config {
        /// Human-readable explanation.
        reason: String,
    },
    /// The underlying model pipeline failed.
    Model(kinemyo::KinemyoError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { capacity } => {
                write!(f, "session table at capacity ({capacity}); open shed")
            }
            Self::UnknownSession { session } => write!(f, "no live session {session}"),
            Self::Config { reason } => write!(f, "invalid session config: {reason}"),
            Self::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kinemyo::KinemyoError> for SessionError {
    fn from(e: kinemyo::KinemyoError) -> Self {
        Self::Model(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, SessionError>;
