//! One live wire session: the multi-window arm engines, the model
//! binding (with its typed reload policy), the drift detector, and the
//! bounded snapshot ring that feeds a drift-triggered re-train.

use crate::config::{DriftConfig, MAX_ARMS};
use crate::drift::DriftDetector;
use crate::wire::{
    ArmReport, RejectedFrame, ReloadPolicy, RollingWindow, SessionSummary, SessionVerdict,
    WireFrame,
};
use crate::{Result, SessionError};
use kinemyo::{MotionClassifier, SessionCore, SharedModel};
use kinemyo_biosim::{MotionClass, MotionRecord, Vec3};
use kinemyo_linalg::Matrix;
use std::collections::VecDeque;
use std::sync::Arc;

/// What one `session_push` produced, before the engine layers on drift
/// handling and stats.
#[derive(Debug)]
pub(crate) struct PushOutput {
    /// Completed windows across all arms, in completion order.
    pub windows: Vec<RollingWindow>,
    /// Frames rejected with their typed reasons; the session is alive.
    pub rejected: Vec<RejectedFrame>,
    /// Primary-arm window index that crossed the drift threshold, if any
    /// did during this push.
    pub drift_at: Option<usize>,
}

/// A live streaming session. Owned by a [`crate::SessionSlot`]; all
/// methods run under the slot's mutex.
#[derive(Debug)]
pub struct WireSession {
    id: u64,
    model: Arc<MotionClassifier>,
    generation: u64,
    policy: ReloadPolicy,
    /// Arm engines; `arms[0]` runs the model's trained window length and
    /// is the drift/snapshot reference.
    arms: Vec<SessionCore>,
    drift: DriftDetector,
    /// Raw accepted frames, newest at the back, bounded.
    snapshot: VecDeque<WireFrame>,
    snapshot_cap: usize,
    frames: u64,
    rejected_frames: u64,
    drift_triggers: u64,
}

impl WireSession {
    /// Opens a session against the shared model's current generation.
    /// `extra_arms` requests additional window lengths; duplicates (and
    /// the trained length itself) collapse, and at most [`MAX_ARMS`]
    /// arms run.
    pub(crate) fn open(
        id: u64,
        shared: &SharedModel,
        policy: ReloadPolicy,
        extra_arms: &[usize],
        drift_cfg: DriftConfig,
        snapshot_cap: usize,
    ) -> Result<Self> {
        let generation = shared.generation();
        let model = shared.load();
        let mut lens = vec![model.window().len()];
        for &w in extra_arms {
            if w == 0 {
                return Err(SessionError::Config {
                    reason: "window arm lengths must be >= 1".into(),
                });
            }
            if !lens.contains(&w) && lens.len() < MAX_ARMS {
                lens.push(w);
            }
        }
        let mut arms = Vec::with_capacity(lens.len());
        for &w in &lens {
            arms.push(SessionCore::with_window_len(&model, w)?);
        }
        Ok(Self {
            id,
            model,
            generation,
            policy,
            arms,
            drift: DriftDetector::new(drift_cfg),
            snapshot: VecDeque::with_capacity(snapshot_cap.min(4096)),
            snapshot_cap,
            frames: 0,
            rejected_frames: 0,
            drift_triggers: 0,
        })
    }

    /// Session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The generation of the model this session is currently scoring
    /// against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The session's reload policy.
    pub fn policy(&self) -> ReloadPolicy {
        self.policy
    }

    /// Window lengths of the running arms, primary first.
    pub fn window_lens(&self) -> Vec<usize> {
        self.arms.iter().map(|a| a.window_len()).collect()
    }

    /// Frames accepted so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Drift triggers observed on this session.
    pub fn drift_triggers(&self) -> u64 {
        self.drift_triggers
    }

    /// If the shared model moved past this session's bound generation,
    /// apply the session's reload policy. Returns `true` when the
    /// session rebound to a newer model.
    pub(crate) fn observe_generation(&mut self, shared: &SharedModel) -> bool {
        let current = shared.generation();
        if current == self.generation {
            return false;
        }
        match self.policy {
            ReloadPolicy::FinishOld => false,
            ReloadPolicy::Rebind => {
                // The Arc snapshot swap is the whole rebind: arm
                // extractor state is model-independent, and memberships
                // are computed per window against whatever model the
                // next completion sees.
                self.model = shared.load();
                self.generation = current;
                true
            }
        }
    }

    /// Feeds a batch of frames through every arm. Malformed frames are
    /// reported and skipped — no arm buffers them, so the arms stay
    /// frame-synchronized and the session survives.
    pub(crate) fn push_frames(&mut self, frames: &[WireFrame]) -> PushOutput {
        let mut out = PushOutput {
            windows: Vec::new(),
            rejected: Vec::new(),
            drift_at: None,
        };
        for (index, frame) in frames.iter().enumerate() {
            // The primary arm validates arity and finiteness before
            // buffering; a rejected frame leaves every arm untouched
            // because validation is model-level, not arm-level.
            let primary = match self.arms[0].push_frame(
                &self.model,
                &frame.mocap,
                frame.pelvis,
                &frame.emg,
            ) {
                Ok(done) => done,
                Err(e) => {
                    self.rejected_frames += 1;
                    out.rejected.push(RejectedFrame {
                        index,
                        reason: e.to_string(),
                    });
                    continue;
                }
            };
            self.frames += 1;
            if let Some(outcome) = primary {
                let window = self.arms[0].windows_seen() - 1;
                out.windows.push(RollingWindow {
                    arm: self.arms[0].window_len(),
                    window,
                    cluster: outcome.assignment.cluster,
                    membership: outcome.assignment.membership,
                    margin: outcome.margin,
                });
                if self.drift.observe(outcome.margin) {
                    self.drift_triggers += 1;
                    // First trigger in a push wins; later ones re-arm
                    // after cooldown anyway.
                    if out.drift_at.is_none() {
                        out.drift_at = Some(window);
                    }
                }
            }
            for arm in self.arms.iter_mut().skip(1) {
                // Validation already passed on the primary arm; a
                // secondary arm can only agree. An error here would mean
                // the arms disagree on the model's limb, which open()
                // makes impossible — swallow into a skipped completion.
                if let Ok(Some(outcome)) =
                    arm.push_frame(&self.model, &frame.mocap, frame.pelvis, &frame.emg)
                {
                    out.windows.push(RollingWindow {
                        arm: arm.window_len(),
                        window: arm.windows_seen() - 1,
                        cluster: outcome.assignment.cluster,
                        membership: outcome.assignment.membership,
                        margin: outcome.margin,
                    });
                }
            }
            self.snapshot.push_back(frame.clone());
            while self.snapshot.len() > self.snapshot_cap {
                self.snapshot.pop_front();
            }
        }
        out
    }

    /// The rolling verdict across all arms: per-arm reports plus the
    /// mean-margin winner (ties to the earlier arm, so the primary wins
    /// a fresh session vacuously).
    pub(crate) fn verdict(&self, knn_k: usize) -> Result<SessionVerdict> {
        let mut arms = Vec::with_capacity(self.arms.len());
        for arm in &self.arms {
            let predicted = arm
                .classify(&self.model, knn_k)?
                .map(|(class, _neighbors)| class);
            arms.push(ArmReport {
                window_len: arm.window_len(),
                windows: arm.windows_seen(),
                mean_margin: arm.mean_margin(),
                predicted,
            });
        }
        let mut winner = 0;
        for (i, report) in arms.iter().enumerate().skip(1) {
            // total_cmp: NaN cannot occur (margins are differences of
            // finite memberships) but a total order keeps the pick
            // deterministic regardless.
            if report
                .mean_margin
                .total_cmp(&arms[winner].mean_margin)
                .is_gt()
            {
                winner = i;
            }
        }
        Ok(SessionVerdict {
            session: self.id,
            generation: self.generation,
            frames: self.frames,
            winner_window_len: arms[winner].window_len,
            predicted: arms[winner].predicted,
            arms,
        })
    }

    /// The primary arm's rolling classification (drift re-train label).
    pub(crate) fn primary_prediction(&self, knn_k: usize) -> Result<Option<MotionClass>> {
        Ok(self.arms[0].classify(&self.model, knn_k)?.map(|(c, _)| c))
    }

    /// Frames currently held in the snapshot ring.
    pub(crate) fn snapshot_len(&self) -> usize {
        self.snapshot.len()
    }

    /// Primary-arm window length (the re-train feasibility bound).
    pub(crate) fn primary_window_len(&self) -> usize {
        self.arms[0].window_len()
    }

    /// Materializes the snapshot ring as a training record labelled with
    /// `class`, for the drift-triggered re-train. Fails if the ring
    /// holds rows whose arity no longer matches (cannot happen — the
    /// ring only ever holds accepted frames).
    pub(crate) fn snapshot_record(&self, id: usize, class: MotionClass) -> Result<MotionRecord> {
        let mocap_rows: Vec<Vec<f64>> = self.snapshot.iter().map(|f| f.mocap.clone()).collect();
        let emg_rows: Vec<Vec<f64>> = self.snapshot.iter().map(|f| f.emg.clone()).collect();
        let pelvis: Vec<Vec3> = self
            .snapshot
            .iter()
            .map(|f| Vec3 {
                x: f.pelvis[0],
                y: f.pelvis[1],
                z: f.pelvis[2],
            })
            .collect();
        let mocap = Matrix::from_rows(&mocap_rows).map_err(kinemyo::KinemyoError::from)?;
        let emg = Matrix::from_rows(&emg_rows).map_err(kinemyo::KinemyoError::from)?;
        Ok(MotionRecord {
            id,
            class,
            participant: 0,
            trial: 0,
            mocap,
            emg,
            pelvis,
            heading_rad: 0.0,
        })
    }

    /// Final accounting for `session_close`.
    pub(crate) fn summary(&self, knn_k: usize) -> Result<SessionSummary> {
        Ok(SessionSummary {
            session: self.id,
            frames: self.frames,
            rejected_frames: self.rejected_frames,
            drift_triggers: self.drift_triggers,
            verdict: self.verdict(knn_k)?,
        })
    }
}
