//! The bounded session table: id allocation, capacity shedding, and
//! idle-timeout eviction.
//!
//! Locking discipline (checked by the workspace analyzer's lock-order
//! lint): the table mutex guards only the id → slot map and is never
//! held while a slot's session mutex is taken — callers clone the
//! `Arc<SessionSlot>` out, drop the table guard, then lock the session.
//! The idle sweep reads each slot's atomic touch-stamp instead of its
//! mutex, so a session busy in a long push cannot stall the sweep (and
//! cannot be evicted mid-push: its stamp is refreshed before the push).

use crate::session::WireSession;
use crate::{Result, SessionError};
use parking_lot::{Mutex, MutexGuard};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One table entry: the session behind its own mutex plus an atomic
/// last-touched stamp (milliseconds on the engine's monotonic epoch)
/// readable without that mutex.
#[derive(Debug)]
pub struct SessionSlot {
    id: u64,
    touched_ms: AtomicU64,
    inner: Mutex<WireSession>,
}

impl SessionSlot {
    /// The session id this slot serves.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Locks the session for exclusive use.
    pub fn lock(&self) -> MutexGuard<'_, WireSession> {
        self.inner.lock()
    }

    /// Refreshes the idle stamp.
    pub fn touch(&self, now_ms: u64) {
        self.touched_ms.store(now_ms, Ordering::Release);
    }

    /// Milliseconds since the last touch (saturating).
    pub fn idle_ms(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.touched_ms.load(Ordering::Acquire))
    }
}

/// Bounded map of live sessions.
#[derive(Debug)]
pub struct SessionTable {
    slots: Mutex<BTreeMap<u64, Arc<SessionSlot>>>,
    next_id: AtomicU64,
    capacity: usize,
}

impl SessionTable {
    /// An empty table shedding opens beyond `capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            capacity,
        }
    }

    /// Reserves the next session id. Ids are never reused, so a push to
    /// an evicted session is distinguishable from a protocol bug.
    pub fn reserve_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Inserts a freshly opened session, shedding at capacity.
    pub fn insert(&self, session: WireSession, now_ms: u64) -> Result<Arc<SessionSlot>> {
        let slot = Arc::new(SessionSlot {
            id: session.id(),
            touched_ms: AtomicU64::new(now_ms),
            inner: Mutex::new(session),
        });
        let mut slots = self.slots.lock();
        if slots.len() >= self.capacity {
            return Err(SessionError::Overloaded {
                capacity: self.capacity,
            });
        }
        slots.insert(slot.id, Arc::clone(&slot));
        Ok(slot)
    }

    /// Looks up a live session.
    pub fn get(&self, id: u64) -> Option<Arc<SessionSlot>> {
        self.slots.lock().get(&id).cloned()
    }

    /// Removes a session (close path); returns its slot for the final
    /// summary.
    pub fn remove(&self, id: u64) -> Option<Arc<SessionSlot>> {
        self.slots.lock().remove(&id)
    }

    /// Evicts every session idle for at least `timeout_ms`, returning
    /// the evicted ids. Runs entirely on the atomic stamps; no session
    /// mutex is taken under the table lock.
    pub fn sweep_idle(&self, now_ms: u64, timeout_ms: u64) -> Vec<u64> {
        let mut slots = self.slots.lock();
        let expired: Vec<u64> = slots
            .iter()
            .filter(|(_, slot)| slot.idle_ms(now_ms) >= timeout_ms)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            slots.remove(id);
        }
        expired
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shedding capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}
