//! Deterministic drift detection over per-window membership margins.
//!
//! The fuzzy memberships behind each window assignment are a natural
//! confidence signal: a stream whose motions look like the training
//! corpus wins its windows decisively, while sensor drift (electrode
//! migration, marker slip, a subject the corpus never saw) pushes
//! feature points between clusters and the winning margins collapse.
//! The detector is pure arithmetic over the observed margin sequence —
//! no clocks, no randomness — so the same frame stream always triggers
//! at the same window, which is what makes drift-triggered re-training
//! reproducible end to end.

use crate::config::DriftConfig;
use std::collections::VecDeque;

/// Streaming margin-collapse detector (see [`DriftConfig`] for the
/// trigger condition). One instance per session, fed by the primary arm.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftConfig,
    baseline_sum: f64,
    baseline_n: usize,
    recent: VecDeque<f64>,
    recent_sum: f64,
    windows: usize,
    cooldown_left: usize,
    triggers: usize,
}

impl DriftDetector {
    /// A fresh detector with nothing observed.
    pub fn new(cfg: DriftConfig) -> Self {
        Self {
            cfg,
            baseline_sum: 0.0,
            baseline_n: 0,
            recent: VecDeque::with_capacity(cfg.recent),
            recent_sum: 0.0,
            windows: 0,
            cooldown_left: 0,
            triggers: 0,
        }
    }

    /// Folds one completed window's membership margin; returns `true`
    /// when this window crosses the drift threshold. After a trigger the
    /// detector resets and sits out `cooldown` windows before the
    /// baseline re-accumulates (the model has just changed underneath
    /// the stream, so the old baseline is meaningless).
    pub fn observe(&mut self, margin: f64) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        self.windows += 1;
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return false;
        }
        if self.baseline_n < self.cfg.baseline {
            self.baseline_sum += margin;
            self.baseline_n += 1;
            return false;
        }
        self.recent.push_back(margin);
        self.recent_sum += margin;
        if self.recent.len() > self.cfg.recent {
            if let Some(old) = self.recent.pop_front() {
                self.recent_sum -= old;
            }
        }
        if self.windows < self.cfg.min_windows || self.recent.len() < self.cfg.recent {
            return false;
        }
        let baseline_mean = self.baseline_sum / self.baseline_n as f64;
        let recent_mean = self.recent_sum / self.recent.len() as f64;
        if recent_mean < self.cfg.ratio * baseline_mean {
            self.triggers += 1;
            self.reset_after_trigger();
            true
        } else {
            false
        }
    }

    /// Windows observed since the last trigger (or since creation).
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Total triggers over the detector's lifetime.
    pub fn triggers(&self) -> usize {
        self.triggers
    }

    fn reset_after_trigger(&mut self) {
        self.baseline_sum = 0.0;
        self.baseline_n = 0;
        self.recent.clear();
        self.recent_sum = 0.0;
        self.windows = 0;
        self.cooldown_left = self.cfg.cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftConfig {
        DriftConfig {
            enabled: true,
            baseline: 3,
            recent: 3,
            ratio: 0.5,
            min_windows: 6,
            cooldown: 4,
        }
    }

    #[test]
    fn triggers_on_margin_collapse() {
        let mut d = DriftDetector::new(cfg());
        for _ in 0..3 {
            assert!(!d.observe(0.8)); // baseline mean 0.8
        }
        // Recent mean must fall under 0.5 * 0.8 = 0.4 to fire.
        assert!(!d.observe(0.5));
        assert!(!d.observe(0.5));
        assert!(!d.observe(0.5)); // recent mean 0.5 — no trigger
        assert!(d.observe(0.1)); // recent [0.5, 0.5, 0.1] mean 0.3667 < 0.4
        assert_eq!(d.triggers(), 1);
    }

    #[test]
    fn deterministic_trigger_point() {
        let stream: Vec<f64> = (0..32).map(|i| if i < 10 { 0.9 } else { 0.05 }).collect();
        let run = |margins: &[f64]| -> Option<usize> {
            let mut d = DriftDetector::new(cfg());
            margins.iter().position(|&m| d.observe(m))
        };
        let a = run(&stream);
        let b = run(&stream);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn cooldown_suppresses_retrigger_storm() {
        let mut d = DriftDetector::new(cfg());
        let mut fired = 0;
        for i in 0..40 {
            let margin = if i < 3 { 0.9 } else { 0.01 };
            if d.observe(margin) {
                fired += 1;
            }
        }
        // After the first trigger the detector re-baselines on the *low*
        // margins, so the collapsed stream becomes the new normal: one
        // trigger, not a storm.
        assert_eq!(fired, 1);
    }

    #[test]
    fn disabled_detector_never_fires() {
        let mut c = cfg();
        c.enabled = false;
        let mut d = DriftDetector::new(c);
        for _ in 0..50 {
            assert!(!d.observe(0.0));
        }
        assert_eq!(d.triggers(), 0);
    }

    #[test]
    fn stable_margins_never_fire() {
        let mut d = DriftDetector::new(cfg());
        for _ in 0..200 {
            assert!(!d.observe(0.7));
        }
    }
}
