//! Session-engine configuration: table bounds, window arms, latency
//! budget, and drift-detector thresholds.

use crate::{Result, SessionError};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The most arms (concurrent window lengths) one session may run. The
/// arm study serves 2–3 lengths; anything beyond that multiplies
/// per-frame cost for no additional signal.
pub(crate) const MAX_ARMS: usize = 3;

/// Drift-detector thresholds. The detector watches the primary arm's
/// per-window membership margins: a `baseline` prefix establishes what
/// "confident" looks like for this stream, and when the mean margin over
/// the most recent `recent` windows falls below `ratio` times the
/// baseline mean, drift is declared.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Master switch; a disabled detector never triggers.
    pub enabled: bool,
    /// Windows folded into the baseline mean before arming.
    pub baseline: usize,
    /// Width of the trailing window over which the recent mean is taken.
    pub recent: usize,
    /// Trigger when `recent_mean < ratio * baseline_mean`; in `(0, 1]`.
    pub ratio: f64,
    /// Minimum windows observed (since the last trigger) before the
    /// detector may fire; at least `baseline + recent`.
    pub min_windows: usize,
    /// Windows ignored after a trigger before the baseline starts
    /// re-accumulating, so one bad stretch yields one re-train, not a
    /// storm.
    pub cooldown: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            baseline: 4,
            recent: 4,
            ratio: 0.5,
            min_windows: 8,
            cooldown: 8,
        }
    }
}

impl DriftConfig {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.baseline == 0 || self.recent == 0 {
            return Err(SessionError::Config {
                reason: "drift baseline and recent window counts must be >= 1".into(),
            });
        }
        if self.ratio.is_nan() || self.ratio <= 0.0 || self.ratio > 1.0 {
            return Err(SessionError::Config {
                reason: format!("drift ratio must be in (0, 1], got {}", self.ratio),
            });
        }
        if self.min_windows < self.baseline + self.recent {
            return Err(SessionError::Config {
                reason: format!(
                    "drift min_windows ({}) must cover baseline + recent ({})",
                    self.min_windows,
                    self.baseline + self.recent
                ),
            });
        }
        Ok(())
    }
}

/// Engine-wide session settings.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Bounded capacity of the session table; opens beyond it are shed
    /// with a typed `session_overloaded`.
    pub max_sessions: usize,
    /// A session untouched for this long is evicted by the sweep.
    pub idle_timeout: Duration,
    /// Extra window lengths run alongside the model's trained length
    /// (the multi-window arm study). Deduplicated; at most two extras.
    pub extra_arms: Vec<usize>,
    /// Neighbors consulted for rolling classifications.
    pub knn_k: usize,
    /// Frames of raw stream retained per session for the drift-triggered
    /// re-train snapshot.
    pub snapshot_frames: usize,
    /// Per-window latency budget in microseconds; advertised at open and
    /// gated by the streaming bench.
    pub window_budget_us: u64,
    /// Drift-detector thresholds.
    pub drift: DriftConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            idle_timeout: Duration::from_secs(30),
            extra_arms: Vec::new(),
            knn_k: 5,
            snapshot_frames: 512,
            window_budget_us: 50_000,
            drift: DriftConfig::default(),
        }
    }
}

impl SessionConfig {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.max_sessions == 0 {
            return Err(SessionError::Config {
                reason: "max_sessions must be >= 1".into(),
            });
        }
        if self.idle_timeout.is_zero() {
            return Err(SessionError::Config {
                reason: "idle_timeout must be positive".into(),
            });
        }
        if self.knn_k == 0 {
            return Err(SessionError::Config {
                reason: "knn_k must be >= 1".into(),
            });
        }
        if self.snapshot_frames == 0 {
            return Err(SessionError::Config {
                reason: "snapshot_frames must be >= 1".into(),
            });
        }
        if self.window_budget_us == 0 {
            return Err(SessionError::Config {
                reason: "window_budget_us must be positive".into(),
            });
        }
        if self.extra_arms.len() > MAX_ARMS - 1 {
            return Err(SessionError::Config {
                reason: format!(
                    "at most {} extra window arms are supported, got {}",
                    MAX_ARMS - 1,
                    self.extra_arms.len()
                ),
            });
        }
        if self.extra_arms.contains(&0) {
            return Err(SessionError::Config {
                reason: "window arm lengths must be >= 1".into(),
            });
        }
        self.drift.validate()
    }

    /// Builder: table capacity.
    pub fn with_max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    /// Builder: idle-eviction timeout.
    pub fn with_idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Builder: extra window-length arms.
    pub fn with_extra_arms(mut self, arms: Vec<usize>) -> Self {
        self.extra_arms = arms;
        self
    }

    /// Builder: rolling-classification neighbor count.
    pub fn with_knn_k(mut self, k: usize) -> Self {
        self.knn_k = k;
        self
    }

    /// Builder: snapshot ring depth.
    pub fn with_snapshot_frames(mut self, n: usize) -> Self {
        self.snapshot_frames = n;
        self
    }

    /// Builder: per-window latency budget (µs).
    pub fn with_window_budget_us(mut self, us: u64) -> Self {
        self.window_budget_us = us;
        self
    }

    /// Builder: drift thresholds.
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        self.drift = drift;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SessionConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_fields() {
        assert!(SessionConfig::default()
            .with_max_sessions(0)
            .validate()
            .is_err());
        assert!(SessionConfig::default().with_knn_k(0).validate().is_err());
        assert!(SessionConfig::default()
            .with_extra_arms(vec![30, 40, 50])
            .validate()
            .is_err());
        assert!(SessionConfig::default()
            .with_extra_arms(vec![0])
            .validate()
            .is_err());
        let drift = DriftConfig {
            ratio: f64::NAN,
            ..DriftConfig::default()
        };
        assert!(SessionConfig::default()
            .with_drift(drift)
            .validate()
            .is_err());
        let drift = DriftConfig {
            ratio: 0.5,
            min_windows: 2,
            ..DriftConfig::default()
        };
        assert!(SessionConfig::default()
            .with_drift(drift)
            .validate()
            .is_err());
    }
}
