//! Hybrid index: a VP-tree over the stable prefix of an append-only
//! database plus a linear scan over the tail appended since the tree was
//! built.
//!
//! A live-ingesting daemon appends motions continuously, and rebuilding a
//! metric index on every insert would make writes O(n log n). The hybrid
//! splits the database at the build point: the immutable prefix is served
//! by the exact [`VpTree`], the (short) tail by the same linear scan
//! [`knn`](crate::knn::knn) uses, and the two candidate lists are merged.
//! Because the database is append-only, the prefix never changes under the
//! tree and results stay exact. Callers rebuild when
//! [`stale_appends`](HybridIndex::stale_appends) crosses their threshold.

use crate::error::{DbError, Result};
use crate::knn::{scan_entries, Neighbor};
use crate::store::FeatureDb;
use crate::vptree::VpTree;

/// An exact kNN index over an append-only [`FeatureDb`]: VP-tree over the
/// first [`covered`](Self::covered) entries, linear scan over the rest.
#[derive(Debug, Clone)]
pub struct HybridIndex<M> {
    tree: VpTree<M>,
    covered: usize,
}

impl<M: Clone> HybridIndex<M> {
    /// Builds the index over the current contents of `db`; entries
    /// appended afterwards are handled by the tail scan.
    pub fn build(db: &FeatureDb<M>) -> Self {
        Self {
            tree: VpTree::build(db),
            covered: db.len(),
        }
    }

    /// Number of database entries covered by the tree (the prefix length
    /// at build time).
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// How many entries have been appended to `db` since this index was
    /// built — the tail the query path scans linearly.
    pub fn stale_appends<N>(&self, db: &FeatureDb<N>) -> usize {
        db.len().saturating_sub(self.covered)
    }

    /// Exact k-nearest-neighbour query over prefix + tail.
    ///
    /// `db` must be the same append-only database the index was built
    /// from: if it has fewer entries than the tree covers, the prefix
    /// assumption is broken and the query is rejected.
    pub fn knn(&self, db: &FeatureDb<M>, query: &[f64], k: usize) -> Result<Vec<Neighbor<M>>> {
        if k == 0 {
            return Err(DbError::InvalidArgument {
                reason: "k must be >= 1".into(),
            });
        }
        db.check_query(query)?;
        if db.len() < self.covered {
            return Err(DbError::InvalidArgument {
                reason: format!(
                    "database has {} entries but the index covers {}; hybrid queries \
                     require the append-only database the index was built from",
                    db.len(),
                    self.covered
                ),
            });
        }
        let from_tree = if self.covered > 0 {
            self.tree.knn(query, k)?
        } else {
            Vec::new()
        };
        let tail = db.entries().get(self.covered..).unwrap_or(&[]);
        let from_tail = scan_entries(tail, query, k);

        // Merge the two sorted candidate lists; on exact distance ties the
        // prefix (earlier database position) wins, matching the linear
        // scan's preference for earlier entries at the cut boundary.
        let mut merged = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while merged.len() < k && (i < from_tree.len() || j < from_tail.len()) {
            let take_tree = match (from_tree.get(i), from_tail.get(j)) {
                (Some(a), Some(b)) => a.distance.total_cmp(&b.distance).is_le(),
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_tree {
                merged.push(from_tree[i].clone());
                i += 1;
            } else {
                merged.push(from_tail[j].clone());
                j += 1;
            }
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_db(n: usize, dim: usize, seed: u64) -> FeatureDb<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut db = FeatureDb::new(dim);
        for i in 0..n {
            let v: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0).collect();
            db.insert(i, i % 7, v).unwrap();
        }
        db
    }

    fn append_tail(db: &mut FeatureDb<usize>, n: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dim = db.dim();
        let start = db.max_id().map_or(0, |m| m + 1);
        for i in 0..n {
            let v: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0).collect();
            db.insert(start + i, (start + i) % 7, v).unwrap();
        }
    }

    #[test]
    fn agrees_with_linear_scan_at_any_tail_length() {
        for tail in [0usize, 1, 7, 50] {
            let mut db = random_db(120, 5, 3);
            let index = HybridIndex::build(&db);
            append_tail(&mut db, tail, 77);
            assert_eq!(index.stale_appends(&db), tail);
            let mut rng = ChaCha8Rng::seed_from_u64(500);
            for _ in 0..15 {
                let q: Vec<f64> = (0..5).map(|_| rng.random::<f64>() * 10.0).collect();
                let exact = knn(&db, &q, 5).unwrap();
                let hybrid = index.knn(&db, &q, 5).unwrap();
                assert_eq!(exact.len(), hybrid.len());
                for (a, b) in exact.iter().zip(&hybrid) {
                    assert!(
                        (a.distance - b.distance).abs() < 1e-12,
                        "distances differ with tail {tail}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_prefix_is_pure_linear() {
        let mut db: FeatureDb<usize> = FeatureDb::new(2);
        let index = HybridIndex::build(&db);
        assert_eq!(index.covered(), 0);
        db.insert(0, 0, vec![0.0, 0.0]).unwrap();
        db.insert(1, 1, vec![3.0, 4.0]).unwrap();
        let r = index.knn(&db, &[0.0, 0.0], 2).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, 0);
        assert!((r[1].distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn results_sorted_and_bounded() {
        let mut db = random_db(60, 3, 11);
        let index = HybridIndex::build(&db);
        append_tail(&mut db, 30, 12);
        let r = index.knn(&db, &[5.0, 5.0, 5.0], 10).unwrap();
        assert_eq!(r.len(), 10);
        for w in r.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn shrunk_db_rejected() {
        let db = random_db(10, 2, 1);
        let index = HybridIndex::build(&db);
        let smaller = random_db(5, 2, 1);
        assert!(matches!(
            index.knn(&smaller, &[0.0, 0.0], 1),
            Err(DbError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn validation_errors() {
        let db = random_db(10, 2, 4);
        let index = HybridIndex::build(&db);
        assert!(index.knn(&db, &[0.0], 1).is_err());
        assert!(index.knn(&db, &[0.0, 0.0], 0).is_err());
        let empty: FeatureDb<usize> = FeatureDb::new(2);
        let eindex = HybridIndex::build(&empty);
        assert!(eindex.knn(&empty, &[0.0, 0.0], 1).is_err());
    }
}
