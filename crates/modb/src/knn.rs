//! Exact k-nearest-neighbour search by linear scan — the paper's stated
//! baseline ("we can use any searching technique like linear search to get
//! the nearest neighbors and to classify the query motion", Sec. 4).

use crate::error::{DbError, Result};
use crate::store::{Entry, FeatureDb};
use kinemyo_linalg::vector::euclidean;
use serde::{Deserialize, Serialize};

/// One retrieved neighbour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Neighbor<M> {
    /// Stored entry id.
    pub id: usize,
    /// Metadata of the stored entry.
    pub meta: M,
    /// Euclidean distance to the query.
    pub distance: f64,
}

/// Returns the `k` nearest stored motions to `query`, closest first.
///
/// ```
/// use kinemyo_modb::{knn, FeatureDb};
///
/// let mut db = FeatureDb::new(2);
/// db.insert(0, "walk", vec![0.0, 0.0]).unwrap();
/// db.insert(1, "kick", vec![1.0, 1.0]).unwrap();
/// let nearest = knn(&db, &[0.1, 0.0], 1).unwrap();
/// assert_eq!(nearest[0].meta, "walk");
/// ```
pub fn knn<M: Clone>(db: &FeatureDb<M>, query: &[f64], k: usize) -> Result<Vec<Neighbor<M>>> {
    if k == 0 {
        return Err(DbError::InvalidArgument {
            reason: "k must be >= 1".into(),
        });
    }
    db.check_query(query)?;
    Ok(scan_entries(db.entries(), query, k))
}

/// Linear top-`k` scan over a slice of entries, closest first. The shared
/// core of [`knn`], the tail scan of
/// [`HybridIndex`](crate::hybrid::HybridIndex), and the tail scan of the
/// approximate index in `kinemyo-ann`; callers validate the query.
pub fn scan_entries<M: Clone>(entries: &[Entry<M>], query: &[f64], k: usize) -> Vec<Neighbor<M>> {
    // Max-heap of the current best k by distance, implemented with a
    // simple sorted insert (k is small — the paper uses k = 5).
    let mut best: Vec<Neighbor<M>> = Vec::with_capacity(k + 1);
    for e in entries {
        let d = euclidean(&e.vector, query);
        if best.len() < k || d < best[best.len() - 1].distance {
            let pos = best
                .binary_search_by(|n| n.distance.total_cmp(&d))
                .unwrap_or_else(|p| p);
            best.insert(
                pos,
                Neighbor {
                    id: e.id,
                    meta: e.meta.clone(),
                    distance: d,
                },
            );
            if best.len() > k {
                best.pop();
            }
        }
    }
    best
}

/// Majority-vote classification over the `k` nearest neighbours; ties are
/// broken by the closer neighbour set (summed inverse rank).
///
/// Scores accumulate in a `BTreeMap` keyed by label (hence the `Ord`
/// bound): the vote tally is iterated in label order, so the winner is
/// deterministic even when counts and rank scores tie exactly.
pub fn classify<M, L>(neighbors: &[Neighbor<M>], label_of: impl Fn(&M) -> L) -> Option<L>
where
    L: Clone + Ord,
{
    use std::collections::BTreeMap;
    if neighbors.is_empty() {
        return None;
    }
    let mut scores: BTreeMap<L, (usize, f64)> = BTreeMap::new();
    for (rank, n) in neighbors.iter().enumerate() {
        let entry = scores.entry(label_of(&n.meta)).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += 1.0 / (rank + 1) as f64;
    }
    scores
        .into_iter()
        .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(a.1 .1.total_cmp(&b.1 .1)))
        .map(|(label, _)| label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> FeatureDb<&'static str> {
        let mut db = FeatureDb::new(2);
        db.insert(0, "a", vec![0.0, 0.0]).unwrap();
        db.insert(1, "a", vec![0.1, 0.0]).unwrap();
        db.insert(2, "b", vec![5.0, 5.0]).unwrap();
        db.insert(3, "b", vec![5.1, 5.0]).unwrap();
        db.insert(4, "c", vec![-3.0, 4.0]).unwrap();
        db
    }

    #[test]
    fn nearest_is_exact() {
        let db = db();
        let r = knn(&db, &[0.04, 0.0], 2).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, 0);
        assert_eq!(r[1].id, 1);
        assert!(r[0].distance <= r[1].distance);
    }

    #[test]
    fn k_larger_than_db_returns_all_sorted() {
        let db = db();
        let r = knn(&db, &[0.0, 0.0], 100).unwrap();
        assert_eq!(r.len(), 5);
        for w in r.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn distances_are_euclidean() {
        let db = db();
        let r = knn(&db, &[0.0, 0.0], 5).unwrap();
        let c = r.iter().find(|n| n.id == 4).unwrap();
        assert!((c.distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_queries_rejected() {
        let db = db();
        assert!(knn(&db, &[0.0], 1).is_err());
        assert!(knn(&db, &[0.0, 0.0], 0).is_err());
        let empty: FeatureDb<()> = FeatureDb::new(2);
        assert!(knn(&empty, &[0.0, 0.0], 1).is_err());
    }

    #[test]
    fn classify_majority() {
        let db = db();
        let r = knn(&db, &[0.0, 0.1], 3).unwrap();
        // Neighbours: two "a" and one other → "a".
        assert_eq!(classify(&r, |m| *m), Some("a"));
    }

    #[test]
    fn classify_tie_prefers_closer() {
        let neighbors = vec![
            Neighbor {
                id: 0,
                meta: "x",
                distance: 0.1,
            },
            Neighbor {
                id: 1,
                meta: "y",
                distance: 0.2,
            },
            Neighbor {
                id: 2,
                meta: "y",
                distance: 0.3,
            },
            Neighbor {
                id: 3,
                meta: "x",
                distance: 0.4,
            },
        ];
        // 2 vs 2; x has ranks 1 and 4 (1.25), y has 2 and 3 (0.833) → x.
        assert_eq!(classify(&neighbors, |m| *m), Some("x"));
    }

    #[test]
    fn classify_empty_is_none() {
        let empty: Vec<Neighbor<&str>> = vec![];
        assert_eq!(classify(&empty, |m| *m), None);
    }
}
