//! # kinemyo-modb
//!
//! The motion feature-vector database of the paper's Sec. 4: stores final
//! `2c`-length motion feature vectors and answers content-based retrieval
//! queries.
//!
//! * [`store`] — the append-only [`store::FeatureDb`] plus a thread-safe
//!   [`store::SharedDb`] wrapper;
//! * [`knn`](mod@knn) — exact linear-scan kNN (the paper's stated search) and
//!   majority-vote classification;
//! * [`vptree`] — an exact metric-tree index;
//! * [`hybrid`] — [`hybrid::HybridIndex`]: VP-tree over the stable prefix
//!   of an append-only database plus a linear tail scan, for live
//!   ingestion without per-insert rebuilds;
//! * [`idistance`] — the iDistance index the paper cites (\[14\], Yu et
//!   al., VLDB '01), exact via radius expansion;
//! * [`metrics`] — misclassification rate, kNN correct-%, confusion
//!   matrices (the Sec. 6 quantities);
//! * [`dtw`] — a dynamic-time-warping raw-signal baseline (the related
//!   work's alternative to feature extraction, refs \[8\]/\[13\]).
//!
//! All three search paths return identical neighbour sets (tested).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dtw;
pub mod error;
pub mod hybrid;
pub mod idistance;
pub mod knn;
pub mod metrics;
pub mod store;
pub mod vptree;

pub use dtw::{dtw_distance, DtwClassifier};
pub use error::{DbError, Result};
pub use hybrid::HybridIndex;
pub use idistance::IDistance;
pub use knn::{classify, knn, scan_entries, Neighbor};
pub use metrics::{knn_correct_pct, mean_pct, ConfusionMatrix};
pub use store::{DbReadGuard, Entry, FeatureDb, SharedDb};
pub use vptree::VpTree;

#[cfg(test)]
mod proptests {
    use crate::idistance::IDistance;
    use crate::knn::knn;
    use crate::store::FeatureDb;
    use crate::vptree::VpTree;
    use proptest::prelude::*;

    fn db_and_query() -> impl Strategy<Value = (FeatureDb<usize>, Vec<f64>, usize)> {
        (2usize..60, 1usize..6).prop_flat_map(|(n, dim)| {
            (
                proptest::collection::vec(0.0..1.0f64, n * dim),
                proptest::collection::vec(0.0..1.0f64, dim),
                1usize..8,
            )
                .prop_map(move |(data, query, k)| {
                    let mut db = FeatureDb::new(dim);
                    for (i, chunk) in data.chunks(dim).enumerate() {
                        db.insert(i, i % 3, chunk.to_vec()).unwrap();
                    }
                    (db, query, k)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn all_indexes_agree((db, query, k) in db_and_query()) {
            let exact = knn(&db, &query, k).unwrap();
            let vp = VpTree::build(&db).knn(&query, k).unwrap();
            let idist = IDistance::build(&db, 4).unwrap().knn(&query, k).unwrap();
            prop_assert_eq!(exact.len(), vp.len());
            prop_assert_eq!(exact.len(), idist.len());
            for i in 0..exact.len() {
                prop_assert!((exact[i].distance - vp[i].distance).abs() < 1e-12);
                prop_assert!((exact[i].distance - idist[i].distance).abs() < 1e-12);
            }
        }

        #[test]
        fn hybrid_agrees_at_any_split((db, query, k) in db_and_query(), split_pct in 0usize..=100) {
            use crate::hybrid::HybridIndex;
            // Rebuild a prefix database, index it, then append the tail —
            // the hybrid must stay exact regardless of where the split
            // falls.
            let split = db.len() * split_pct / 100;
            let mut grown = FeatureDb::new(db.dim());
            for e in db.entries().iter().take(split) {
                grown.insert(e.id, e.meta, e.vector.clone()).unwrap();
            }
            let index = HybridIndex::build(&grown);
            for e in db.entries().iter().skip(split) {
                grown.insert(e.id, e.meta, e.vector.clone()).unwrap();
            }
            prop_assert_eq!(index.stale_appends(&grown), db.len() - split);
            let exact = knn(&db, &query, k).unwrap();
            let hybrid = index.knn(&grown, &query, k).unwrap();
            prop_assert_eq!(exact.len(), hybrid.len());
            for i in 0..exact.len() {
                prop_assert!((exact[i].distance - hybrid[i].distance).abs() < 1e-12);
            }
        }

        #[test]
        fn dtw_basic_metric_properties(
            a in proptest::collection::vec(-10.0..10.0f64, 2..40),
            b in proptest::collection::vec(-10.0..10.0f64, 2..40),
        ) {
            use crate::dtw::dtw_distance;
            use kinemyo_linalg::Matrix;
            let ma = Matrix::from_fn(a.len(), 1, |r, _| a[r]);
            let mb = Matrix::from_fn(b.len(), 1, |r, _| b[r]);
            let dab = dtw_distance(&ma, &mb, None).unwrap();
            let dba = dtw_distance(&mb, &ma, None).unwrap();
            prop_assert!(dab >= 0.0);
            prop_assert!((dab - dba).abs() < 1e-9, "symmetry: {} vs {}", dab, dba);
            prop_assert!(dtw_distance(&ma, &ma, None).unwrap() < 1e-12);
            // Banding can only increase the optimal cost.
            let banded = dtw_distance(&ma, &mb, Some(2)).unwrap();
            prop_assert!(banded + 1e-9 >= dab);
        }

        #[test]
        fn knn_results_sorted_and_bounded((db, query, k) in db_and_query()) {
            let r = knn(&db, &query, k).unwrap();
            prop_assert!(r.len() <= k);
            prop_assert!(r.len() == k.min(db.len()));
            for w in r.windows(2) {
                prop_assert!(w[0].distance <= w[1].distance);
            }
        }
    }
}
