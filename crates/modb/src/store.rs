//! The feature-vector store: motions as low-dimensional points with
//! attached metadata.
//!
//! The paper performs "content-based retrieval for the given query
//! matrices from our database … by just comparing with low-dimensional
//! feature vectors of motions in database" (Sec. 4). This store holds
//! those final `2c`-length vectors plus whatever metadata the caller
//! attaches (class label, participant, trial).

use crate::error::{DbError, Result};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Read guard over a [`SharedDb`]'s underlying [`FeatureDb`]. Derefs to
/// [`FeatureDb`], so `&guard` coerces to `&FeatureDb<M>` at call sites.
pub type DbReadGuard<'a, M> = parking_lot::RwLockReadGuard<'a, FeatureDb<M>>;

/// One stored motion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry<M> {
    /// Caller-assigned identifier.
    pub id: usize,
    /// Attached metadata (class label, participant, ...).
    pub meta: M,
    /// The motion's final feature vector.
    pub vector: Vec<f64>,
}

/// An append-only store of motion feature vectors with fixed
/// dimensionality.
///
/// Ids are unique: a second insert with an id already present is rejected
/// with [`DbError::DuplicateId`] instead of silently shadowing the first
/// entry. Lookups by id go through a sorted index and cost O(log n).
#[derive(Debug, Clone, Serialize)]
pub struct FeatureDb<M> {
    dim: usize,
    entries: Vec<Entry<M>>,
    /// id → position in `entries`. Rebuilt on deserialization; never
    /// part of the wire format.
    #[serde(skip)]
    by_id: BTreeMap<usize, usize>,
}

// Manual impl: the derived one would leave `by_id` empty (it is skipped on
// the wire), so every entry is re-inserted through `insert`, which also
// re-validates dimensions/finiteness and rejects duplicate ids coming from
// a hand-edited or corrupted file. The serialized shape stays `{dim,
// entries}`, identical to the previous derive.
impl<'de, M: Deserialize<'de>> Deserialize<'de> for FeatureDb<M> {
    fn deserialize<D>(deserializer: D) -> std::result::Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw<M> {
            dim: usize,
            entries: Vec<Entry<M>>,
        }
        let raw = Raw::<M>::deserialize(deserializer)?;
        let mut db = FeatureDb::new(raw.dim);
        for e in raw.entries {
            db.insert(e.id, e.meta, e.vector)
                .map_err(serde::de::Error::custom)?;
        }
        Ok(db)
    }
}

impl<M> FeatureDb<M> {
    /// Creates an empty database for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            entries: Vec::new(),
            by_id: BTreeMap::new(),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored motions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no motions are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a motion; rejects vectors of the wrong dimension, vectors
    /// with non-finite components, and ids that are already present.
    pub fn insert(&mut self, id: usize, meta: M, vector: Vec<f64>) -> Result<()> {
        if vector.len() != self.dim {
            return Err(DbError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(DbError::InvalidArgument {
                reason: format!("vector for id {id} contains non-finite values"),
            });
        }
        if self.by_id.contains_key(&id) {
            return Err(DbError::DuplicateId { id });
        }
        self.by_id.insert(id, self.entries.len());
        self.entries.push(Entry { id, meta, vector });
        Ok(())
    }

    /// Borrow all entries.
    pub fn entries(&self) -> &[Entry<M>] {
        &self.entries
    }

    /// Looks up an entry by id through the sorted index: O(log n); ids
    /// need not be dense.
    pub fn get(&self, id: usize) -> Option<&Entry<M>> {
        self.by_id.get(&id).and_then(|&i| self.entries.get(i))
    }

    /// True when an entry with this id exists.
    pub fn contains_id(&self, id: usize) -> bool {
        self.by_id.contains_key(&id)
    }

    /// The largest id currently stored, if any.
    pub fn max_id(&self) -> Option<usize> {
        self.by_id.keys().next_back().copied()
    }

    /// Keeps only the entries whose `(id, meta)` satisfy `keep`,
    /// preserving insertion order, and rebuilds the id index. Returns
    /// how many entries were removed. This is how a cluster shard
    /// restricts a full database to its partition (`id % shards ==
    /// shard`) without re-running the feature pipeline.
    pub fn retain(&mut self, mut keep: impl FnMut(usize, &M) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| keep(e.id, &e.meta));
        self.by_id = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.id, i))
            .collect();
        before - self.entries.len()
    }

    /// Validates a query vector's dimensionality.
    pub fn check_query(&self, query: &[f64]) -> Result<()> {
        if query.len() != self.dim {
            return Err(DbError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if self.entries.is_empty() {
            return Err(DbError::Empty);
        }
        Ok(())
    }
}

/// A thread-safe handle over a [`FeatureDb`]: readers (query sweeps running
/// on a crossbeam scope) proceed in parallel while a writer (the streaming
/// ingestion path) appends new motions.
#[derive(Debug, Clone)]
pub struct SharedDb<M> {
    inner: Arc<RwLock<FeatureDb<M>>>,
}

impl<M: Clone> SharedDb<M> {
    /// Wraps a database for shared access.
    pub fn new(db: FeatureDb<M>) -> Self {
        Self {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Inserts under the write lock.
    pub fn insert(&self, id: usize, meta: M, vector: Vec<f64>) -> Result<()> {
        self.inner.write().insert(id, meta, vector)
    }

    /// Number of stored motions.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Runs `f` with read access to the underlying database.
    pub fn with_read<T>(&self, f: impl FnOnce(&FeatureDb<M>) -> T) -> T {
        f(&self.inner.read())
    }

    /// [`FeatureDb::retain`] under the write lock: readers see either
    /// the full database or the filtered one, never a partial filter.
    pub fn retain(&self, keep: impl FnMut(usize, &M) -> bool) -> usize {
        self.inner.write().retain(keep)
    }

    /// Acquires the read lock and returns the guard, which derefs to the
    /// underlying [`FeatureDb`]. Hold it briefly: a writer (streaming
    /// ingestion) blocks until every guard is dropped.
    pub fn read(&self) -> DbReadGuard<'_, M> {
        self.inner.read()
    }

    /// Clones the underlying database out of the handle (used by model
    /// persistence, which serializes a plain [`FeatureDb`]).
    pub fn snapshot(&self) -> FeatureDb<M> {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut db: FeatureDb<&'static str> = FeatureDb::new(2);
        db.insert(7, "walk", vec![1.0, 2.0]).unwrap();
        db.insert(9, "kick", vec![3.0, 4.0]).unwrap();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.get(9).unwrap().meta, "kick");
        assert!(db.get(1).is_none());
        assert_eq!(db.dim(), 2);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut db: FeatureDb<u8> = FeatureDb::new(1);
        db.insert(4, 1, vec![0.0]).unwrap();
        assert!(matches!(
            db.insert(4, 2, vec![1.0]),
            Err(DbError::DuplicateId { id: 4 })
        ));
        // The failed insert must not have shadowed or appended anything.
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(4).unwrap().meta, 1);
    }

    #[test]
    fn id_index_queries() {
        let mut db: FeatureDb<()> = FeatureDb::new(1);
        assert_eq!(db.max_id(), None);
        assert!(!db.contains_id(0));
        for id in [10, 3, 42] {
            db.insert(id, (), vec![0.5]).unwrap();
        }
        assert!(db.contains_id(3));
        assert!(!db.contains_id(4));
        assert_eq!(db.max_id(), Some(42));
        for id in [10, 3, 42] {
            assert_eq!(db.get(id).unwrap().id, id);
        }
    }

    #[test]
    fn dimension_enforced() {
        let mut db: FeatureDb<()> = FeatureDb::new(3);
        assert!(matches!(
            db.insert(0, (), vec![1.0]),
            Err(DbError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut db: FeatureDb<()> = FeatureDb::new(1);
        assert!(db.insert(0, (), vec![f64::NAN]).is_err());
        assert!(db.insert(0, (), vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn query_checks() {
        let mut db: FeatureDb<()> = FeatureDb::new(2);
        assert!(matches!(db.check_query(&[1.0, 2.0]), Err(DbError::Empty)));
        db.insert(0, (), vec![0.0, 0.0]).unwrap();
        assert!(db.check_query(&[1.0]).is_err());
        assert!(db.check_query(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn shared_db_concurrent_reads() {
        let db: FeatureDb<u32> = FeatureDb::new(1);
        let shared = SharedDb::new(db);
        shared.insert(0, 5, vec![1.0]).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = shared.clone();
                s.spawn(move || {
                    assert_eq!(h.len(), 1);
                    h.with_read(|db| assert_eq!(db.get(0).unwrap().meta, 5));
                });
            }
        });
        assert!(!shared.is_empty());
    }

    #[test]
    fn shared_db_read_guard_and_snapshot() {
        let mut db: FeatureDb<u32> = FeatureDb::new(2);
        db.insert(3, 9, vec![0.5, 0.5]).unwrap();
        let shared = SharedDb::new(db);
        {
            let guard = shared.read();
            assert_eq!(guard.len(), 1);
            assert_eq!(guard.get(3).unwrap().meta, 9);
        }
        let snap = shared.snapshot();
        shared.insert(4, 1, vec![0.0, 1.0]).unwrap();
        // The snapshot is detached from later writes.
        assert_eq!(snap.len(), 1);
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn retain_filters_and_rebuilds_the_index() {
        let mut db: FeatureDb<u32> = FeatureDb::new(1);
        for id in 0..10 {
            db.insert(id, id as u32, vec![id as f64]).unwrap();
        }
        // Shard 1 of 3 keeps ids 1, 4, 7.
        let removed = db.retain(|id, _| id % 3 == 1);
        assert_eq!(removed, 7);
        assert_eq!(db.len(), 3);
        let kept: Vec<usize> = db.entries().iter().map(|e| e.id).collect();
        assert_eq!(kept, vec![1, 4, 7], "insertion order must be preserved");
        // The id index must agree with the surviving entries.
        for id in [1, 4, 7] {
            assert_eq!(db.get(id).unwrap().id, id);
        }
        for id in [0, 2, 3, 5, 9] {
            assert!(!db.contains_id(id));
        }
        assert_eq!(db.max_id(), Some(7));
        // Freed ids are insertable again.
        db.insert(3, 3, vec![3.0]).unwrap();
        assert_eq!(db.get(3).unwrap().meta, 3);
    }

    #[test]
    fn shared_retain_is_atomic_for_readers() {
        let db: FeatureDb<u32> = FeatureDb::new(1);
        let shared = SharedDb::new(db);
        for id in 0..6 {
            shared.insert(id, id as u32, vec![0.0]).unwrap();
        }
        let removed = shared.retain(|id, _| id % 2 == 0);
        assert_eq!(removed, 3);
        shared.with_read(|db| {
            assert_eq!(db.len(), 3);
            assert!(db.contains_id(0) && db.contains_id(2) && db.contains_id(4));
        });
    }

    #[test]
    fn serde_roundtrip() {
        let mut db: FeatureDb<String> = FeatureDb::new(2);
        db.insert(1, "raise-arm".into(), vec![0.25, 0.75]).unwrap();
        let json = serde_json::to_string(&db).unwrap();
        let back: FeatureDb<String> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(1).unwrap().vector, vec![0.25, 0.75]);
    }

    #[test]
    fn deserialize_rejects_duplicate_ids() {
        if serde_json::to_string(&0u32).is_err() {
            return; // serde_json unavailable in this environment
        }
        let json = r#"{"dim":1,"entries":[
            {"id":1,"meta":"a","vector":[0.0]},
            {"id":1,"meta":"b","vector":[1.0]}]}"#;
        assert!(serde_json::from_str::<FeatureDb<String>>(json).is_err());
    }
}
