//! Retrieval/classification metrics — the quantities the paper's Sec. 6
//! reports: misclassification rate (Figs. 6–7) and the percentage of
//! correctly classified motions among the k retrieved (Figs. 8–9).

use crate::error::{DbError, Result};

/// A square confusion matrix over `n` classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `n` classes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Records a prediction.
    pub fn record(&mut self, truth: usize, predicted: usize) -> Result<()> {
        if truth >= self.n || predicted >= self.n {
            return Err(DbError::InvalidArgument {
                reason: format!(
                    "labels ({truth}, {predicted}) out of range for {} classes",
                    self.n
                ),
            });
        }
        self.counts[truth * self.n + predicted] += 1;
        Ok(())
    }

    /// Count at `(truth, predicted)`.
    pub fn get(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth * self.n + predicted]
    }

    /// Total recorded predictions.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.n
    }

    /// Overall accuracy (diagonal mass). NaN-free: 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n).map(|i| self.get(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Misclassification rate in percent — the paper's Figs. 6–7 metric.
    pub fn misclassification_pct(&self) -> f64 {
        (1.0 - self.accuracy()) * 100.0
    }

    /// Per-class recall (diagonal over row sum); `None` when a class has
    /// no recorded ground-truth examples.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: usize = (0..self.n).map(|p| self.get(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / row as f64)
        }
    }
}

/// Fraction (in percent) of retrieved neighbours whose label matches the
/// query label — the paper's "kNN classified percent" (Figs. 8–9):
/// "the percentage of returned motions in k which are actually present in
/// the same group of query motion. The other returned motions are false
/// alarms."
pub fn knn_correct_pct<L: PartialEq>(query_label: &L, retrieved_labels: &[L]) -> f64 {
    if retrieved_labels.is_empty() {
        return 0.0;
    }
    let hits = retrieved_labels
        .iter()
        .filter(|l| *l == query_label)
        .count();
    hits as f64 / retrieved_labels.len() as f64 * 100.0
}

/// Aggregates a set of per-query percentages into their mean.
pub fn mean_pct(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0).unwrap();
        cm.record(0, 1).unwrap();
        cm.record(1, 1).unwrap();
        cm.record(2, 2).unwrap();
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.classes(), 3);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.misclassification_pct() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn recall_per_class() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0).unwrap();
        cm.record(0, 0).unwrap();
        cm.record(0, 1).unwrap();
        assert!((cm.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(1), None);
    }

    #[test]
    fn out_of_range_labels_rejected() {
        let mut cm = ConfusionMatrix::new(2);
        assert!(cm.record(2, 0).is_err());
        assert!(cm.record(0, 5).is_err());
    }

    #[test]
    fn empty_matrix_metrics() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.misclassification_pct(), 100.0);
    }

    #[test]
    fn knn_percentage() {
        assert_eq!(knn_correct_pct(&"a", &["a", "a", "b", "a", "c"]), 60.0);
        assert_eq!(knn_correct_pct(&"a", &[]), 0.0);
        assert_eq!(knn_correct_pct(&1, &[1, 1, 1]), 100.0);
    }

    #[test]
    fn mean_percentage() {
        assert_eq!(mean_pct(&[50.0, 100.0]), 75.0);
        assert_eq!(mean_pct(&[]), 0.0);
    }
}
