//! Error types for the motion feature database.

use std::fmt;

/// Errors produced by `kinemyo-modb`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Query dimensionality does not match the stored vectors.
    DimensionMismatch {
        /// Dimension of the stored vectors.
        expected: usize,
        /// Dimension of the query.
        got: usize,
    },
    /// An insert reused an id already present in the database.
    DuplicateId {
        /// The id that was already taken.
        id: usize,
    },
    /// The database holds no entries.
    Empty,
    /// An argument was invalid (k = 0, bad reference count, ...).
    InvalidArgument {
        /// Explanation of what was wrong.
        reason: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DimensionMismatch { expected, got } => write!(
                f,
                "query dimension {got} does not match stored dimension {expected}"
            ),
            DbError::DuplicateId { id } => {
                write!(f, "an entry with id {id} already exists")
            }
            DbError::Empty => write!(f, "the database is empty"),
            DbError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DbError::DimensionMismatch {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("dimension 2"));
        assert!(DbError::Empty.to_string().contains("empty"));
        assert!(DbError::DuplicateId { id: 7 }.to_string().contains('7'));
        assert!(DbError::InvalidArgument {
            reason: "k=0".into()
        }
        .to_string()
        .contains("k=0"));
    }
}
