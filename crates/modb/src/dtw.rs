//! Dynamic time warping — the classic raw-signal similarity baseline.
//!
//! The paper's related work (Keogh et al., ref \[8\]) retrieves motions by
//! time-series similarity on the raw signals instead of extracting
//! low-dimensional feature vectors. This module implements multivariate
//! DTW with a Sakoe–Chiba band so the ablation benches can compare the
//! paper's pipeline against a direct raw-signal 1-NN classifier on both
//! accuracy and query cost.

use crate::error::{DbError, Result};
use kinemyo_linalg::vector::sq_euclidean;
use kinemyo_linalg::Matrix;

/// DTW distance between two multivariate series (`rows` = time,
/// `cols` = dimensions; both must share the dimension count).
///
/// ```
/// use kinemyo_linalg::Matrix;
/// use kinemyo_modb::dtw_distance;
///
/// let a = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![0.0]]).unwrap();
/// let shifted = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![1.0], vec![0.0]]).unwrap();
/// // Warping absorbs the shift entirely.
/// assert!(dtw_distance(&a, &shifted, None).unwrap() < 1e-12);
/// ```
///
/// `band` is the Sakoe–Chiba constraint half-width in frames (after
/// accounting for the length difference, which is always allowed);
/// `None` means unconstrained. The returned value is the square root of
/// the accumulated per-frame squared Euclidean costs.
pub fn dtw_distance(a: &Matrix, b: &Matrix, band: Option<usize>) -> Result<f64> {
    if a.cols() != b.cols() {
        return Err(DbError::DimensionMismatch {
            expected: a.cols(),
            got: b.cols(),
        });
    }
    let (n, m) = (a.rows(), b.rows());
    if n == 0 || m == 0 {
        return Err(DbError::InvalidArgument {
            reason: "DTW requires non-empty series".into(),
        });
    }
    // Effective band: at least the length difference, else no path exists.
    let diff = n.abs_diff(m);
    let w = band.map(|b| b.max(diff)).unwrap_or(usize::MAX);

    // Two-row DP over the cost matrix.
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = f64::INFINITY;
        let (j_lo, j_hi) = if w == usize::MAX {
            (1, m)
        } else {
            (i.saturating_sub(w).max(1), (i + w).min(m))
        };
        // Outside the band stays at infinity.
        for v in curr[1..j_lo].iter_mut() {
            *v = f64::INFINITY;
        }
        for v in curr[j_hi + 1..].iter_mut() {
            *v = f64::INFINITY;
        }
        for j in j_lo..=j_hi {
            let cost = sq_euclidean(a.row(i - 1), b.row(j - 1));
            let best_prev = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best_prev;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let total = prev[m];
    if !total.is_finite() {
        return Err(DbError::InvalidArgument {
            reason: format!("band {w} admits no warping path for lengths {n} and {m}"),
        });
    }
    Ok(total.sqrt())
}

/// A 1-NN raw-signal classifier by DTW distance — the baseline the
/// feature pipeline is compared against.
#[derive(Debug, Clone)]
pub struct DtwClassifier<M> {
    series: Vec<Matrix>,
    metas: Vec<M>,
    ids: Vec<usize>,
    band: Option<usize>,
    dim: usize,
}

impl<M: Clone> DtwClassifier<M> {
    /// Builds a classifier over reference series (all sharing `dim` cols).
    pub fn new(band: Option<usize>) -> Self {
        Self {
            series: Vec::new(),
            metas: Vec::new(),
            ids: Vec::new(),
            band,
            dim: 0,
        }
    }

    /// Adds a reference series.
    pub fn insert(&mut self, id: usize, meta: M, series: Matrix) -> Result<()> {
        if series.rows() == 0 {
            return Err(DbError::InvalidArgument {
                reason: format!("series {id} is empty"),
            });
        }
        if self.series.is_empty() {
            self.dim = series.cols();
        } else if series.cols() != self.dim {
            return Err(DbError::DimensionMismatch {
                expected: self.dim,
                got: series.cols(),
            });
        }
        self.series.push(series);
        self.metas.push(meta);
        self.ids.push(id);
        Ok(())
    }

    /// Number of reference series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no references are stored.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Returns `(id, meta, distance)` of the `k` nearest references.
    pub fn knn(&self, query: &Matrix, k: usize) -> Result<Vec<(usize, M, f64)>> {
        if k == 0 {
            return Err(DbError::InvalidArgument {
                reason: "k must be >= 1".into(),
            });
        }
        if self.is_empty() {
            return Err(DbError::Empty);
        }
        let mut scored: Vec<(f64, usize)> = Vec::with_capacity(self.series.len());
        for (i, s) in self.series.iter().enumerate() {
            scored.push((dtw_distance(query, s, self.band)?, i));
        }
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(scored
            .into_iter()
            .take(k)
            .map(|(d, i)| (self.ids[i], self.metas[i].clone(), d))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> Matrix {
        Matrix::from_fn(values.len(), 1, |r, _| values[r])
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let a = series(&[1.0, 2.0, 3.0, 2.0, 1.0]);
        assert_eq!(dtw_distance(&a, &a, None).unwrap(), 0.0);
        assert_eq!(dtw_distance(&a, &a, Some(1)).unwrap(), 0.0);
    }

    #[test]
    fn time_shift_is_mostly_absorbed() {
        // The same bump shifted by two frames: DTW warps it away almost
        // entirely, Euclidean alignment would not.
        let a = series(&[0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0]);
        let b = series(&[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let dtw = dtw_distance(&a, &b, None).unwrap();
        let lockstep: f64 = (0..8)
            .map(|i| (a[(i, 0)] - b[(i, 0)]).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dtw < lockstep / 2.0, "dtw {dtw} vs lockstep {lockstep}");
    }

    #[test]
    fn different_lengths_are_allowed() {
        let a = series(&[0.0, 1.0, 2.0, 1.0, 0.0]);
        let b = series(&[0.0, 1.0, 1.5, 2.0, 1.5, 1.0, 0.0]);
        let d = dtw_distance(&a, &b, None).unwrap();
        assert!(d.is_finite() && d > 0.0);
        // Band narrower than the length difference is widened, not fatal.
        let d2 = dtw_distance(&a, &b, Some(0)).unwrap();
        assert!(d2 >= d);
    }

    #[test]
    fn band_tightens_monotonically() {
        let a = Matrix::from_fn(30, 2, |r, c| ((r + c) as f64 * 0.4).sin());
        let b = Matrix::from_fn(30, 2, |r, c| ((r + c) as f64 * 0.4 + 0.8).sin());
        let unconstrained = dtw_distance(&a, &b, None).unwrap();
        let wide = dtw_distance(&a, &b, Some(10)).unwrap();
        let narrow = dtw_distance(&a, &b, Some(1)).unwrap();
        assert!(unconstrained <= wide + 1e-12);
        assert!(wide <= narrow + 1e-12);
    }

    #[test]
    fn validation_errors() {
        let a = series(&[1.0]);
        let b = Matrix::zeros(3, 2);
        assert!(dtw_distance(&a, &b, None).is_err()); // dim mismatch
        assert!(dtw_distance(&a, &Matrix::zeros(0, 1), None).is_err());
    }

    #[test]
    fn classifier_finds_matching_shape() {
        let mut clf: DtwClassifier<&'static str> = DtwClassifier::new(Some(5));
        // Two bump shapes and a ramp, as references.
        clf.insert(0, "bump", series(&[0.0, 1.0, 2.0, 1.0, 0.0, 0.0]))
            .unwrap();
        clf.insert(1, "bump", series(&[0.0, 0.0, 1.0, 2.0, 1.0, 0.0]))
            .unwrap();
        clf.insert(2, "ramp", series(&[0.0, 0.5, 1.0, 1.5, 2.0, 2.5]))
            .unwrap();
        assert_eq!(clf.len(), 3);
        // A shifted bump must match the bumps, not the ramp.
        let q = series(&[0.0, 0.0, 0.0, 1.0, 2.0, 1.0]);
        let r = clf.knn(&q, 2).unwrap();
        assert_eq!(r[0].1, "bump");
        assert_eq!(r[1].1, "bump");
        assert!(r[0].2 <= r[1].2);
    }

    #[test]
    fn classifier_validation() {
        let mut clf: DtwClassifier<()> = DtwClassifier::new(None);
        assert!(clf.is_empty());
        assert!(clf.knn(&series(&[1.0]), 1).is_err());
        clf.insert(0, (), series(&[1.0, 2.0])).unwrap();
        assert!(clf.insert(1, (), Matrix::zeros(2, 3)).is_err()); // dim
        assert!(clf.insert(1, (), Matrix::zeros(0, 1)).is_err()); // empty
        assert!(clf.knn(&series(&[1.0]), 0).is_err());
    }
}
