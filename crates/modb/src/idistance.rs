//! iDistance index (Yu, Ooi, Tan & Jagadish, VLDB '01 — the paper's
//! reference \[14\]).
//!
//! Points are partitioned around reference points; each point is mapped to
//! the one-dimensional key `i·C + d(p, refᵢ)` (its partition index times a
//! separation constant plus its distance to the partition's reference).
//! kNN proceeds by expanding a search radius `r`: for every partition
//! whose ball intersects the query sphere, the key range
//! `[i·C + max(0, d(q, refᵢ) − r), i·C + min(r_iᵐᵃˣ, d(q, refᵢ) + r)]` is
//! scanned. The search stops when the kth-best distance is ≤ r, which
//! guarantees exactness.

use crate::error::{DbError, Result};
use crate::knn::Neighbor;
use crate::store::FeatureDb;
use kinemyo_linalg::vector::euclidean;

/// An exact iDistance index over a snapshot of a [`FeatureDb`].
#[derive(Debug, Clone)]
pub struct IDistance<M> {
    /// Reference point per partition.
    refs: Vec<Vec<f64>>,
    /// Maximum distance of any member to its reference, per partition.
    max_radius: Vec<f64>,
    /// Separation constant (> any partition radius).
    c: f64,
    /// Sorted (key, point index) pairs — the 1-D B⁺-tree surrogate.
    keys: Vec<(f64, usize)>,
    points: Vec<Vec<f64>>,
    ids: Vec<usize>,
    metas: Vec<M>,
    dim: usize,
}

/// Deterministic farthest-point sampling for reference selection: spreads
/// the references across the data without an RNG.
fn select_references(points: &[Vec<f64>], count: usize) -> Vec<Vec<f64>> {
    let mut refs: Vec<Vec<f64>> = Vec::with_capacity(count);
    if points.is_empty() || count == 0 {
        return refs;
    }
    refs.push(points[0].clone());
    let mut min_d: Vec<f64> = points.iter().map(|p| euclidean(p, &refs[0])).collect();
    while refs.len() < count.min(points.len()) {
        let (far_idx, _) = min_d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            // analyze: allow(panic-free-libs) min_d mirrors `points`, checked non-empty above
            .expect("points non-empty");
        let new_ref = points[far_idx].clone();
        for (d, p) in min_d.iter_mut().zip(points) {
            let nd = euclidean(p, &new_ref);
            if nd < *d {
                *d = nd;
            }
        }
        refs.push(new_ref);
    }
    refs
}

impl<M: Clone> IDistance<M> {
    /// Builds the index with `partitions` reference points (clamped to the
    /// number of stored motions; at least 1).
    pub fn build(db: &FeatureDb<M>, partitions: usize) -> Result<Self> {
        if partitions == 0 {
            return Err(DbError::InvalidArgument {
                reason: "iDistance needs at least one partition".into(),
            });
        }
        let points: Vec<Vec<f64>> = db.entries().iter().map(|e| e.vector.clone()).collect();
        let ids: Vec<usize> = db.entries().iter().map(|e| e.id).collect();
        let metas: Vec<M> = db.entries().iter().map(|e| e.meta.clone()).collect();
        let refs = select_references(&points, partitions);
        let nparts = refs.len().max(1);

        // Assign each point to its nearest reference.
        let mut assignment = vec![0usize; points.len()];
        let mut max_radius = vec![0.0f64; nparts];
        let mut dists = vec![0.0f64; points.len()];
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (j, r) in refs.iter().enumerate() {
                let d = euclidean(p, r);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            assignment[i] = best;
            dists[i] = best_d;
            if best_d > max_radius[best] {
                max_radius[best] = best_d;
            }
        }
        let c = max_radius.iter().cloned().fold(0.0, f64::max) + 1.0;
        let mut keys: Vec<(f64, usize)> = (0..points.len())
            .map(|i| (assignment[i] as f64 * c + dists[i], i))
            .collect();
        keys.sort_by(|a, b| a.0.total_cmp(&b.0));

        Ok(Self {
            refs,
            max_radius,
            c,
            keys,
            points,
            ids,
            metas,
            dim: db.dim(),
        })
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of partitions actually in use.
    pub fn partitions(&self) -> usize {
        self.refs.len()
    }

    /// Exact kNN by iterative radius expansion.
    pub fn knn(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor<M>>> {
        if k == 0 {
            return Err(DbError::InvalidArgument {
                reason: "k must be >= 1".into(),
            });
        }
        if query.len() != self.dim {
            return Err(DbError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if self.is_empty() {
            return Err(DbError::Empty);
        }

        let q_ref_d: Vec<f64> = self.refs.iter().map(|r| euclidean(query, r)).collect();
        let mut visited = vec![false; self.points.len()];
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);

        let mut r = self.c / 16.0;
        loop {
            for (part, &qd) in q_ref_d.iter().enumerate() {
                // Query sphere does not intersect the partition ball.
                if qd - r > self.max_radius[part] {
                    continue;
                }
                let lo = part as f64 * self.c + (qd - r).max(0.0);
                let hi = part as f64 * self.c + (qd + r).min(self.max_radius[part]);
                let start = self.keys.partition_point(|&(key, _)| key < lo);
                for &(key, idx) in &self.keys[start..] {
                    if key > hi {
                        break;
                    }
                    if visited[idx] {
                        continue;
                    }
                    visited[idx] = true;
                    let d = euclidean(&self.points[idx], query);
                    if best.len() < k || d < best[best.len() - 1].0 {
                        let pos = best
                            .binary_search_by(|(bd, _)| bd.total_cmp(&d))
                            .unwrap_or_else(|p| p);
                        best.insert(pos, (d, idx));
                        if best.len() > k {
                            best.pop();
                        }
                    }
                }
            }
            let kth = if best.len() >= k.min(self.points.len()) {
                best.last().map(|&(d, _)| d).unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            };
            // Exactness: every unexplored point is farther than r from the
            // query, so once kth ≤ r no better point can exist.
            if kth <= r {
                break;
            }
            r *= 2.0;
            // Safety: once r covers every partition entirely, one more pass
            // visits everything.
            if r > 4.0 * self.c * (self.refs.len() as f64 + 1.0) {
                // Final exhaustive sweep (degenerate data scales).
                for (idx, seen) in visited.iter_mut().enumerate() {
                    if *seen {
                        continue;
                    }
                    *seen = true;
                    let d = euclidean(&self.points[idx], query);
                    if best.len() < k || d < best[best.len() - 1].0 {
                        let pos = best
                            .binary_search_by(|(bd, _)| bd.total_cmp(&d))
                            .unwrap_or_else(|p| p);
                        best.insert(pos, (d, idx));
                        if best.len() > k {
                            best.pop();
                        }
                    }
                }
                break;
            }
        }

        Ok(best
            .into_iter()
            .map(|(d, i)| Neighbor {
                id: self.ids[i],
                meta: self.metas[i].clone(),
                distance: d,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_db(n: usize, dim: usize, seed: u64) -> FeatureDb<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut db = FeatureDb::new(dim);
        for i in 0..n {
            let v: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0).collect();
            db.insert(i, i % 5, v).unwrap();
        }
        db
    }

    #[test]
    fn agrees_with_linear_scan() {
        for seed in 0..5u64 {
            let db = random_db(300, 8, seed);
            let index = IDistance::build(&db, 12).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 50);
            for _ in 0..20 {
                let q: Vec<f64> = (0..8).map(|_| rng.random::<f64>() * 10.0).collect();
                let exact = knn(&db, &q, 5).unwrap();
                let fast = index.knn(&q, 5).unwrap();
                assert_eq!(exact.len(), fast.len());
                for (a, b) in exact.iter().zip(&fast) {
                    assert!(
                        (a.distance - b.distance).abs() < 1e-12,
                        "exact {} vs idistance {}",
                        a.distance,
                        b.distance
                    );
                }
            }
        }
    }

    #[test]
    fn reference_selection_spreads() {
        let points: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![10.0, 10.0],
            vec![10.0, 9.9],
            vec![0.0, 10.0],
        ];
        let refs = select_references(&points, 3);
        assert_eq!(refs.len(), 3);
        // The three corners should be picked, not two neighbours.
        let d01 = euclidean(&refs[0], &refs[1]);
        let d02 = euclidean(&refs[0], &refs[2]);
        assert!(d01 > 5.0 && d02 > 5.0);
    }

    #[test]
    fn more_partitions_than_points_is_fine() {
        let db = random_db(3, 2, 1);
        let index = IDistance::build(&db, 50).unwrap();
        assert_eq!(index.partitions(), 3);
        let r = index.knn(&[1.0, 1.0], 2).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn duplicate_points_handled() {
        let mut db: FeatureDb<()> = FeatureDb::new(2);
        for i in 0..20 {
            db.insert(i, (), vec![3.0, 3.0]).unwrap();
        }
        let index = IDistance::build(&db, 4).unwrap();
        let r = index.knn(&[3.0, 3.0], 5).unwrap();
        assert_eq!(r.len(), 5);
        for n in r {
            assert_eq!(n.distance, 0.0);
        }
    }

    #[test]
    fn validation_errors() {
        let db = random_db(10, 3, 2);
        assert!(IDistance::build(&db, 0).is_err());
        let index = IDistance::build(&db, 2).unwrap();
        assert!(index.knn(&[0.0], 1).is_err());
        assert!(index.knn(&[0.0; 3], 0).is_err());
        let empty: FeatureDb<()> = FeatureDb::new(2);
        let ei = IDistance::build(&empty, 2).unwrap();
        assert!(ei.is_empty());
        assert!(ei.knn(&[0.0, 0.0], 1).is_err());
    }

    #[test]
    fn k_exceeding_size_returns_everything() {
        let db = random_db(7, 2, 3);
        let index = IDistance::build(&db, 3).unwrap();
        let r = index.knn(&[5.0, 5.0], 50).unwrap();
        assert_eq!(r.len(), 7);
        for w in r.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn hundred_thousand_point_build_on_a_tiny_stack() {
        // Construction (farthest-point reference selection, assignment,
        // key sort) is loop-based throughout; proving it on a 256 KiB
        // stack pins that no per-point recursion sneaks in.
        let handle = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(|| {
                let db = random_db(100_000, 4, 42);
                let index = IDistance::build(&db, 16).unwrap();
                assert_eq!(index.len(), 100_000);
                assert_eq!(index.partitions(), 16);
                let q = vec![5.0, 5.0, 5.0, 5.0];
                let exact = knn(&db, &q, 10).unwrap();
                let fast = index.knn(&q, 10).unwrap();
                assert_eq!(exact.len(), fast.len());
                for (a, b) in exact.iter().zip(&fast) {
                    assert!((a.distance - b.distance).abs() < 1e-12);
                }
            })
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn clustered_data_agreement() {
        // The unit-interval feature vectors of the paper live in [0,1]^2c;
        // verify on that scale too.
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut db: FeatureDb<usize> = FeatureDb::new(12);
        for i in 0..150 {
            let center = (i % 3) as f64 * 0.3;
            let v: Vec<f64> = (0..12)
                .map(|_| center + rng.random::<f64>() * 0.1)
                .collect();
            db.insert(i, i % 3, v).unwrap();
        }
        let index = IDistance::build(&db, 6).unwrap();
        for _ in 0..10 {
            let q: Vec<f64> = (0..12).map(|_| rng.random::<f64>()).collect();
            let exact = knn(&db, &q, 5).unwrap();
            let fast = index.knn(&q, 5).unwrap();
            for (a, b) in exact.iter().zip(&fast) {
                assert!((a.distance - b.distance).abs() < 1e-12);
            }
        }
    }
}
