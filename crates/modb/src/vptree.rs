//! Vantage-point tree: an exact metric index for kNN queries.
//!
//! A classic baseline the iDistance literature (the paper's refs \[13\],
//! \[14\]) compares against. Exactness is tested against the linear scan.

use crate::error::{DbError, Result};
use crate::knn::Neighbor;
use crate::store::FeatureDb;
use kinemyo_linalg::vector::euclidean;

#[derive(Debug, Clone)]
struct Node {
    /// Index into the owning tree's point arrays.
    point: usize,
    /// Median distance separating inside from outside.
    radius: f64,
    inside: Option<usize>,
    outside: Option<usize>,
}

/// An exact vantage-point tree over a snapshot of a [`FeatureDb`].
#[derive(Debug, Clone)]
pub struct VpTree<M> {
    nodes: Vec<Node>,
    root: Option<usize>,
    points: Vec<Vec<f64>>,
    ids: Vec<usize>,
    metas: Vec<M>,
    dim: usize,
}

impl<M: Clone> VpTree<M> {
    /// Builds the tree from the current contents of `db`.
    pub fn build(db: &FeatureDb<M>) -> Self {
        let points: Vec<Vec<f64>> = db.entries().iter().map(|e| e.vector.clone()).collect();
        let ids: Vec<usize> = db.entries().iter().map(|e| e.id).collect();
        let metas: Vec<M> = db.entries().iter().map(|e| e.meta.clone()).collect();
        let mut tree = Self {
            nodes: Vec::with_capacity(points.len()),
            root: None,
            points,
            ids,
            metas,
            dim: db.dim(),
        };
        let indices: Vec<usize> = (0..tree.points.len()).collect();
        tree.build_iterative(indices);
        tree
    }

    /// Builds the tree with an explicit work stack instead of recursion,
    /// so construction cost is bounded by heap, not thread stack — a
    /// million-motion build must not depend on the caller's stack size
    /// (see the 10⁵-point test, which builds on a 256 KiB stack).
    ///
    /// Each work item is a subset of point indices plus the parent slot
    /// the subtree root will be written into. Pushing the outside half
    /// first and the inside half second preserves the preorder node
    /// numbering of the old recursive build (node, inside subtree,
    /// outside subtree), so tree layout is unchanged.
    fn build_iterative(&mut self, indices: Vec<usize>) {
        /// Where a finished subtree root gets linked.
        enum Slot {
            Root,
            Inside(usize),
            Outside(usize),
        }
        let mut work: Vec<(Slot, Vec<usize>)> = vec![(Slot::Root, indices)];
        while let Some((slot, idxs)) = work.pop() {
            let Some((&vantage, rest)) = idxs.split_first() else {
                continue;
            };
            let node_idx = self.nodes.len();
            // Vantage point: the first index (points arrive in insertion
            // order; deterministic and adequate for the sizes here).
            let radius = if rest.is_empty() {
                0.0
            } else {
                // Partition the rest by median distance to the vantage.
                let vantage_point = &self.points[vantage];
                let mut dists: Vec<(f64, usize)> = rest
                    .iter()
                    .map(|&i| (euclidean(&self.points[i], vantage_point), i))
                    .collect();
                dists.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mid = dists.len() / 2;
                let radius = dists[mid].0;
                let inside: Vec<usize> = dists[..mid].iter().map(|&(_, i)| i).collect();
                let outside: Vec<usize> = dists[mid..].iter().map(|&(_, i)| i).collect();
                work.push((Slot::Outside(node_idx), outside));
                work.push((Slot::Inside(node_idx), inside));
                radius
            };
            self.nodes.push(Node {
                point: vantage,
                radius,
                inside: None,
                outside: None,
            });
            match slot {
                Slot::Root => self.root = Some(node_idx),
                Slot::Inside(parent) => self.nodes[parent].inside = Some(node_idx),
                Slot::Outside(parent) => self.nodes[parent].outside = Some(node_idx),
            }
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Exact k-nearest-neighbour query.
    pub fn knn(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor<M>>> {
        if k == 0 {
            return Err(DbError::InvalidArgument {
                reason: "k must be >= 1".into(),
            });
        }
        if query.len() != self.dim {
            return Err(DbError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if self.is_empty() {
            return Err(DbError::Empty);
        }
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        self.search(self.root, query, k, &mut best);
        Ok(best
            .into_iter()
            .map(|(d, i)| Neighbor {
                id: self.ids[i],
                meta: self.metas[i].clone(),
                distance: d,
            })
            .collect())
    }

    fn search(&self, node: Option<usize>, query: &[f64], k: usize, best: &mut Vec<(f64, usize)>) {
        let Some(idx) = node else { return };
        let node = &self.nodes[idx];
        let d = euclidean(&self.points[node.point], query);

        if best.len() < k || d < best[best.len() - 1].0 {
            let pos = best
                .binary_search_by(|(bd, _)| bd.total_cmp(&d))
                .unwrap_or_else(|p| p);
            best.insert(pos, (d, node.point));
            if best.len() > k {
                best.pop();
            }
        }
        let tau = if best.len() == k {
            best[best.len() - 1].0
        } else {
            f64::INFINITY
        };
        // Search the more promising side first, prune the other if the
        // annulus |d − radius| exceeds the current kth distance.
        if d < node.radius {
            self.search(node.inside, query, k, best);
            let tau = if best.len() == k {
                best[best.len() - 1].0
            } else {
                f64::INFINITY
            };
            if node.radius - d <= tau {
                self.search(node.outside, query, k, best);
            }
        } else {
            self.search(node.outside, query, k, best);
            let tau = if best.len() == k {
                best[best.len() - 1].0
            } else {
                f64::INFINITY
            };
            if d - node.radius <= tau {
                self.search(node.inside, query, k, best);
            }
        }
        let _ = tau;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_db(n: usize, dim: usize, seed: u64) -> FeatureDb<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut db = FeatureDb::new(dim);
        for i in 0..n {
            let v: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 10.0).collect();
            db.insert(i, i % 7, v).unwrap();
        }
        db
    }

    #[test]
    fn agrees_with_linear_scan() {
        for seed in 0..5u64 {
            let db = random_db(200, 6, seed);
            let tree = VpTree::build(&db);
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 100);
            for _ in 0..20 {
                let q: Vec<f64> = (0..6).map(|_| rng.random::<f64>() * 10.0).collect();
                let exact = knn(&db, &q, 5).unwrap();
                let fast = tree.knn(&q, 5).unwrap();
                assert_eq!(exact.len(), fast.len());
                for (a, b) in exact.iter().zip(&fast) {
                    assert!((a.distance - b.distance).abs() < 1e-12, "distances differ");
                }
            }
        }
    }

    #[test]
    fn single_point_tree() {
        let mut db: FeatureDb<()> = FeatureDb::new(2);
        db.insert(42, (), vec![1.0, 1.0]).unwrap();
        let tree = VpTree::build(&db);
        assert_eq!(tree.len(), 1);
        let r = tree.knn(&[0.0, 0.0], 3).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, 42);
    }

    #[test]
    fn duplicate_points_handled() {
        let mut db: FeatureDb<()> = FeatureDb::new(1);
        for i in 0..10 {
            db.insert(i, (), vec![5.0]).unwrap();
        }
        let tree = VpTree::build(&db);
        let r = tree.knn(&[5.0], 4).unwrap();
        assert_eq!(r.len(), 4);
        for n in r {
            assert_eq!(n.distance, 0.0);
        }
    }

    #[test]
    fn validation_errors() {
        let db = random_db(10, 3, 1);
        let tree = VpTree::build(&db);
        assert!(tree.knn(&[0.0], 1).is_err());
        assert!(tree.knn(&[0.0, 0.0, 0.0], 0).is_err());
        let empty: FeatureDb<()> = FeatureDb::new(2);
        let etree = VpTree::build(&empty);
        assert!(etree.is_empty());
        assert!(etree.knn(&[0.0, 0.0], 1).is_err());
    }

    #[test]
    fn hundred_thousand_point_build_on_a_tiny_stack() {
        // The build must never recurse over the data: run it on a thread
        // with a 256 KiB stack, far below what a per-point recursion
        // would need at this scale.
        let handle = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(|| {
                let db = random_db(100_000, 4, 42);
                let tree = VpTree::build(&db);
                assert_eq!(tree.len(), 100_000);
                let q = vec![5.0, 5.0, 5.0, 5.0];
                let exact = knn(&db, &q, 10).unwrap();
                let fast = tree.knn(&q, 10).unwrap();
                assert_eq!(exact.len(), fast.len());
                for (a, b) in exact.iter().zip(&fast) {
                    assert!((a.distance - b.distance).abs() < 1e-12);
                }
            })
            .unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn results_sorted_by_distance() {
        let db = random_db(100, 4, 9);
        let tree = VpTree::build(&db);
        let r = tree.knn(&[5.0, 5.0, 5.0, 5.0], 10).unwrap();
        for w in r.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
