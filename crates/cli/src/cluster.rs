//! `kinemyo cluster`: run replication nodes and the scatter-gather
//! router from the shell.
//!
//! `cluster node` wraps a serve daemon in a [`ClusterNode`]: started
//! without `--leader` it leads; with `--leader ADDR` it follows,
//! catches up over the replication stream, and stands for election when
//! the leader goes silent. `cluster router` binds a serve-protocol
//! front end that fans classify requests over shards and degrades
//! honestly when shards die. Both block until a client sends
//! `shutdown`, and both support `--port-file` so scripts can discover
//! ephemeral ports.

use crate::args::{ArgError, ParsedArgs};
use kinemyo_cluster::{ClusterNode, NodeConfig, Router, RouterConfig, RouterServer};
use kinemyo_serve::{ServeConfig, Server};
use std::error::Error;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

type CliResult = std::result::Result<(), Box<dyn Error>>;

/// Dispatches `kinemyo cluster <subcommand>`.
pub fn run_cluster(args: &ParsedArgs) -> CliResult {
    match args.subcommand.as_deref() {
        Some("node") => node(args),
        Some("router") => router(args),
        other => Err(Box::new(ArgError(format!(
            "unknown cluster subcommand '{}' (expected node or router)",
            other.unwrap_or("")
        )))),
    }
}

/// `kinemyo cluster node`.
fn node(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&[
        "model",
        "store",
        "addr",
        "repl-addr",
        "node-id",
        "peers",
        "leader",
        "heartbeat-ms",
        "election-timeout-ms",
        "port-file",
    ])?;
    let model_path = Path::new(args.require("model")?).to_owned();
    // Replication ships WAL entries, so a node without a durable store
    // has nothing to stream or apply — require one up front.
    let store_dir = args.require("store")?;
    let config = ServeConfig::default()
        .with_addr(args.get("addr").unwrap_or("127.0.0.1:0"))
        .with_store_dir(store_dir);
    let server = Arc::new(Server::start_from_file(&model_path, config)?);

    let node_id = args.get_or("node-id", 0u64)?;
    let mut node_config = NodeConfig::new(node_id, args.get("repl-addr").unwrap_or("127.0.0.1:0"))
        .with_heartbeat(Duration::from_millis(args.get_or("heartbeat-ms", 100u64)?))
        .with_election_timeout(Duration::from_millis(
            args.get_or("election-timeout-ms", 500u64)?,
        ));
    if let Some(peers) = args.get("peers") {
        node_config = node_config.with_peers(
            peers
                .split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(String::from)
                .collect(),
        );
    }
    if let Some(leader) = args.get("leader") {
        node_config = node_config.with_leader(leader);
    }
    let mut node = ClusterNode::start(Arc::clone(&server), node_config)?;

    let serve_addr = server.local_addr();
    let repl_addr = node.repl_addr().to_string();
    // First line serve address, second line replication address — the
    // bound ports scripts need to wire the rest of the cluster.
    if let Some(port_file) = args.get("port-file") {
        std::fs::write(port_file, format!("{serve_addr}\n{repl_addr}\n"))?;
    }
    println!(
        "cluster node {node_id} ({}) serving {} on {serve_addr}, replicating on {repl_addr}",
        node.role(),
        model_path.display()
    );
    eprintln!(
        "send a 'shutdown' request to stop (kinemyo client --addr {serve_addr} --op shutdown)"
    );

    while !server.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    node.stop();
    drop(node);
    // Detached replication connection threads hold clones of the server
    // handle; they exit within their read timeout once stopped.
    let mut server = server;
    let server = loop {
        match Arc::try_unwrap(server) {
            Ok(inner) => break inner,
            Err(still_shared) => {
                server = still_shared;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    let stats = server.wait();
    println!(
        "cluster node stopped: served={} shed={} failed={}",
        stats.served, stats.shed, stats.failed
    );
    Ok(())
}

/// `kinemyo cluster router`.
fn router(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["shards", "addr", "deadline-ms", "knn-k", "port-file"])?;
    let shards = parse_shards(args.require("shards")?)?;
    let config = RouterConfig::default()
        .with_shards(shards)
        .with_shard_deadline(Duration::from_millis(args.get_or("deadline-ms", 2000u64)?))
        .with_knn_k(args.get_or("knn-k", 5usize)?);
    let shard_count = config.shards.len();
    let router = Router::new(config)?;
    let mut server = RouterServer::start(router, args.get("addr").unwrap_or("127.0.0.1:0"))?;
    let addr = server.local_addr().to_string();
    if let Some(port_file) = args.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n"))?;
    }
    println!("cluster router on {addr} over {shard_count} shard(s)");
    eprintln!("send a 'shutdown' request to stop (kinemyo client --addr {addr} --op shutdown)");
    server.wait();
    println!("cluster router stopped");
    Ok(())
}

/// Parses `--shards "a,b;c,d"`: shards split on `;`, replicas on `,`.
fn parse_shards(raw: &str) -> std::result::Result<Vec<Vec<String>>, ArgError> {
    let shards: Vec<Vec<String>> = raw
        .split(';')
        .map(|shard| {
            shard
                .split(',')
                .map(str::trim)
                .filter(|r| !r.is_empty())
                .map(String::from)
                .collect()
        })
        .collect();
    if shards.is_empty() || shards.iter().any(Vec::is_empty) {
        return Err(ArgError(format!(
            "--shards: '{raw}' must list replica addresses as 'a,b;c,d' \
             (shards split on ';', replicas on ',')"
        )));
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_shards_and_replicas() {
        let shards = parse_shards("127.0.0.1:1,127.0.0.1:2;127.0.0.1:3").unwrap();
        assert_eq!(
            shards,
            vec![
                vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()],
                vec!["127.0.0.1:3".to_string()],
            ]
        );
        assert!(parse_shards("").is_err());
        assert!(parse_shards("a;;b").is_err());
    }
}
