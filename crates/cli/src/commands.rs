//! Subcommand implementations.
//!
//! Each command is a function from parsed arguments to a `Result`, kept
//! separate from `main` so the integration tests can drive them directly.

use crate::args::{ArgError, ParsedArgs};
use kinemyo::biosim::{inject_faults, Dataset, DatasetSpec, FaultLog, FaultSpec};
use kinemyo::class_index;
use kinemyo::prelude::*;
use std::error::Error;
use std::path::Path;

type CliResult = std::result::Result<(), Box<dyn Error>>;

/// Usage text shown by `help` and on argument errors.
pub const USAGE: &str = "\
kinemyo — integrated motion-capture + EMG motion classification

USAGE:
  kinemyo <command> [--option value ...]

COMMANDS:
  generate   synthesize a dataset
             --limb hand|leg|whole  --participants N  --trials N
             --seed N  --out PATH (.json or .kmyo)
  info       summarize a dataset or model
             --dataset PATH | --model PATH
  train      train a classifier and save it
             --dataset PATH  --out MODEL.json
             [--clusters N] [--window-ms MS] [--seed N]
             [--index linear|hybrid|ann]  kNN retrieval backend
             (default hybrid; ann = deterministic HNSW graph with
             exact reported distances)
             [--index-appends N]  rebuild the kNN index after N
             appends (0 = build once for ann, linear scan for hybrid)
  classify   classify records with a trained model
             --model MODEL.json  --dataset PATH  [--record ID]
  evaluate   train/query split evaluation (paper Sec. 6 metrics)
             --dataset PATH  [--clusters N] [--window-ms MS]
             [--index linear|hybrid|ann] [--index-appends N]
             [--queries-per-cell N] [--confusion]
             [--faults RATE] [--fault-seed N]  inject sensor faults into
             the queries (dropped mocap frames, EMG dropout/saturation/
             NaN, stream desync)
             [--guard]   classify through the fault guard (gap-fill,
             modality fallback, resync) instead of the bare pipeline
             [--health]  print the merged degradation report (needs --guard)
  serve      run the classification daemon (blocks until 'shutdown')
             --model MODEL.json  [--addr HOST:PORT (default 127.0.0.1:0)]
             [--queue N] [--batch-max N] [--batch-wait-ms MS]
             [--workers N] [--deadline-ms MS]
             [--port-file PATH]  write the bound address for scripts
             [--store DIR]  durable motion store: WAL-log every insert
             and recover ingested motions bit-identically on restart
             [--sessions N]  streaming-session capacity (default 64)
             [--session-idle-ms MS]  evict idle sessions (default 30000)
             [--session-arms L1,L2]  extra per-session window lengths
             [--session-drift R:BASE:RECENT:MIN:COOLDOWN]  drift-detector
             thresholds (trigger when recent mean margin < R x baseline)
             [--session-retrain DATASET]  arm drift-triggered hot
             re-training from this base corpus
  client     talk to a running daemon
             --addr HOST:PORT  [--op classify|classify-batch|insert|
             stream|health|stats|reload|persist|compact|shutdown
             (default health)]  [--timeout-ms MS]
             classify/insert ops need --dataset PATH [--record ID]
             stream op: --replay limb:subjects:motions:seed  drive one
             streaming session per subject from the seeded replay
             corpus  [--policy rebind|finish-old] [--arms L1,L2]
  cluster    replication and sharded serving
             node     run a replicating serve daemon (blocks until
                      'shutdown');  --model MODEL.json  --store DIR
                      --node-id N  [--addr HOST:PORT] [--repl-addr
                      HOST:PORT] [--peers ADDR,ADDR]  [--leader ADDR]
                      start as a follower of ADDR (omit to lead)
                      [--heartbeat-ms MS] [--election-timeout-ms MS]
                      [--port-file PATH]  write serve + repl addresses
             router   scatter-gather front end over shards
                      --shards 'a,b;c,d'  (shards split on ';',
                      replicas on ',')  [--addr HOST:PORT]
                      [--deadline-ms MS] [--knn-k N] [--port-file PATH]
  db         manage a durable motion store offline
             init     --dir DIR  (--model MODEL.json | --dim N)
             ingest   --dir DIR --model MODEL.json --dataset PATH
                      [--record ID]
             stats    --dir DIR  [--model MODEL.json]  also report the
                      model's index backend and whether the store grafts
                      cleanly onto it (dim + id-collision check)
             compact  --dir DIR
  help       show this text
";

fn parse_limb(raw: &str) -> std::result::Result<Limb, ArgError> {
    match raw {
        "hand" => Ok(Limb::RightHand),
        "leg" => Ok(Limb::RightLeg),
        "whole" => Ok(Limb::WholeBody),
        other => Err(ArgError(format!(
            "unknown limb '{other}' (expected hand, leg or whole)"
        ))),
    }
}

/// Loads a dataset, dispatching on the file extension.
pub fn load_dataset(path: &Path) -> std::result::Result<Dataset, Box<dyn Error>> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("kmyo") => Ok(Dataset::load_binary(path)?),
        _ => Ok(Dataset::load_json(path)?),
    }
}

fn save_dataset(ds: &Dataset, path: &Path) -> CliResult {
    match path.extension().and_then(|e| e.to_str()) {
        Some("kmyo") => ds.save_binary(path)?,
        _ => ds.save_json(path)?,
    }
    Ok(())
}

/// `kinemyo generate`.
pub fn generate(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["limb", "participants", "trials", "seed", "out"])?;
    let limb = parse_limb(args.get("limb").unwrap_or("hand"))?;
    let spec = match limb {
        Limb::RightHand => DatasetSpec::hand_default(),
        Limb::RightLeg => DatasetSpec::leg_default(),
        Limb::WholeBody => DatasetSpec::whole_body_default(),
    }
    .with_size(
        args.get_or("participants", 2usize)?,
        args.get_or("trials", 4usize)?,
    )
    .with_seed(args.get_or("seed", 2007u64)?);
    let out = Path::new(args.require("out")?).to_owned();
    eprintln!(
        "generating {limb} dataset: {} participants x {} trials/class ...",
        spec.participants, spec.trials_per_class
    );
    let ds = Dataset::generate(spec)?;
    save_dataset(&ds, &out)?;
    let bytes = std::fs::metadata(&out)?.len();
    println!(
        "wrote {} records ({} classes) to {} ({:.1} MiB)",
        ds.len(),
        ds.classes().len(),
        out.display(),
        bytes as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

/// `kinemyo info`.
pub fn info(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["dataset", "model"])?;
    if let Some(path) = args.get("dataset") {
        let ds = load_dataset(Path::new(path))?;
        println!(
            "dataset: limb={} records={} participants={} trials/class={} seed={}",
            ds.spec.limb,
            ds.len(),
            ds.spec.participants,
            ds.spec.trials_per_class,
            ds.spec.seed
        );
        for &class in MotionClass::all_for(ds.spec.limb) {
            let n = ds.records.iter().filter(|r| r.class == class).count();
            let frames: usize = ds
                .records
                .iter()
                .filter(|r| r.class == class)
                .map(|r| r.frames())
                .sum();
            println!(
                "  {class:<12} {n:>4} trials, {:>7.1} s total",
                frames as f64 / ds.spec.acquisition.mocap_fs
            );
        }
        return Ok(());
    }
    if let Some(path) = args.get("model") {
        let model = MotionClassifier::load_json(Path::new(path))?;
        println!(
            "model: limb={} motions={} clusters={} window={} frames point-dim={} index={}",
            model.limb(),
            model.db().len(),
            model.fcm().num_clusters(),
            model.window().len(),
            model.point_dim(),
            model.index_kind()
        );
        return Ok(());
    }
    Err(Box::new(ArgError(
        "info needs --dataset PATH or --model PATH".into(),
    )))
}

fn pipeline_config(args: &ParsedArgs) -> std::result::Result<PipelineConfig, ArgError> {
    let backend = match args.get("index") {
        Some(raw) => raw.parse::<IndexBackend>().map_err(ArgError)?,
        None => IndexBackend::default(),
    };
    Ok(PipelineConfig::default()
        .with_clusters(args.get_or("clusters", 15usize)?)
        .with_window_ms(args.get_or("window-ms", 100.0f64)?)
        .with_seed(args.get_or("seed", 0x1CDE_2007u64)?)
        .with_index_backend(backend)
        .with_index_rebuild_appends(args.get_or("index-appends", 0usize)?))
}

/// `kinemyo train`.
pub fn train(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&[
        "dataset",
        "out",
        "clusters",
        "window-ms",
        "seed",
        "index",
        "index-appends",
    ])?;
    let ds = load_dataset(Path::new(args.require("dataset")?))?;
    let config = pipeline_config(args)?;
    let refs: Vec<_> = ds.records.iter().collect();
    eprintln!(
        "training on {} records (c={}, window={} ms) ...",
        refs.len(),
        config.clusters,
        config.window_ms
    );
    let model = MotionClassifier::train(&refs, ds.spec.limb, &config)?;
    let out = Path::new(args.require("out")?);
    model.save_json(out)?;
    println!(
        "trained model saved to {} ({} motions, {} clusters)",
        out.display(),
        model.db().len(),
        model.fcm().num_clusters()
    );
    Ok(())
}

/// `kinemyo classify`.
pub fn classify(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["model", "dataset", "record"])?;
    let model = MotionClassifier::load_json(Path::new(args.require("model")?))?;
    let ds = load_dataset(Path::new(args.require("dataset")?))?;
    let only: Option<usize> = match args.get("record") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("--record: cannot parse '{raw}'")))?,
        ),
        None => None,
    };
    let mut correct = 0usize;
    let mut total = 0usize;
    for r in &ds.records {
        if let Some(id) = only {
            if r.id != id {
                continue;
            }
        }
        let c = model.classify_record(r)?;
        total += 1;
        let ok = c.predicted == r.class;
        correct += ok as usize;
        println!(
            "record {:>4}  truth={:<12} predicted={:<12} {}  nearest={} @ {:.3}",
            r.id,
            r.class.to_string(),
            c.predicted.to_string(),
            if ok { "ok" } else { "WRONG" },
            c.neighbors[0].meta.class,
            c.neighbors[0].distance
        );
    }
    if total == 0 {
        return Err(Box::new(ArgError("no matching records".into())));
    }
    println!(
        "{}/{} correct ({:.1}%)",
        correct,
        total,
        correct as f64 / total as f64 * 100.0
    );
    Ok(())
}

/// `kinemyo evaluate`.
pub fn evaluate_cmd(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&[
        "dataset",
        "clusters",
        "window-ms",
        "seed",
        "index",
        "index-appends",
        "queries-per-cell",
        "confusion",
        "faults",
        "fault-seed",
        "guard",
        "health",
    ])?;
    if args.has_switch("health") && !args.has_switch("guard") {
        return Err(Box::new(ArgError(
            "--health reports guard degradation; it needs --guard".into(),
        )));
    }
    let ds = load_dataset(Path::new(args.require("dataset")?))?;
    let config = pipeline_config(args)?;
    let queries_per_cell = args.get_or("queries-per-cell", 1usize)?;
    let (train, clean_queries) = stratified_split(&ds.records, queries_per_cell);

    let fault_rate: f64 = args.get_or("faults", 0.0f64)?;
    if !(fault_rate >= 0.0) || fault_rate > 1.0 {
        return Err(Box::new(ArgError(format!(
            "--faults must be in [0, 1], got {fault_rate}"
        ))));
    }
    let mut fault_log = FaultLog::default();
    let faulted: Vec<MotionRecord> = if fault_rate > 0.0 {
        let spec = FaultSpec::from_rate(fault_rate, args.get_or("fault-seed", 0xFA17u64)?);
        clean_queries
            .iter()
            .map(|r| {
                let (q, log) = inject_faults(r, &spec);
                fault_log.merge(&log);
                q
            })
            .collect()
    } else {
        Vec::new()
    };
    let queries: Vec<&MotionRecord> = if fault_rate > 0.0 {
        faulted.iter().collect()
    } else {
        clean_queries
    };
    if fault_rate > 0.0 {
        eprintln!(
            "injected faults (rate {fault_rate}): {} mocap frames dropped, \
             {} EMG samples corrupted, worst desync {} frames",
            fault_log.mocap_frames_dropped,
            fault_log.emg_samples_corrupted(),
            fault_log.max_desync_frames
        );
    }

    if args.has_switch("guard") {
        let model =
            GuardedClassifier::train(&train, ds.spec.limb, &config, GuardConfig::default())?;
        let out = evaluate_guarded(&model, &queries)?;
        println!(
            "train={} queries={}  misclassification={:.2}%  errors={}  (guarded)",
            train.len(),
            out.queries,
            out.misclassification_pct,
            out.errors
        );
        if args.has_switch("health") {
            println!("{}", out.health);
        }
        return Ok(());
    }

    if fault_rate > 0.0 {
        // Unguarded + faults: the bare pipeline rejects corrupt input with
        // typed errors, so classify per query and count rejections as
        // misclassifications instead of aborting the whole evaluation.
        let model = MotionClassifier::train(&train, ds.spec.limb, &config)?;
        let mut errors = 0usize;
        let mut rejected = 0usize;
        for q in &queries {
            match model.classify_record(q) {
                Ok(c) if c.predicted == q.class => {}
                Ok(_) => errors += 1,
                Err(_) => {
                    errors += 1;
                    rejected += 1;
                }
            }
        }
        println!(
            "train={} queries={}  misclassification={:.2}%  ({} queries rejected, unguarded)",
            train.len(),
            queries.len(),
            errors as f64 / queries.len() as f64 * 100.0,
            rejected
        );
        return Ok(());
    }

    let out = kinemyo::evaluate(&train, &queries, ds.spec.limb, &config)?;
    println!(
        "train={} queries={}  misclassification={:.2}%  kNN-correct={:.2}% (k={})",
        train.len(),
        out.queries,
        out.misclassification_pct,
        out.knn_correct_pct,
        config.knn_k
    );
    if args.has_switch("confusion") {
        let classes = MotionClass::all_for(ds.spec.limb);
        print!("{:>12}", "");
        for &c in classes {
            print!("{:>11}", c.to_string());
        }
        println!();
        for &truth in classes {
            print!("{:>12}", truth.to_string());
            for &pred in classes {
                print!(
                    "{:>11}",
                    out.confusion.get(
                        class_index(ds.spec.limb, truth),
                        class_index(ds.spec.limb, pred)
                    )
                );
            }
            println!();
        }
    }
    Ok(())
}

/// Dispatches a parsed command line.
pub fn run(args: &ParsedArgs) -> CliResult {
    match args.command.as_str() {
        "generate" => generate(args),
        "info" => info(args),
        "train" => train(args),
        "classify" => classify(args),
        "evaluate" => evaluate_cmd(args),
        "serve" => crate::serving::serve(args),
        "client" => crate::serving::client(args),
        "db" => crate::db::run_db(args),
        "cluster" => crate::cluster::run_cluster(args),
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Box::new(ArgError(format!("unknown command '{other}'")))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kinemyo_cli_{name}"))
    }

    #[test]
    fn full_cli_workflow() {
        let ds_path = tmp("wf.kmyo");
        let model_path = tmp("wf_model.json");
        // generate
        let p = parse(
            &s(&[
                "generate",
                "--limb",
                "hand",
                "--participants",
                "1",
                "--trials",
                "2",
                "--out",
                ds_path.to_str().unwrap(),
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        // info
        let p = parse(&s(&["info", "--dataset", ds_path.to_str().unwrap()]), &[]).unwrap();
        run(&p).unwrap();
        // train
        let p = parse(
            &s(&[
                "train",
                "--dataset",
                ds_path.to_str().unwrap(),
                "--out",
                model_path.to_str().unwrap(),
                "--clusters",
                "6",
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        // info on model
        let p = parse(&s(&["info", "--model", model_path.to_str().unwrap()]), &[]).unwrap();
        run(&p).unwrap();
        // classify
        let p = parse(
            &s(&[
                "classify",
                "--model",
                model_path.to_str().unwrap(),
                "--dataset",
                ds_path.to_str().unwrap(),
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        // evaluate with confusion switch
        let p = parse(
            &s(&[
                "evaluate",
                "--dataset",
                ds_path.to_str().unwrap(),
                "--clusters",
                "6",
                "--confusion",
            ]),
            &["confusion"],
        )
        .unwrap();
        run(&p).unwrap();
        // retrain with the ANN backend and classify through the graph
        let p = parse(
            &s(&[
                "train",
                "--dataset",
                ds_path.to_str().unwrap(),
                "--out",
                model_path.to_str().unwrap(),
                "--clusters",
                "6",
                "--index",
                "ann",
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        let p = parse(
            &s(&[
                "classify",
                "--model",
                model_path.to_str().unwrap(),
                "--dataset",
                ds_path.to_str().unwrap(),
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        std::fs::remove_file(&ds_path).ok();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn evaluate_with_faults_guarded_and_unguarded() {
        let ds_path = tmp("faults.kmyo");
        let p = parse(
            &s(&[
                "generate",
                "--limb",
                "hand",
                "--participants",
                "1",
                "--trials",
                "2",
                "--out",
                ds_path.to_str().unwrap(),
            ]),
            &[],
        )
        .unwrap();
        if run(&p).is_err() {
            // Builds without a serialization backend cannot roundtrip
            // datasets through files; the guard paths themselves are
            // covered by the core/guard and integration tests.
            return;
        }
        // Unguarded with faults: typed rejections, no panic, no abort.
        let p = parse(
            &s(&[
                "evaluate",
                "--dataset",
                ds_path.to_str().unwrap(),
                "--clusters",
                "6",
                "--faults",
                "0.05",
                "--fault-seed",
                "9",
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        // Guarded with faults + health report.
        let p = parse(
            &s(&[
                "evaluate",
                "--dataset",
                ds_path.to_str().unwrap(),
                "--clusters",
                "6",
                "--faults",
                "0.05",
                "--guard",
                "--health",
            ]),
            &["guard", "health"],
        )
        .unwrap();
        run(&p).unwrap();
        std::fs::remove_file(&ds_path).ok();
    }

    #[test]
    fn evaluate_flag_validation() {
        let p = parse(
            &s(&["evaluate", "--dataset", "x.kmyo", "--health"]),
            &["health"],
        )
        .unwrap();
        assert!(run(&p).is_err());
        let p = parse(
            &s(&["evaluate", "--dataset", "x.kmyo", "--faults", "1.5"]),
            &[],
        )
        .unwrap();
        assert!(run(&p).is_err());
    }

    #[test]
    fn error_paths() {
        let p = parse(&s(&["nonsense"]), &[]).unwrap();
        assert!(run(&p).is_err());
        let p = parse(&s(&["info"]), &[]).unwrap();
        assert!(run(&p).is_err());
        let p = parse(&s(&["generate", "--limb", "tail", "--out", "x.json"]), &[]).unwrap();
        assert!(run(&p).is_err());
        let p = parse(
            &s(&["train", "--dataset", "/nonexistent.json", "--out", "m.json"]),
            &[],
        )
        .unwrap();
        assert!(run(&p).is_err());
        let p = parse(&s(&["generate", "--typo", "1", "--out", "x.json"]), &[]).unwrap();
        assert!(run(&p).is_err());
        let p = parse(
            &s(&[
                "train",
                "--dataset",
                "x.kmyo",
                "--out",
                "m.json",
                "--index",
                "vptree",
            ]),
            &[],
        )
        .unwrap();
        assert!(run(&p).is_err());
    }

    #[test]
    fn classify_missing_record_errors() {
        let ds_path = tmp("missing_rec.json");
        let model_path = tmp("missing_rec_model.json");
        let p = parse(
            &s(&[
                "generate",
                "--limb",
                "leg",
                "--participants",
                "1",
                "--trials",
                "1",
                "--out",
                ds_path.to_str().unwrap(),
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        let p = parse(
            &s(&[
                "train",
                "--dataset",
                ds_path.to_str().unwrap(),
                "--out",
                model_path.to_str().unwrap(),
                "--clusters",
                "4",
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        let p = parse(
            &s(&[
                "classify",
                "--model",
                model_path.to_str().unwrap(),
                "--dataset",
                ds_path.to_str().unwrap(),
                "--record",
                "99999",
            ]),
            &[],
        )
        .unwrap();
        assert!(run(&p).is_err());
        std::fs::remove_file(&ds_path).ok();
        std::fs::remove_file(&model_path).ok();
    }
}
