//! Minimal dependency-free command-line argument parsing.
//!
//! Supports `command --flag value --switch` grammars: one positional
//! subcommand followed by `--key value` pairs (or bare `--key` switches
//! declared in advance). Kept deliberately small instead of pulling a CLI
//! framework into the dependency tree (DESIGN.md §6).

use std::collections::{BTreeMap, BTreeSet};

/// Commands that take a second positional word (`kinemyo db ingest ...`).
/// Any other command still rejects stray positionals.
const MULTI_WORD_COMMANDS: &[&str] = &["db", "cluster"];

/// Parsed command line: the subcommand plus its options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The leading positional subcommand.
    pub command: String,
    /// Second positional word, only for [`MULTI_WORD_COMMANDS`]
    /// (`db init`, `db ingest`, ...).
    pub subcommand: Option<String>,
    options: BTreeMap<String, String>,
    switches: BTreeSet<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parses `args` (without the program name). `switch_names` lists the
/// bare flags that take no value; everything else starting with `--`
/// must be followed by a value.
pub fn parse(args: &[String], switch_names: &[&str]) -> std::result::Result<ParsedArgs, ArgError> {
    let mut iter = args.iter();
    let command = iter
        .next()
        .ok_or_else(|| ArgError("missing subcommand".into()))?
        .clone();
    if command.starts_with('-') {
        return Err(ArgError(format!(
            "expected a subcommand, got option '{command}'"
        )));
    }
    let mut iter = iter.peekable();
    let subcommand = if MULTI_WORD_COMMANDS.contains(&command.as_str()) {
        match iter.peek() {
            Some(next) if !next.starts_with('-') => iter.next().cloned(),
            _ => {
                let example = if command == "cluster" {
                    "node"
                } else {
                    "stats"
                };
                return Err(ArgError(format!(
                    "'{command}' needs a subcommand (e.g. '{command} {example}')"
                )));
            }
        }
    } else {
        None
    };
    let switch_set: BTreeSet<&str> = switch_names.iter().copied().collect();
    let mut options = BTreeMap::new();
    let mut switches = BTreeSet::new();
    while let Some(arg) = iter.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(ArgError(format!("unexpected positional argument '{arg}'")));
        };
        if key.is_empty() {
            return Err(ArgError("empty option name '--'".into()));
        }
        if switch_set.contains(key) {
            switches.insert(key.to_string());
        } else {
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("option '--{key}' needs a value")))?;
            if options.insert(key.to_string(), value.clone()).is_some() {
                return Err(ArgError(format!("option '--{key}' given twice")));
            }
        }
    }
    Ok(ParsedArgs {
        command,
        subcommand,
        options,
        switches,
    })
}

impl ParsedArgs {
    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> std::result::Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required option '--{key}'")))
    }

    /// Optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> std::result::Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("option '--{key}': cannot parse '{raw}'"))),
        }
    }

    /// True when a declared switch was present.
    pub fn has_switch(&self, key: &str) -> bool {
        self.switches.contains(key)
    }

    /// Errors if any option outside `allowed` was provided (catches typos).
    pub fn check_allowed(&self, allowed: &[&str]) -> std::result::Result<(), ArgError> {
        let allowed: BTreeSet<&str> = allowed.iter().copied().collect();
        for key in self.options.keys().chain(self.switches.iter()) {
            if !allowed.contains(key.as_str()) {
                return Err(ArgError(format!("unknown option '--{key}'")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let p = parse(&s(&["train", "--clusters", "15", "--out", "m.json"]), &[]).unwrap();
        assert_eq!(p.command, "train");
        assert_eq!(p.get("clusters"), Some("15"));
        assert_eq!(p.require("out").unwrap(), "m.json");
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn switches_take_no_value() {
        let p = parse(&s(&["generate", "--quick", "--seed", "7"]), &["quick"]).unwrap();
        assert!(p.has_switch("quick"));
        assert!(!p.has_switch("other"));
        assert_eq!(p.get_or::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn typed_defaults() {
        let p = parse(&s(&["evaluate"]), &[]).unwrap();
        assert_eq!(p.get_or::<usize>("clusters", 15).unwrap(), 15);
        assert_eq!(p.get_or::<f64>("window-ms", 100.0).unwrap(), 100.0);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&[], &[]).is_err());
        assert!(parse(&s(&["--flag"]), &[]).is_err());
        assert!(parse(&s(&["cmd", "stray"]), &[]).is_err());
        assert!(parse(&s(&["cmd", "--key"]), &[]).is_err());
        assert!(parse(&s(&["cmd", "--k", "1", "--k", "2"]), &[]).is_err());
        assert!(parse(&s(&["cmd", "--"]), &[]).is_err());
        let p = parse(&s(&["cmd", "--clusters", "abc"]), &[]).unwrap();
        assert!(p.get_or::<usize>("clusters", 1).is_err());
        assert!(p.require("absent").is_err());
    }

    #[test]
    fn multi_word_commands_take_a_subcommand() {
        let p = parse(&s(&["db", "ingest", "--dir", "/tmp/store"]), &[]).unwrap();
        assert_eq!(p.command, "db");
        assert_eq!(p.subcommand.as_deref(), Some("ingest"));
        assert_eq!(p.get("dir"), Some("/tmp/store"));
        // Missing or option-shaped subcommand is a parse error...
        assert!(parse(&s(&["db"]), &[]).is_err());
        assert!(parse(&s(&["db", "--dir", "x"]), &[]).is_err());
        // ...and single-word commands still reject stray positionals.
        assert!(parse(&s(&["train", "stray"]), &[]).is_err());
        assert_eq!(parse(&s(&["train"]), &[]).unwrap().subcommand, None);
    }

    #[test]
    fn unknown_options_rejected() {
        let p = parse(&s(&["cmd", "--good", "1", "--bad", "2"]), &[]).unwrap();
        assert!(p.check_allowed(&["good"]).is_err());
        assert!(p.check_allowed(&["good", "bad"]).is_ok());
    }
}
