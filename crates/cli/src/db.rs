//! `kinemyo db`: offline management of the durable motion store.
//!
//! The serve daemon ingests live through the wire protocol; these
//! subcommands cover everything around that from the shell — creating a
//! store (`init`), bulk-loading recorded motions through a trained
//! model's feature pipeline (`ingest`), inspecting the on-disk shape
//! (`stats`), and folding the WAL into a fresh snapshot generation while
//! reclaiming superseded files (`compact`).

use crate::args::{ArgError, ParsedArgs};
use crate::commands::load_dataset;
use kinemyo::pipeline::RecordMeta;
use kinemyo::MotionClassifier;
use kinemyo_store::{DurableDb, StoreConfig};
use std::error::Error;
use std::path::Path;

type CliResult = std::result::Result<(), Box<dyn Error>>;

/// Dispatches `kinemyo db <subcommand>`.
pub fn run_db(args: &ParsedArgs) -> CliResult {
    match args.subcommand.as_deref() {
        Some("init") => init(args),
        Some("ingest") => ingest(args),
        Some("stats") => stats(args),
        Some("compact") => compact(args),
        other => Err(Box::new(ArgError(format!(
            "unknown db subcommand '{}' (expected init, ingest, stats or compact)",
            other.unwrap_or("")
        )))),
    }
}

/// `kinemyo db init`.
fn init(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["dir", "model", "dim"])?;
    let dir = Path::new(args.require("dir")?);
    let dim = match (args.get("model"), args.get("dim")) {
        (Some(model_path), None) => {
            let model = MotionClassifier::load_json(Path::new(model_path))?;
            let db = model.db();
            db.dim()
        }
        (None, Some(_)) => args.get_or("dim", 0usize)?,
        _ => {
            return Err(Box::new(ArgError(
                "db init needs exactly one of --model PATH (vector dim from the model) \
                 or --dim N"
                    .into(),
            )))
        }
    };
    let store = DurableDb::<RecordMeta>::create(dir, dim, StoreConfig::default())?;
    println!(
        "initialized store at {} (dim {}, generation {})",
        dir.display(),
        store.dim(),
        store.stats()?.generation
    );
    Ok(())
}

/// `kinemyo db ingest`.
///
/// Grafts the store onto the model's database — exactly what the serve
/// daemon does — so ingested ids can never collide with training ids,
/// and a later `kinemyo serve --store` of the same directory recovers
/// cleanly.
fn ingest(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["dir", "model", "dataset", "record"])?;
    let dir = Path::new(args.require("dir")?);
    let model = MotionClassifier::load_json(Path::new(args.require("model")?))?;
    let ds = load_dataset(Path::new(args.require("dataset")?))?;
    let only: Option<usize> = match args.get("record") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("--record: cannot parse '{raw}'")))?,
        ),
        None => None,
    };
    let store =
        DurableDb::open_or_create_into(dir, StoreConfig::default(), model.shared_db().clone())?;
    let mut ingested = 0usize;
    for r in &ds.records {
        if let Some(id) = only {
            if r.id != id {
                continue;
            }
        }
        let fv = model.query_feature_vector(r)?;
        let id = store.next_id();
        store.insert(
            id,
            RecordMeta {
                record_id: r.id,
                class: r.class,
                participant: r.participant,
                trial: r.trial,
            },
            fv.into_vec(),
        )?;
        ingested += 1;
        println!("ingested record {:>4} ({}) as id {id}", r.id, r.class);
    }
    if ingested == 0 {
        return Err(Box::new(ArgError("no matching records".into())));
    }
    println!(
        "ingested {ingested} motions into {} ({} store-owned entries)",
        dir.display(),
        store.len()
    );
    Ok(())
}

/// `kinemyo db stats`.
///
/// With `--model MODEL.json` it additionally reports the model's
/// retrieval backend and the *graft state*: whether `kinemyo serve
/// --store` of this directory would recover cleanly onto that model
/// (dimensions match, recovered ids don't collide with training ids) —
/// previously stats was silent about both and a mismatched store only
/// surfaced at daemon startup.
fn stats(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["dir", "model"])?;
    let dir = Path::new(args.require("dir")?);
    let s = {
        let store = DurableDb::<RecordMeta>::open(dir, StoreConfig::default())?;
        store.stats()?
    };
    println!(
        "store {}: generation={} entries={} dim={} segments={} wal-bytes={} \
         snapshot-bytes={} appends-since-snapshot={}",
        dir.display(),
        s.generation,
        s.entries,
        s.dim,
        s.segments,
        s.wal_bytes,
        s.snapshot_bytes,
        s.appends_since_snapshot
    );
    if let Some(model_path) = args.get("model") {
        let model = MotionClassifier::load_json(Path::new(model_path))?;
        let trained = model.db().len();
        // Replay the exact recovery path the serve daemon uses; an error
        // here is the same typed refusal `serve --store` would print.
        let graft =
            match DurableDb::open_into(dir, StoreConfig::default(), model.shared_db().clone()) {
                Ok(grafted) => format!(
                    "clean ({} store-owned + {trained} trained motions)",
                    grafted.len()
                ),
                Err(e) => format!("REFUSED: {e}"),
            };
        println!(
            "model {}: index={} point-dim={} graft={graft}",
            model_path,
            model.index_kind(),
            model.point_dim()
        );
    }
    Ok(())
}

/// `kinemyo db compact`.
fn compact(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["dir"])?;
    let dir = Path::new(args.require("dir")?);
    let store = DurableDb::<RecordMeta>::open(dir, StoreConfig::default())?;
    let info = store.compact()?;
    println!(
        "compacted {}: generation={} entries={} files-removed={} bytes-reclaimed={}",
        dir.display(),
        info.generation,
        info.entries,
        info.files_removed,
        info.bytes_reclaimed
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use crate::commands::run;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("kinemyo_clidb_{tag}_{}_{n}", std::process::id()))
    }

    #[test]
    fn db_init_with_dim_and_stats() {
        let dir = tmp_dir("init");
        let p = parse(
            &s(&["db", "init", "--dir", dir.to_str().unwrap(), "--dim", "12"]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        let p = parse(&s(&["db", "stats", "--dir", dir.to_str().unwrap()]), &[]).unwrap();
        run(&p).unwrap();
        // init refuses an existing store; stats on a non-store errors.
        let p = parse(
            &s(&["db", "init", "--dir", dir.to_str().unwrap(), "--dim", "12"]),
            &[],
        )
        .unwrap();
        assert!(run(&p).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn db_subcommand_validation() {
        let p = parse(&s(&["db", "frobnicate", "--dir", "x"]), &[]).unwrap();
        assert!(run(&p).is_err());
        let p = parse(&s(&["db", "init", "--dir", "x"]), &[]).unwrap();
        assert!(run(&p).is_err()); // neither --model nor --dim
        let p = parse(&s(&["db", "stats", "--dir", "/nonexistent/store"]), &[]).unwrap();
        assert!(run(&p).is_err());
    }

    #[test]
    fn db_ingest_then_stats_and_compact() {
        // Needs dataset/model files on disk, so it requires a real JSON
        // backend (see `.claude/skills/verify`).
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        let ds_path = tmp_dir("ingest_ds").with_extension("kmyo");
        let model_path = tmp_dir("ingest_model").with_extension("json");
        let store_dir = tmp_dir("ingest_store");
        let p = parse(
            &s(&[
                "generate",
                "--limb",
                "hand",
                "--participants",
                "1",
                "--trials",
                "2",
                "--out",
                ds_path.to_str().unwrap(),
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        let p = parse(
            &s(&[
                "train",
                "--dataset",
                ds_path.to_str().unwrap(),
                "--out",
                model_path.to_str().unwrap(),
                "--clusters",
                "6",
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        let p = parse(
            &s(&[
                "db",
                "ingest",
                "--dir",
                store_dir.to_str().unwrap(),
                "--model",
                model_path.to_str().unwrap(),
                "--dataset",
                ds_path.to_str().unwrap(),
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        let p = parse(
            &s(&["db", "stats", "--dir", store_dir.to_str().unwrap()]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        // stats --model reports the index backend and the graft state.
        let p = parse(
            &s(&[
                "db",
                "stats",
                "--dir",
                store_dir.to_str().unwrap(),
                "--model",
                model_path.to_str().unwrap(),
            ]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        let p = parse(
            &s(&["db", "compact", "--dir", store_dir.to_str().unwrap()]),
            &[],
        )
        .unwrap();
        run(&p).unwrap();
        // After compaction everything lives in the snapshot.
        let store = DurableDb::<RecordMeta>::open(&store_dir, StoreConfig::default()).unwrap();
        assert_eq!(store.len(), 12); // 6 classes × 2 trials
        assert!(store.stats().unwrap().generation >= 1);
        std::fs::remove_file(&ds_path).ok();
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_dir_all(&store_dir).ok();
    }
}
