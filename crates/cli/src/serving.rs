//! `kinemyo serve` and `kinemyo client`: the daemon front end.
//!
//! `serve` loads a saved model, binds a TCP listener and blocks until a
//! client sends `shutdown`; `client` speaks the newline-delimited JSON
//! protocol for every operation the server understands, so the whole
//! serve path can be driven from the shell (and from `scripts/check.sh`).

use crate::args::{ArgError, ParsedArgs};
use crate::commands::load_dataset;
use kinemyo_serve::{BatchItem, Response, ServeClient, ServeConfig, Server};
use std::error::Error;
use std::path::Path;
use std::time::Duration;

type CliResult = std::result::Result<(), Box<dyn Error>>;

/// `kinemyo serve`.
pub fn serve(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&[
        "model",
        "addr",
        "queue",
        "batch-max",
        "batch-wait-ms",
        "workers",
        "deadline-ms",
        "port-file",
        "store",
    ])?;
    let model_path = Path::new(args.require("model")?).to_owned();
    let mut config = ServeConfig::default()
        .with_addr(args.get("addr").unwrap_or("127.0.0.1:0"))
        .with_queue_capacity(args.get_or("queue", 256usize)?)
        .with_batch_max(args.get_or("batch-max", 16usize)?)
        .with_batch_wait(Duration::from_millis(args.get_or("batch-wait-ms", 2u64)?))
        .with_workers(args.get_or("workers", 2usize)?)
        .with_request_deadline(Duration::from_millis(args.get_or("deadline-ms", 5000u64)?));
    if let Some(dir) = args.get("store") {
        config = config.with_store_dir(dir);
    }
    let server = Server::start_from_file(&model_path, config)?;
    let addr = server.local_addr();
    // Scripts race against daemon startup; the port file is their signal
    // that the listener is bound (and, with port 0, where it landed).
    if let Some(port_file) = args.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n"))?;
    }
    println!("serving {} on {addr}", model_path.display());
    eprintln!("send a 'shutdown' request to stop (kinemyo client --addr {addr} --op shutdown)");
    let stats = server.wait();
    println!(
        "server stopped: served={} shed={} failed={} expired={} batches={} reloads={} \
         p50={}us p99={}us",
        stats.served,
        stats.shed,
        stats.failed,
        stats.deadline_expired,
        stats.batches,
        stats.reloads,
        stats.p50_latency_us,
        stats.p99_latency_us
    );
    Ok(())
}

/// `kinemyo client`.
pub fn client(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&["addr", "op", "dataset", "record", "timeout-ms"])?;
    let addr = args.require("addr")?;
    let op = args.get("op").unwrap_or("health");
    let mut client = ServeClient::connect(addr)?;
    client.set_timeout(Some(Duration::from_millis(
        args.get_or("timeout-ms", 30_000u64)?,
    )))?;
    match op {
        "classify" | "classify-batch" => {
            let ds = load_dataset(Path::new(args.require("dataset")?))?;
            let only: Option<usize> = match args.get("record") {
                Some(raw) => Some(
                    raw.parse()
                        .map_err(|_| ArgError(format!("--record: cannot parse '{raw}'")))?,
                ),
                None => None,
            };
            let records: Vec<_> = ds
                .records
                .iter()
                .filter(|r| only.map_or(true, |id| r.id == id))
                .cloned()
                .collect();
            if records.is_empty() {
                return Err(Box::new(ArgError("no matching records".into())));
            }
            let items: Vec<BatchItem> = if op == "classify" {
                // One request per record: exercises the single-classify path.
                let mut items = Vec::with_capacity(records.len());
                for r in &records {
                    match client.classify(r) {
                        Ok(result) => items.push(BatchItem::Ok { result }),
                        Err(kinemyo_serve::CallOutcome::Rejected(resp)) => {
                            items.push(rejection_to_item(*resp))
                        }
                        Err(kinemyo_serve::CallOutcome::Transport(e)) => return Err(Box::new(e)),
                    }
                }
                items
            } else {
                client.classify_batch(&records).map_err(Box::new)?
            };
            let mut correct = 0usize;
            let mut answered = 0usize;
            for (r, item) in records.iter().zip(&items) {
                match item {
                    BatchItem::Ok { result } => {
                        answered += 1;
                        let ok = result.predicted == r.class;
                        correct += ok as usize;
                        println!(
                            "record {:>4}  truth={:<12} predicted={:<12} {}",
                            r.id,
                            r.class.to_string(),
                            result.predicted.to_string(),
                            if ok { "ok" } else { "WRONG" }
                        );
                    }
                    BatchItem::Overloaded => {
                        println!("record {:>4}  overloaded (shed by server)", r.id)
                    }
                    BatchItem::DeadlineExceeded { waited_ms } => {
                        println!("record {:>4}  deadline exceeded after {waited_ms} ms", r.id)
                    }
                    BatchItem::Failed { message } => {
                        println!("record {:>4}  failed: {message}", r.id)
                    }
                }
            }
            if answered > 0 {
                println!(
                    "{correct}/{answered} correct ({:.1}%)",
                    correct as f64 / answered as f64 * 100.0
                );
            }
            Ok(())
        }
        "insert" => {
            let ds = load_dataset(Path::new(args.require("dataset")?))?;
            let only: Option<usize> = match args.get("record") {
                Some(raw) => Some(
                    raw.parse()
                        .map_err(|_| ArgError(format!("--record: cannot parse '{raw}'")))?,
                ),
                None => None,
            };
            let mut inserted = 0usize;
            for r in ds
                .records
                .iter()
                .filter(|r| only.map_or(true, |id| r.id == id))
            {
                print_response(client.insert(r)?)?;
                inserted += 1;
            }
            if inserted == 0 {
                return Err(Box::new(ArgError("no matching records".into())));
            }
            Ok(())
        }
        "health" => print_response(client.health()?),
        "stats" => print_response(client.call(&kinemyo_serve::Request::Stats)?),
        "reload" => print_response(client.reload()?),
        "persist" => print_response(client.persist()?),
        "compact" => print_response(client.compact()?),
        "shutdown" => print_response(client.shutdown()?),
        other => Err(Box::new(ArgError(format!(
            "unknown op '{other}' (expected classify, classify-batch, insert, health, \
             stats, reload, persist, compact or shutdown)"
        )))),
    }
}

/// Maps a whole-request rejection onto the equivalent per-item outcome
/// so single and batch classify print through the same code path.
fn rejection_to_item(resp: Response) -> BatchItem {
    match resp {
        Response::Overloaded { .. } => BatchItem::Overloaded,
        Response::DeadlineExceeded { waited_ms } => BatchItem::DeadlineExceeded { waited_ms },
        Response::ShuttingDown => BatchItem::Failed {
            message: "server is shutting down".into(),
        },
        other => BatchItem::Failed {
            message: format!("{other:?}"),
        },
    }
}

/// Prints a control-plane response as one JSON line (errors become
/// process failures so scripts can branch on the exit code).
fn print_response(resp: Response) -> CliResult {
    if let Response::Error { message } = &resp {
        return Err(Box::new(ArgError(format!("server error: {message}"))));
    }
    println!("{}", serde_json::to_string(&resp)?);
    Ok(())
}
