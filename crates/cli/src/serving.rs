//! `kinemyo serve` and `kinemyo client`: the daemon front end.
//!
//! `serve` loads a saved model, binds a TCP listener and blocks until a
//! client sends `shutdown`; `client` speaks the newline-delimited JSON
//! protocol for every operation the server understands, so the whole
//! serve path can be driven from the shell (and from `scripts/check.sh`).

use crate::args::{ArgError, ParsedArgs};
use crate::commands::load_dataset;
use kinemyo::MotionClassifier;
use kinemyo_biosim::replay::{generate_replay, ReplaySpec};
use kinemyo_serve::{
    BatchItem, DriftConfig, ReloadPolicy, Response, RetrainSource, ServeClient, ServeConfig,
    Server, WireFrame,
};
use std::error::Error;
use std::path::Path;
use std::time::Duration;

type CliResult = std::result::Result<(), Box<dyn Error>>;

/// `kinemyo serve`.
pub fn serve(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&[
        "model",
        "addr",
        "queue",
        "batch-max",
        "batch-wait-ms",
        "workers",
        "deadline-ms",
        "port-file",
        "store",
        "sessions",
        "session-idle-ms",
        "session-arms",
        "session-drift",
        "session-retrain",
    ])?;
    let model_path = Path::new(args.require("model")?).to_owned();
    let mut session = kinemyo_serve::SessionConfig::default()
        .with_max_sessions(args.get_or("sessions", 64usize)?)
        .with_idle_timeout(Duration::from_millis(
            args.get_or("session-idle-ms", 30_000u64)?,
        ));
    if let Some(raw) = args.get("session-arms") {
        let arms: Vec<usize> = raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse()
                    .map_err(|_| ArgError(format!("--session-arms: cannot parse '{s}'")))
            })
            .collect::<Result<_, _>>()?;
        session = session.with_extra_arms(arms);
    }
    if let Some(raw) = args.get("session-drift") {
        session = session.with_drift(parse_drift(raw)?);
    }
    let mut config = ServeConfig::default()
        .with_addr(args.get("addr").unwrap_or("127.0.0.1:0"))
        .with_queue_capacity(args.get_or("queue", 256usize)?)
        .with_batch_max(args.get_or("batch-max", 16usize)?)
        .with_batch_wait(Duration::from_millis(args.get_or("batch-wait-ms", 2u64)?))
        .with_workers(args.get_or("workers", 2usize)?)
        .with_request_deadline(Duration::from_millis(args.get_or("deadline-ms", 5000u64)?))
        .with_session_config(session);
    if let Some(dir) = args.get("store") {
        config = config.with_store_dir(dir);
    }
    if let Some(ds_path) = args.get("session-retrain") {
        // Arm drift-triggered hot re-training: the base corpus plus the
        // serving model's own limb/config, so a re-train is a superset of
        // the original training run.
        let ds = load_dataset(Path::new(ds_path))?;
        let model = MotionClassifier::load_json(&model_path)?;
        config = config.with_session_retrain(RetrainSource {
            records: ds.records.clone(),
            limb: model.limb(),
            config: model.config().clone(),
        });
    }
    let server = Server::start_from_file(&model_path, config)?;
    let addr = server.local_addr();
    // Scripts race against daemon startup; the port file is their signal
    // that the listener is bound (and, with port 0, where it landed).
    if let Some(port_file) = args.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n"))?;
    }
    println!("serving {} on {addr}", model_path.display());
    eprintln!("send a 'shutdown' request to stop (kinemyo client --addr {addr} --op shutdown)");
    let stats = server.wait();
    println!(
        "server stopped: served={} shed={} failed={} expired={} batches={} reloads={} \
         p50={}us p99={}us",
        stats.served,
        stats.shed,
        stats.failed,
        stats.deadline_expired,
        stats.batches,
        stats.reloads,
        stats.p50_latency_us,
        stats.p99_latency_us
    );
    Ok(())
}

/// Parses `--session-drift RATIO:BASELINE:RECENT:MIN_WINDOWS:COOLDOWN`
/// (the same colon-spec idiom as `--replay`). Passing a spec arms the
/// detector; without the flag the daemon keeps [`DriftConfig::default`].
fn parse_drift(raw: &str) -> Result<DriftConfig, ArgError> {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() != 5 {
        return Err(ArgError(format!(
            "--session-drift needs RATIO:BASELINE:RECENT:MIN_WINDOWS:COOLDOWN, got '{raw}'"
        )));
    }
    let ratio: f64 = parts[0].parse().map_err(|_| {
        ArgError(format!(
            "--session-drift: cannot parse ratio '{}'",
            parts[0]
        ))
    })?;
    let field = |i: usize| -> Result<usize, ArgError> {
        parts[i]
            .parse()
            .map_err(|_| ArgError(format!("--session-drift: cannot parse '{}'", parts[i])))
    };
    Ok(DriftConfig {
        enabled: true,
        ratio,
        baseline: field(1)?,
        recent: field(2)?,
        min_windows: field(3)?,
        cooldown: field(4)?,
    })
}

/// `kinemyo client`.
pub fn client(args: &ParsedArgs) -> CliResult {
    args.check_allowed(&[
        "addr",
        "op",
        "dataset",
        "record",
        "timeout-ms",
        "replay",
        "policy",
        "arms",
    ])?;
    let addr = args.require("addr")?;
    let op = args.get("op").unwrap_or("health");
    let mut client = ServeClient::connect(addr)?;
    client.set_timeout(Some(Duration::from_millis(
        args.get_or("timeout-ms", 30_000u64)?,
    )))?;
    match op {
        "classify" | "classify-batch" => {
            let ds = load_dataset(Path::new(args.require("dataset")?))?;
            let only: Option<usize> = match args.get("record") {
                Some(raw) => Some(
                    raw.parse()
                        .map_err(|_| ArgError(format!("--record: cannot parse '{raw}'")))?,
                ),
                None => None,
            };
            let records: Vec<_> = ds
                .records
                .iter()
                .filter(|r| only.map_or(true, |id| r.id == id))
                .cloned()
                .collect();
            if records.is_empty() {
                return Err(Box::new(ArgError("no matching records".into())));
            }
            let items: Vec<BatchItem> = if op == "classify" {
                // One request per record: exercises the single-classify path.
                let mut items = Vec::with_capacity(records.len());
                for r in &records {
                    match client.classify(r) {
                        Ok(result) => items.push(BatchItem::Ok { result }),
                        Err(kinemyo_serve::CallOutcome::Rejected(resp)) => {
                            items.push(rejection_to_item(*resp))
                        }
                        Err(kinemyo_serve::CallOutcome::Transport(e)) => return Err(Box::new(e)),
                    }
                }
                items
            } else {
                client.classify_batch(&records).map_err(Box::new)?
            };
            let mut correct = 0usize;
            let mut answered = 0usize;
            for (r, item) in records.iter().zip(&items) {
                match item {
                    BatchItem::Ok { result } => {
                        answered += 1;
                        let ok = result.predicted == r.class;
                        correct += ok as usize;
                        println!(
                            "record {:>4}  truth={:<12} predicted={:<12} {}",
                            r.id,
                            r.class.to_string(),
                            result.predicted.to_string(),
                            if ok { "ok" } else { "WRONG" }
                        );
                    }
                    BatchItem::Overloaded => {
                        println!("record {:>4}  overloaded (shed by server)", r.id)
                    }
                    BatchItem::DeadlineExceeded { waited_ms } => {
                        println!("record {:>4}  deadline exceeded after {waited_ms} ms", r.id)
                    }
                    BatchItem::Failed { message } => {
                        println!("record {:>4}  failed: {message}", r.id)
                    }
                }
            }
            if answered > 0 {
                println!(
                    "{correct}/{answered} correct ({:.1}%)",
                    correct as f64 / answered as f64 * 100.0
                );
            }
            Ok(())
        }
        "insert" => {
            let ds = load_dataset(Path::new(args.require("dataset")?))?;
            let only: Option<usize> = match args.get("record") {
                Some(raw) => Some(
                    raw.parse()
                        .map_err(|_| ArgError(format!("--record: cannot parse '{raw}'")))?,
                ),
                None => None,
            };
            let mut inserted = 0usize;
            for r in ds
                .records
                .iter()
                .filter(|r| only.map_or(true, |id| r.id == id))
            {
                print_response(client.insert(r)?)?;
                inserted += 1;
            }
            if inserted == 0 {
                return Err(Box::new(ArgError("no matching records".into())));
            }
            Ok(())
        }
        "stream" => stream_replay(&mut client, args),
        "health" => print_response(client.health()?),
        "stats" => print_response(client.call(&kinemyo_serve::Request::Stats)?),
        "reload" => print_response(client.reload()?),
        "persist" => print_response(client.persist()?),
        "compact" => print_response(client.compact()?),
        "shutdown" => print_response(client.shutdown()?),
        other => Err(Box::new(ArgError(format!(
            "unknown op '{other}' (expected classify, classify-batch, insert, stream, \
             health, stats, reload, persist, compact or shutdown)"
        )))),
    }
}

/// `kinemyo client --op stream --replay <spec>`: expands the replay
/// corpus and drives one wire session per subject — open, push the
/// timestamped frames in chunks, print rolling windows as they land,
/// then fetch the verdict and close.
fn stream_replay(client: &mut ServeClient, args: &ParsedArgs) -> CliResult {
    let spec = ReplaySpec::parse(args.require("replay")?)?;
    let policy = match args.get("policy").unwrap_or("rebind") {
        "rebind" => ReloadPolicy::Rebind,
        "finish-old" => ReloadPolicy::FinishOld,
        other => {
            return Err(Box::new(ArgError(format!(
                "--policy must be rebind or finish-old, got '{other}'"
            ))))
        }
    };
    let arms: Option<Vec<usize>> = match args.get("arms") {
        Some(raw) => Some(
            raw.split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse()
                        .map_err(|_| ArgError(format!("--arms: cannot parse '{s}'")))
                })
                .collect::<Result<_, _>>()?,
        ),
        None => None,
    };
    let streams = generate_replay(&spec)?;
    for stream in &streams {
        let session = client
            .session_open(policy, arms.clone())
            .map_err(Box::new)?;
        let truth: Vec<String> = stream.classes.iter().map(|c| c.to_string()).collect();
        println!(
            "subject {} session {session}: {} frames, motions [{}]",
            stream.subject,
            stream.frames.len(),
            truth.join(", ")
        );
        let frames: Vec<WireFrame> = stream
            .frames
            .iter()
            .map(|f| WireFrame {
                mocap: f.mocap.clone(),
                pelvis: f.pelvis,
                emg: f.emg.clone(),
                t_ms: Some(f.t_ms),
            })
            .collect();
        let mut windows = 0usize;
        let mut rejected = 0usize;
        let mut retrains = 0usize;
        for chunk in frames.chunks(64) {
            match client.session_push(session, chunk)? {
                Response::SessionWindows {
                    windows: w,
                    rejected: r,
                    drift,
                    ..
                } => {
                    for win in &w {
                        println!(
                            "  window {:>3} (arm {:>2}f) cluster={:<3} margin={:.4}",
                            win.window, win.arm, win.cluster, win.margin
                        );
                    }
                    windows += w.len();
                    rejected += r.len();
                    if let Some(report) = drift {
                        println!(
                            "  drift at window {} retrained={} generation={}",
                            report.window, report.retrained, report.generation
                        );
                        retrains += report.retrained as usize;
                    }
                }
                other => return Err(Box::new(ArgError(format!("stream push failed: {other:?}")))),
            }
        }
        print_response(client.session_result(session)?)?;
        print_response(client.session_close(session)?)?;
        println!(
            "subject {}: {windows} windows, {rejected} rejected frames, {retrains} retrains",
            stream.subject
        );
    }
    Ok(())
}

/// Maps a whole-request rejection onto the equivalent per-item outcome
/// so single and batch classify print through the same code path.
fn rejection_to_item(resp: Response) -> BatchItem {
    match resp {
        Response::Overloaded { .. } => BatchItem::Overloaded,
        Response::DeadlineExceeded { waited_ms } => BatchItem::DeadlineExceeded { waited_ms },
        Response::ShuttingDown => BatchItem::Failed {
            message: "server is shutting down".into(),
        },
        other => BatchItem::Failed {
            message: format!("{other:?}"),
        },
    }
}

/// Prints a control-plane response as one JSON line (errors become
/// process failures so scripts can branch on the exit code).
fn print_response(resp: Response) -> CliResult {
    if let Response::Error { message } = &resp {
        return Err(Box::new(ArgError(format!("server error: {message}"))));
    }
    println!("{}", serde_json::to_string(&resp)?);
    Ok(())
}
