//! The `kinemyo` binary entry point: parse, dispatch, report.

use kinemyo_cli::args::parse;
use kinemyo_cli::commands::{run, USAGE};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse(&raw, &["confusion", "quick", "guard", "health"]) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
