//! # kinemyo-cli
//!
//! Command-line front end for the `kinemyo` pipeline: synthesize
//! datasets, train and persist classifiers, classify recordings, and run
//! the paper's evaluation protocol — all from the shell. Run
//! `kinemyo help` for the command reference.

#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x >= 0.0)` is the NaN-rejecting validation idiom used throughout this
// workspace: `x < 0.0` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod args;
pub mod cluster;
pub mod commands;
pub mod db;
pub mod serving;
