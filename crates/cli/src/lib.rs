//! # kinemyo-cli
//!
//! Command-line front end for the `kinemyo` pipeline: synthesize
//! datasets, train and persist classifiers, classify recordings, and run
//! the paper's evaluation protocol — all from the shell. Run
//! `kinemyo help` for the command reference.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;
