//! Fuzzy c-means clustering (Bezdek's alternating optimization).
//!
//! This is the clustering stage of the paper's pipeline (Eq. 4):
//! `[center, U, objFcn] = fcm(points, c)` over the combined EMG + motion
//! feature points. The implementation follows the standard formulation with
//! fuzzifier `m` (the paper fixes `m = 2`, "most widely used"), multi-restart
//! seeding, and explicit handling of points that coincide with a center.
//!
//! # Parallel execution and determinism
//!
//! Each alternating-optimization iteration is one fused pass over the data
//! that updates the membership rows *and* accumulates the center numerators,
//! denominators, and objective in fixed [`CHUNK_ROWS`]-row chunks. Chunk
//! boundaries never depend on the worker count and per-chunk partials are
//! reduced in chunk-index order on the calling thread, so the fitted model
//! is bitwise identical under [`ThreadPolicy::Sequential`] and any
//! `Fixed(n)`/`Auto` policy. Restarts run concurrently when threads remain,
//! and the winner is chosen by `(objective, restart index)` exactly as the
//! sequential first-strictly-better rule would.

use crate::error::{FuzzyError, Result};
use crate::thread::ThreadPolicy;
use kinemyo_linalg::vector::sq_euclidean;
use kinemyo_linalg::{ColMajorMatrix, Matrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rows per work chunk in the fused membership/center pass. Fixed (never
/// derived from the worker count) so the floating-point reduction order —
/// and therefore the fitted model — is identical for every [`ThreadPolicy`].
pub const CHUNK_ROWS: usize = 128;

/// Configuration for fuzzy c-means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcmConfig {
    /// Number of clusters `c` (the paper sweeps 5–40).
    pub clusters: usize,
    /// Fuzzifier `m > 1`; the paper chooses `m = 2` following \[11\].
    pub fuzzifier: f64,
    /// Maximum alternating-optimization iterations per restart.
    pub max_iters: usize,
    /// Convergence threshold on the relative objective decrease.
    pub tol: f64,
    /// Number of random restarts; the best (lowest-objective) run wins.
    pub restarts: usize,
    /// RNG seed for reproducible initialization.
    pub seed: u64,
    /// Worker-thread policy for the fused iteration pass and for running
    /// restarts concurrently. Results are identical for every policy.
    #[serde(default)]
    pub threads: ThreadPolicy,
}

impl FcmConfig {
    /// A config with the paper's defaults for a given cluster count.
    pub fn new(clusters: usize) -> Self {
        Self {
            clusters,
            fuzzifier: 2.0,
            max_iters: 300,
            tol: 1e-6,
            restarts: 3,
            seed: 0x1CDE_2007,
            threads: ThreadPolicy::default(),
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the fuzzifier `m`.
    pub fn with_fuzzifier(mut self, m: f64) -> Self {
        self.fuzzifier = m;
        self
    }

    /// Overrides the restart count.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Overrides the worker-thread policy.
    pub fn with_threads(mut self, threads: ThreadPolicy) -> Self {
        self.threads = threads;
        self
    }

    fn validate(&self, n_points: usize) -> Result<()> {
        if self.clusters == 0 {
            return Err(FuzzyError::InvalidConfig {
                reason: "cluster count must be >= 1".into(),
            });
        }
        if self.clusters > n_points {
            return Err(FuzzyError::InvalidData {
                reason: format!(
                    "cannot form {} clusters from {} points",
                    self.clusters, n_points
                ),
            });
        }
        if !(self.fuzzifier > 1.0) || !self.fuzzifier.is_finite() {
            return Err(FuzzyError::InvalidConfig {
                reason: format!("fuzzifier must be > 1, got {}", self.fuzzifier),
            });
        }
        if self.max_iters == 0 || self.restarts == 0 {
            return Err(FuzzyError::InvalidConfig {
                reason: "max_iters and restarts must be >= 1".into(),
            });
        }
        if !(self.tol > 0.0) {
            return Err(FuzzyError::InvalidConfig {
                reason: format!("tol must be positive, got {}", self.tol),
            });
        }
        if let Err(reason) = self.threads.validate() {
            return Err(FuzzyError::InvalidConfig { reason });
        }
        Ok(())
    }
}

/// A fitted fuzzy c-means model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FcmModel {
    /// Cluster centers, `c × d` (the paper's `center` output).
    pub centers: Matrix,
    /// Membership matrix `U`, `n × c`; each row sums to 1 (paper's `U`).
    pub memberships: Matrix,
    /// Objective value per iteration of the winning restart (paper's
    /// `objFcn` history). Entry `t` is `J_m` evaluated at the freshly
    /// updated memberships against the centers they were computed from,
    /// i.e. `J(U_{t+1}, V_t)` — a monotonically nonincreasing sequence.
    pub objective_history: Vec<f64>,
    /// Iterations used by the winning restart.
    pub iterations: usize,
    /// Fuzzifier the model was fitted with (needed to project new points).
    pub fuzzifier: f64,
}

impl FcmModel {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.rows()
    }

    /// Feature-space dimensionality.
    pub fn dim(&self) -> usize {
        self.centers.cols()
    }

    /// Final objective value.
    pub fn objective(&self) -> f64 {
        self.objective_history.last().copied().unwrap_or(f64::NAN)
    }

    /// Membership vector of a *new* point against the fitted centers —
    /// the paper's Eq. 9 query path:
    /// `u_j = 1 / Σ_k (‖x − v_j‖ / ‖x − v_k‖)^(2/(m−1))`.
    pub fn memberships_for(&self, point: &[f64]) -> Result<Vec<f64>> {
        if point.len() != self.dim() {
            return Err(FuzzyError::InvalidData {
                reason: format!(
                    "point has dimension {}, model expects {}",
                    point.len(),
                    self.dim()
                ),
            });
        }
        if let Some(i) = point.iter().position(|v| !v.is_finite()) {
            // A NaN distance would silently yield a NaN membership row and
            // poison every min/max feature vector built from it.
            return Err(FuzzyError::InvalidData {
                reason: format!("query point has non-finite value at dimension {i}"),
            });
        }
        Ok(membership_row(&self.centers, point, self.fuzzifier))
    }

    /// Allocation-free twin of [`memberships_for`](Self::memberships_for):
    /// writes the membership row into `u` and the squared center distances
    /// into `d2` (both length [`num_clusters`](Self::num_clusters)).
    ///
    /// Hot query paths — the per-window streaming projection, the serve
    /// daemon's batcher — call this in a loop with long-lived buffers
    /// instead of paying two `Vec` allocations per window.
    pub fn memberships_into(&self, point: &[f64], u: &mut [f64], d2: &mut [f64]) -> Result<()> {
        if point.len() != self.dim() {
            return Err(FuzzyError::InvalidData {
                reason: format!(
                    "point has dimension {}, model expects {}",
                    point.len(),
                    self.dim()
                ),
            });
        }
        if let Some(i) = point.iter().position(|v| !v.is_finite()) {
            return Err(FuzzyError::InvalidData {
                reason: format!("query point has non-finite value at dimension {i}"),
            });
        }
        let c = self.num_clusters();
        if u.len() != c || d2.len() != c {
            return Err(FuzzyError::InvalidData {
                reason: format!(
                    "output buffers have lengths {} and {}, model has {c} clusters",
                    u.len(),
                    d2.len()
                ),
            });
        }
        membership_row_into(&self.centers, point, self.fuzzifier, d2, u);
        Ok(())
    }

    /// Hard assignment: index of the max-membership cluster for a new point.
    pub fn predict(&self, point: &[f64]) -> Result<usize> {
        let u = self.memberships_for(point)?;
        Ok(argmax(&u))
    }
}

/// Index of the maximum element (first on ties). Panics on empty input.
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Computes the membership row of `point` against `centers` with fuzzifier
/// `m`. If the point coincides with one or more centers, membership is
/// split uniformly among the coincident centers (the standard degenerate-
/// case rule).
pub(crate) fn membership_row(centers: &Matrix, point: &[f64], m: f64) -> Vec<f64> {
    let c = centers.rows();
    let mut d2 = vec![0.0; c];
    let mut u = vec![0.0; c];
    membership_row_into(centers, point, m, &mut d2, &mut u);
    u
}

/// Allocation-free core of [`membership_row`]: fills `d2` with the squared
/// distances to each center and `u` with the membership row. `d2` is left
/// intact so callers can reuse it for the objective.
fn membership_row_into(centers: &Matrix, point: &[f64], m: f64, d2: &mut [f64], u: &mut [f64]) {
    for (k, d) in d2.iter_mut().enumerate() {
        *d = sq_euclidean(centers.row(k), point);
    }
    memberships_from_d2(m, d2, u);
}

/// Column-major twin of [`membership_row_into`], the training-loop kernel.
///
/// `centers_cm` holds the `c × d` centers with each feature dimension as
/// one contiguous length-`c` column. The distance loop runs dims-outer /
/// clusters-inner, streaming one contiguous column per dimension — the
/// inner loop is a branch-free multiply–add chain over adjacent memory,
/// which autovectorizes where the row-major kernel's `c` strided row
/// walks cannot.
///
/// Bitwise identity with the row-major kernel is load-bearing (training
/// memberships must equal Eq. 9 re-projections of the same points exactly):
/// the loop interchange feeds each `d2[k]` accumulator the *same addend
/// sequence in the same dimension-ascending order* as
/// `sq_euclidean(centers.row(k), point)`, so every partial sum — and
/// therefore the result — carries identical bits.
fn membership_row_into_cm(
    centers_cm: &ColMajorMatrix,
    point: &[f64],
    m: f64,
    d2: &mut [f64],
    u: &mut [f64],
) {
    d2.fill(0.0);
    for (t, &xt) in point.iter().enumerate() {
        let col = centers_cm.col(t);
        for (dk, &ckt) in d2.iter_mut().zip(col) {
            let diff = ckt - xt;
            *dk += diff * diff;
        }
    }
    memberships_from_d2(m, d2, u);
}

/// Shared membership normalization over precomputed squared distances.
fn memberships_from_d2(m: f64, d2: &[f64], u: &mut [f64]) {
    // Degenerate case: coincident with one or more centers.
    let zero_hits = d2.iter().filter(|&&d| d == 0.0).count();
    if zero_hits > 0 {
        let share = 1.0 / zero_hits as f64;
        for (uk, &dk) in u.iter_mut().zip(d2) {
            *uk = if dk == 0.0 { share } else { 0.0 };
        }
        return;
    }
    let exponent = 1.0 / (m - 1.0);
    // u_i = 1 / Σ_j (d_i / d_j)^(1/(m-1)) over squared distances
    //     = d_i^(-e) / Σ_j d_j^(-e)
    let mut total = 0.0;
    for (uk, &dk) in u.iter_mut().zip(d2.iter()) {
        *uk = dk.powf(-exponent);
        total += *uk;
    }
    for uk in u.iter_mut() {
        *uk /= total;
    }
}

/// `u^m`, with the `m = 2` fast path (the paper's choice of fuzzifier).
#[inline]
fn pow_m(u: f64, m: f64) -> f64 {
    if m == 2.0 {
        u * u
    } else {
        u.powf(m)
    }
}

/// Fits fuzzy c-means to the rows of `data` (`n × d`).
///
/// This is the paper's Eq. 4: returns centers, the membership matrix `U`,
/// and the objective history.
///
/// ```
/// use kinemyo_fuzzy::{fcm_fit, FcmConfig};
/// use kinemyo_linalg::Matrix;
///
/// // Two obvious groups on a line.
/// let data = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![0.2],
///     vec![9.8], vec![9.9], vec![10.0],
/// ]).unwrap();
/// let model = fcm_fit(&data, &FcmConfig::new(2)).unwrap();
/// // Every membership row sums to 1, and the ends are crisply assigned.
/// let u = model.memberships_for(&[0.05]).unwrap();
/// assert!((u[0] + u[1] - 1.0).abs() < 1e-9);
/// assert!(u.iter().cloned().fold(0.0, f64::max) > 0.95);
/// ```
pub fn fit(data: &Matrix, config: &FcmConfig) -> Result<FcmModel> {
    let n = data.rows();
    let d = data.cols();
    config.validate(n)?;
    if d == 0 {
        return Err(FuzzyError::InvalidData {
            reason: "points have zero dimensions".into(),
        });
    }
    if data.has_non_finite() {
        return Err(FuzzyError::InvalidData {
            reason: "data contains NaN or infinite values".into(),
        });
    }

    let workers = config.threads.workers();
    let seeds: Vec<u64> = (0..config.restarts)
        .map(|restart| {
            config
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(restart as u64 + 1))
        })
        .collect();

    let results: Vec<Result<FcmModel>> = if workers <= 1 || config.restarts <= 1 {
        // All threads go to the inner fused pass.
        seeds
            .iter()
            .map(|&seed| fit_once(data, config, seed, workers))
            .collect()
    } else {
        // Split threads between concurrent restarts and the inner pass.
        // Any split yields the same model: each restart is independent and
        // the inner pass is itself thread-count invariant.
        let concurrent = config.restarts.min(workers);
        let inner = (workers / concurrent).max(1);
        let slots: Vec<Mutex<Option<Result<FcmModel>>>> =
            seeds.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..concurrent {
                scope.spawn(|| loop {
                    let r = next.fetch_add(1, Ordering::Relaxed);
                    if r >= seeds.len() {
                        break;
                    }
                    let result = fit_once(data, config, seeds[r], inner);
                    // A poisoned slot still holds the last written value;
                    // recover it rather than cascading the panic.
                    *slots[r].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .unwrap_or_else(|| {
                        Err(FuzzyError::NumericalFailure {
                            reason: "internal: a restart slot was never filled".into(),
                        })
                    })
            })
            .collect()
    };

    // First strictly-lower objective wins — identical to running the
    // restarts sequentially, regardless of completion order above.
    let mut best: Option<FcmModel> = None;
    for result in results {
        let model = result?;
        let better = match &best {
            None => true,
            Some(b) => model.objective() < b.objective(),
        };
        if better {
            best = Some(model);
        }
    }
    best.ok_or_else(|| FuzzyError::InvalidConfig {
        reason: "restarts must be >= 1".into(),
    })
}

/// Per-chunk partial results of one fused iteration pass.
struct ChunkPartial {
    /// `Σ_i u_ik^m` for each cluster `k`, over this chunk's rows.
    weights: Vec<f64>,
    /// `Σ_i u_ik^m x_i`, row-major `c × d`, over this chunk's rows.
    sums: Vec<f64>,
    /// `Σ_i Σ_k u_ik^m ‖x_i − v_k‖²` over this chunk's rows (objective
    /// contribution, evaluated against the pass's input centers).
    obj: f64,
}

/// Runs `process` over [`CHUNK_ROWS`]-row chunks of the membership matrix,
/// fanning chunks across up to `workers` threads in a fixed stride.
///
/// Chunk boundaries never depend on the worker count and the returned
/// per-chunk values are ordered by chunk index, so any reduction the
/// caller performs front-to-back gives the same floating-point result for
/// every [`ThreadPolicy`]. Both iteration passes — the fused
/// membership+center pass and the membership-only finalization — share
/// this scaffolding.
fn chunked_pass<T: Send>(
    memberships: &mut Matrix,
    c: usize,
    workers: usize,
    process: impl Fn(usize, &mut [f64]) -> T + Sync,
) -> Vec<T> {
    let u_chunks: Vec<&mut [f64]> = memberships
        .as_mut_slice()
        .chunks_mut(CHUNK_ROWS * c)
        .collect();
    let n_chunks = u_chunks.len();

    if workers <= 1 || n_chunks <= 1 {
        return u_chunks
            .into_iter()
            .enumerate()
            .map(|(i, u_rows)| process(i, u_rows))
            .collect();
    }

    // Strided static assignment: worker w takes chunks w, w+W, w+2W, …
    // Each worker returns (chunk index, value) pairs; the join below
    // re-orders them by index so the reduction is chunk-ordered.
    let w = workers.min(n_chunks);
    let mut per_worker: Vec<Vec<(usize, &mut [f64])>> = (0..w).map(|_| Vec::new()).collect();
    for (i, chunk) in u_chunks.into_iter().enumerate() {
        per_worker[i % w].push((i, chunk));
    }
    let mut values: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|chunks| {
                scope.spawn(|| {
                    chunks
                        .into_iter()
                        .map(|(i, u_rows)| (i, process(i, u_rows)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            // analyze: allow(panic-free-libs) re-raises a scoped worker's panic; no Result channel exists here
            for (i, value) in handle.join().expect("fcm worker panicked") {
                values[i] = Some(value);
            }
        }
    });
    values
        .into_iter()
        // analyze: allow(panic-free-libs) strided assignment covers every chunk index exactly once
        .map(|p| p.expect("every chunk processed exactly once"))
        .collect()
}

/// One fused pass over the data: recomputes every membership row from
/// `centers` (writing into `memberships`) and accumulates per-chunk center
/// numerators/denominators and objective partials.
///
/// The centers are mirrored into column-major storage once per pass
/// (`O(c·d)`, amortized over the `O(n·c·d)` sweep) so the inner distance
/// kernel streams contiguous memory; see [`membership_row_into_cm`] for
/// why this is bitwise identical to the row-major layout.
fn fused_pass(
    data: &Matrix,
    centers: &Matrix,
    memberships: &mut Matrix,
    m: f64,
    workers: usize,
) -> Vec<ChunkPartial> {
    let c = centers.rows();
    let centers_cm = centers.to_col_major();

    let process = |chunk_idx: usize, u_rows: &mut [f64]| -> ChunkPartial {
        let d = data.cols();
        let mut partial = ChunkPartial {
            weights: vec![0.0; c],
            sums: vec![0.0; c * d],
            obj: 0.0,
        };
        let mut d2 = vec![0.0; c];
        for (r, u) in u_rows.chunks_mut(c).enumerate() {
            let x = data.row(chunk_idx * CHUNK_ROWS + r);
            membership_row_into_cm(&centers_cm, x, m, &mut d2, u);
            for k in 0..c {
                let w = pow_m(u[k], m);
                partial.weights[k] += w;
                partial.obj += w * d2[k];
                for (t, &xv) in partial.sums[k * d..(k + 1) * d].iter_mut().zip(x) {
                    *t += w * xv;
                }
            }
        }
        partial
    };

    chunked_pass(memberships, c, workers, process)
}

/// Membership-only pass: recomputes every membership row from `centers`
/// without accumulating center numerators or the objective.
///
/// This is the post-convergence finalization. It used to run a full
/// [`fused_pass`] and throw the partials away — every row paid the
/// `u^m`-weighted center/objective accumulation (`O(c·d)` extra work and a
/// `c·d` scratch allocation per chunk) for values nobody read. The
/// distances each row needs were already in the pass's `d2` buffer, so
/// this variant just reuses those buffers and stops after the membership
/// normalization.
fn membership_pass(
    data: &Matrix,
    centers: &Matrix,
    memberships: &mut Matrix,
    m: f64,
    workers: usize,
) {
    let c = centers.rows();
    let centers_cm = centers.to_col_major();
    chunked_pass(memberships, c, workers, |chunk_idx, u_rows| {
        let mut d2 = vec![0.0; c];
        for (r, u) in u_rows.chunks_mut(c).enumerate() {
            let x = data.row(chunk_idx * CHUNK_ROWS + r);
            membership_row_into_cm(&centers_cm, x, m, &mut d2, u);
        }
    });
}

/// One restart of the alternating optimization, using up to `workers`
/// threads for the fused iteration pass.
fn fit_once(data: &Matrix, config: &FcmConfig, seed: u64, workers: usize) -> Result<FcmModel> {
    let n = data.rows();
    let d = data.cols();
    let c = config.clusters;
    let m = config.fuzzifier;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // --- k-means++-style center seeding -----------------------------------
    let mut centers = Matrix::zeros(c, d);
    let first = rng.random_range(0..n);
    centers.row_mut(0).copy_from_slice(data.row(first));
    let mut min_d2 = vec![f64::INFINITY; n];
    for k in 1..c {
        for (i, md) in min_d2.iter_mut().enumerate() {
            let dist = sq_euclidean(data.row(i), centers.row(k - 1));
            if dist < *md {
                *md = dist;
            }
        }
        let total: f64 = min_d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centers; pick randomly.
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centers.row_mut(k).copy_from_slice(data.row(chosen));
    }

    // --- Alternating optimization ------------------------------------------
    // Each iteration is ONE fused pass: update U from the current centers
    // and, in the same sweep, accumulate the next centers' numerators and
    // denominators plus the objective J_m = Σ_i Σ_k u_ik^m ‖x_i − v_k‖²
    // evaluated at (U_new, V_current). AO theory gives
    // J(U_{t+1}, V_t) ≤ J(U_t, V_t) ≤ J(U_t, V_{t-1}), so the recorded
    // history is still monotonically nonincreasing while each iteration
    // touches every point–center distance exactly once.
    let mut memberships = Matrix::zeros(n, c);
    let mut history = Vec::new();
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let partials = fused_pass(data, &centers, &mut memberships, m, workers);

        // Ordered (chunk-index) reduction: identical for any worker count.
        let mut weights = vec![0.0; c];
        let mut sums = vec![0.0; c * d];
        let mut obj = 0.0;
        for partial in &partials {
            for (w, &pw) in weights.iter_mut().zip(&partial.weights) {
                *w += pw;
            }
            for (s, &ps) in sums.iter_mut().zip(&partial.sums) {
                *s += ps;
            }
            obj += partial.obj;
        }

        // Update centers from the reduced sums: v_k = Σ u^m x / Σ u^m.
        for (k, &weight) in weights.iter().enumerate() {
            let row = centers.row_mut(k);
            if weight > 0.0 {
                for (v, &s) in row.iter_mut().zip(&sums[k * d..(k + 1) * d]) {
                    *v = s / weight;
                }
            } else {
                // Empty cluster: re-seed it at a random data point. The RNG
                // stays on this thread, so draws are in cluster order and
                // independent of the worker count.
                let idx = rng.random_range(0..n);
                row.copy_from_slice(data.row(idx));
            }
        }

        if !obj.is_finite() {
            return Err(FuzzyError::NumericalFailure {
                reason: format!("objective became non-finite at iteration {iter}"),
            });
        }
        let converged = match history.last() {
            Some(&prev) => {
                let prev: f64 = prev;
                (prev - obj).abs() <= config.tol * prev.max(1e-12)
            }
            None => false,
        };
        history.push(obj);
        if converged {
            break;
        }
    }

    // Make U consistent with the *final* centers (the loop updates U before
    // centers, so the stored rows would otherwise lag half an iteration —
    // and Eq. 9 projections of training points must match their U rows).
    // Only the memberships are needed here: the fused pass's center/objective
    // partials would be computed and discarded.
    membership_pass(data, &centers, &mut memberships, m, workers);

    Ok(FcmModel {
        centers,
        memberships,
        objective_history: history,
        iterations,
        fuzzifier: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs, deterministic.
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut s = 42u64;
        let mut rand01 = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for &(cx, cy) in &centers {
            for _ in 0..30 {
                rows.push(vec![cx + rand01() - 0.5, cy + rand01() - 0.5]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn memberships_rows_sum_to_one() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3)).unwrap();
        for i in 0..data.rows() {
            let sum: f64 = model.memberships.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            for &u in model.memberships.row(i) {
                assert!((0.0..=1.0 + 1e-12).contains(&u));
            }
        }
    }

    #[test]
    fn finds_blob_centers() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3)).unwrap();
        // Each true center should be within 1.0 of some fitted center.
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            let best = (0..3)
                .map(|k| sq_euclidean(model.centers.row(k), &[cx, cy]))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 1.0, "no center near ({cx},{cy}): {best}");
        }
    }

    #[test]
    fn objective_is_monotonically_nonincreasing() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(4)).unwrap();
        for w in model.objective_history.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-9),
                "objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let cfg = FcmConfig::new(3).with_seed(7);
        let m1 = fit(&data, &cfg).unwrap();
        let m2 = fit(&data, &cfg).unwrap();
        assert!(m1.centers.approx_eq(&m2.centers, 0.0));
        assert!(m1.memberships.approx_eq(&m2.memberships, 0.0));
    }

    #[test]
    fn blob_points_have_dominant_membership() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3)).unwrap();
        let mut dominant = 0;
        for i in 0..data.rows() {
            let row = model.memberships.row(i);
            if row.iter().cloned().fold(0.0, f64::max) > 0.8 {
                dominant += 1;
            }
        }
        // Well-separated blobs: almost every point is confidently assigned.
        assert!(dominant > 80, "only {dominant}/90 dominant");
    }

    #[test]
    fn membership_for_new_point_matches_training_formula() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3)).unwrap();
        // A training point re-projected through Eq. 9 should match its U row.
        let u_train = model.memberships.row(5).to_vec();
        let u_query = model.memberships_for(data.row(5)).unwrap();
        for (a, b) in u_train.iter().zip(&u_query) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn coincident_point_gets_full_membership() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3)).unwrap();
        let center0: Vec<f64> = model.centers.row(0).to_vec();
        let u = model.memberships_for(&center0).unwrap();
        assert!((u[0] - 1.0).abs() < 1e-12);
        assert!(u[1].abs() < 1e-12 && u[2].abs() < 1e-12);
    }

    #[test]
    fn predict_assigns_to_nearest_center_for_m2() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3)).unwrap();
        let far_point = [10.0, 0.3];
        let k = model.predict(&far_point).unwrap();
        // The predicted cluster must be the closest center.
        let dists: Vec<f64> = (0..3)
            .map(|i| sq_euclidean(model.centers.row(i), &far_point))
            .collect();
        assert_eq!(k, argmax(&dists.iter().map(|d| -d).collect::<Vec<_>>()));
    }

    #[test]
    fn fuzzifier_controls_softness() {
        let data = blobs();
        let crisp = fit(&data, &FcmConfig::new(3).with_fuzzifier(1.5)).unwrap();
        let soft = fit(&data, &FcmConfig::new(3).with_fuzzifier(4.0)).unwrap();
        // Average max-membership should be higher for the crisper model.
        let avg_max = |m: &FcmModel| {
            let n = m.memberships.rows();
            (0..n)
                .map(|i| m.memberships.row(i).iter().cloned().fold(0.0, f64::max))
                .sum::<f64>()
                / n as f64
        };
        assert!(avg_max(&crisp) > avg_max(&soft) + 0.05);
    }

    #[test]
    fn config_validation() {
        let data = blobs();
        assert!(fit(
            &data,
            &FcmConfig {
                clusters: 0,
                ..FcmConfig::new(1)
            }
        )
        .is_err());
        assert!(fit(&data, &FcmConfig::new(1000)).is_err()); // more clusters than points
        assert!(fit(&data, &FcmConfig::new(3).with_fuzzifier(1.0)).is_err());
        assert!(fit(&data, &FcmConfig::new(3).with_fuzzifier(f64::NAN)).is_err());
        let mut cfg = FcmConfig::new(3);
        cfg.max_iters = 0;
        assert!(fit(&data, &cfg).is_err());
        let mut cfg2 = FcmConfig::new(3);
        cfg2.tol = 0.0;
        assert!(fit(&data, &cfg2).is_err());
        let mut cfg3 = FcmConfig::new(3);
        cfg3.restarts = 0;
        assert!(fit(&data, &cfg3).is_err());
    }

    #[test]
    fn rejects_non_finite_data() {
        let mut data = blobs();
        data[(0, 0)] = f64::NAN;
        assert!(fit(&data, &FcmConfig::new(3)).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch_in_query() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3)).unwrap();
        assert!(model.memberships_for(&[1.0]).is_err());
    }

    #[test]
    fn rejects_non_finite_query_point() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3)).unwrap();
        assert!(model.memberships_for(&[f64::NAN, 1.0]).is_err());
        assert!(model.memberships_for(&[1.0, f64::INFINITY]).is_err());
        assert!(model.predict(&[f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn single_cluster_everything_belongs() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(1)).unwrap();
        for i in 0..data.rows() {
            assert!((model.memberships[(i, 0)] - 1.0).abs() < 1e-9);
        }
        // Center is the centroid of all points.
        let mean = data.col_means().unwrap();
        for (a, b) in model.centers.row(0).iter().zip(mean.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let rows: Vec<Vec<f64>> = (0..20).map(|_| vec![1.0, 2.0]).collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let model = fit(&data, &FcmConfig::new(2)).unwrap();
        assert!(!model.centers.has_non_finite());
        assert!(!model.memberships.has_non_finite());
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
        assert_eq!(argmax(&[2.0, 2.0]), 0); // first on ties
    }

    #[test]
    #[should_panic(expected = "argmax of empty slice")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn more_restarts_never_worse() {
        let data = blobs();
        let one = fit(&data, &FcmConfig::new(5).with_restarts(1)).unwrap();
        let five = fit(&data, &FcmConfig::new(5).with_restarts(5)).unwrap();
        assert!(five.objective() <= one.objective() + 1e-9);
    }

    /// Blobs dataset big enough to span several `CHUNK_ROWS` chunks, so the
    /// parallel path genuinely exercises multi-chunk reduction.
    fn big_blobs() -> Matrix {
        let mut rows = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)];
        let mut s = 7u64;
        let mut rand01 = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for &(cx, cy) in &centers {
            for _ in 0..(CHUNK_ROWS) {
                rows.push(vec![cx + rand01() - 0.5, cy + rand01() - 0.5]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn thread_count_invariant_bitwise() {
        let data = big_blobs();
        let base = FcmConfig::new(4).with_seed(11).with_restarts(2);
        let seq = fit(&data, &base.clone().with_threads(ThreadPolicy::Sequential)).unwrap();
        for n in [2usize, 3, 4, 7] {
            let par = fit(&data, &base.clone().with_threads(ThreadPolicy::Fixed(n))).unwrap();
            assert!(
                seq.centers.approx_eq(&par.centers, 0.0),
                "centers differ at {n} threads"
            );
            assert!(
                seq.memberships.approx_eq(&par.memberships, 0.0),
                "memberships differ at {n} threads"
            );
            assert_eq!(
                seq.objective_history, par.objective_history,
                "objective history differs at {n} threads"
            );
            assert_eq!(seq.iterations, par.iterations);
        }
    }

    #[test]
    fn auto_policy_matches_sequential() {
        let data = big_blobs();
        let base = FcmConfig::new(3).with_seed(5);
        let seq = fit(&data, &base.clone().with_threads(ThreadPolicy::Sequential)).unwrap();
        let auto = fit(&data, &base.with_threads(ThreadPolicy::Auto)).unwrap();
        assert!(seq.centers.approx_eq(&auto.centers, 0.0));
        assert!(seq.memberships.approx_eq(&auto.memberships, 0.0));
    }

    #[test]
    fn concurrent_restarts_pick_same_winner() {
        let data = big_blobs();
        // More restarts than threads forces the work-stealing restart loop.
        let base = FcmConfig::new(5).with_seed(3).with_restarts(6);
        let seq = fit(&data, &base.clone().with_threads(ThreadPolicy::Sequential)).unwrap();
        let par = fit(&data, &base.with_threads(ThreadPolicy::Fixed(4))).unwrap();
        assert_eq!(seq.objective(), par.objective());
        assert!(seq.centers.approx_eq(&par.centers, 0.0));
    }

    #[test]
    fn fixed_zero_threads_rejected() {
        let data = blobs();
        let cfg = FcmConfig::new(3).with_threads(ThreadPolicy::Fixed(0));
        assert!(fit(&data, &cfg).is_err());
    }

    /// The stored training memberships must be *bitwise* what
    /// `memberships_for` produces for each training point: the final
    /// membership-only pass and the query path share the column-major
    /// distance kernel, so training U and Eq. 9 re-projections cannot drift
    /// apart even in the last ulp.
    #[test]
    fn training_memberships_match_query_projection_bitwise() {
        let data = big_blobs();
        for threads in [ThreadPolicy::Sequential, ThreadPolicy::Fixed(4)] {
            let cfg = FcmConfig::new(4).with_seed(9).with_threads(threads);
            let model = fit(&data, &cfg).unwrap();
            let mut u = vec![0.0; model.num_clusters()];
            let mut d2 = vec![0.0; model.num_clusters()];
            for i in 0..data.rows() {
                model
                    .memberships_into(data.row(i), &mut u, &mut d2)
                    .unwrap();
                for (k, (&stored, &fresh)) in model.memberships.row(i).iter().zip(&u).enumerate() {
                    assert_eq!(
                        stored.to_bits(),
                        fresh.to_bits(),
                        "row {i} cluster {k}: stored {stored:e} vs projected {fresh:e}"
                    );
                }
            }
        }
    }

    /// `memberships_into` writes the same values as the allocating
    /// `memberships_for` and rejects mis-sized scratch buffers.
    #[test]
    fn memberships_into_matches_allocating_api() {
        let data = blobs();
        let model = fit(&data, &FcmConfig::new(3).with_seed(2)).unwrap();
        let c = model.num_clusters();
        let mut u = vec![0.0; c];
        let mut d2 = vec![0.0; c];
        let point = data.row(5);
        model.memberships_into(point, &mut u, &mut d2).unwrap();
        let alloc = model.memberships_for(point).unwrap();
        assert_eq!(u, alloc);
        let mut short = vec![0.0; c - 1];
        assert!(model.memberships_into(point, &mut short, &mut d2).is_err());
        assert!(model.memberships_into(point, &mut u, &mut short).is_err());
    }
}
