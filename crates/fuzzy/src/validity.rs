//! Cluster-validity indices for choosing the number of clusters.
//!
//! The paper sweeps the cluster count from 5 to 40 and observes the effect
//! on classification (Sec. 6); these indices give a principled way to pick
//! `c` without running the full classification loop — a natural extension
//! a production user would want.

use crate::error::{FuzzyError, Result};
use crate::fcm::FcmModel;
use kinemyo_linalg::vector::sq_euclidean;
use kinemyo_linalg::Matrix;

/// Bezdek's partition coefficient: `PC = (1/n) Σᵢ Σₖ u²ᵢₖ`, in `[1/c, 1]`.
/// Higher is crisper.
pub fn partition_coefficient(model: &FcmModel) -> Result<f64> {
    let u = &model.memberships;
    let n = u.rows();
    if n == 0 {
        return Err(FuzzyError::InvalidData {
            reason: "model has no membership rows".into(),
        });
    }
    let mut acc = 0.0;
    for i in 0..n {
        for &v in u.row(i) {
            acc += v * v;
        }
    }
    Ok(acc / n as f64)
}

/// Partition entropy: `PE = −(1/n) Σᵢ Σₖ uᵢₖ ln uᵢₖ`, in `[0, ln c]`.
/// Lower is crisper.
pub fn partition_entropy(model: &FcmModel) -> Result<f64> {
    let u = &model.memberships;
    let n = u.rows();
    if n == 0 {
        return Err(FuzzyError::InvalidData {
            reason: "model has no membership rows".into(),
        });
    }
    let mut acc = 0.0;
    for i in 0..n {
        for &v in u.row(i) {
            if v > 0.0 {
                acc -= v * v.ln();
            }
        }
    }
    Ok(acc / n as f64)
}

/// Xie–Beni index: compactness over separation,
/// `XB = Σᵢₖ u²ᵢₖ ‖xᵢ − vₖ‖² / (n · minⱼ≠ₗ ‖vⱼ − vₗ‖²)`. Lower is better.
pub fn xie_beni(model: &FcmModel, data: &Matrix) -> Result<f64> {
    let u = &model.memberships;
    let n = data.rows();
    let c = model.num_clusters();
    if n == 0 || u.rows() != n {
        return Err(FuzzyError::InvalidData {
            reason: format!("data rows ({n}) must match membership rows ({})", u.rows()),
        });
    }
    if c < 2 {
        return Err(FuzzyError::InvalidConfig {
            reason: "Xie-Beni requires at least 2 clusters".into(),
        });
    }
    let mut numerator = 0.0;
    for i in 0..n {
        for k in 0..c {
            let uik = u[(i, k)];
            numerator += uik * uik * sq_euclidean(data.row(i), model.centers.row(k));
        }
    }
    let mut min_sep = f64::INFINITY;
    for j in 0..c {
        for l in (j + 1)..c {
            let d = sq_euclidean(model.centers.row(j), model.centers.row(l));
            if d < min_sep {
                min_sep = d;
            }
        }
    }
    if min_sep <= 0.0 {
        return Err(FuzzyError::NumericalFailure {
            reason: "coincident cluster centers (zero separation)".into(),
        });
    }
    Ok(numerator / (n as f64 * min_sep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcm::{fit, FcmConfig};

    fn blobs(sep: f64) -> Matrix {
        let mut rows = Vec::new();
        let mut s = 7u64;
        let mut rand01 = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for &(cx, cy) in &[(0.0, 0.0), (sep, 0.0)] {
            for _ in 0..25 {
                rows.push(vec![cx + rand01() - 0.5, cy + rand01() - 0.5]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn pc_in_range_and_higher_for_separated_blobs() {
        let tight = blobs(20.0);
        let loose = blobs(1.0);
        let m_tight = fit(&tight, &FcmConfig::new(2)).unwrap();
        let m_loose = fit(&loose, &FcmConfig::new(2)).unwrap();
        let pc_tight = partition_coefficient(&m_tight).unwrap();
        let pc_loose = partition_coefficient(&m_loose).unwrap();
        assert!(pc_tight > 0.5 && pc_tight <= 1.0 + 1e-12);
        assert!(pc_loose >= 0.5 - 1e-12);
        assert!(pc_tight > pc_loose, "{pc_tight} vs {pc_loose}");
    }

    #[test]
    fn pe_lower_for_crisper_partitions() {
        let tight = blobs(20.0);
        let loose = blobs(1.0);
        let m_tight = fit(&tight, &FcmConfig::new(2)).unwrap();
        let m_loose = fit(&loose, &FcmConfig::new(2)).unwrap();
        let pe_tight = partition_entropy(&m_tight).unwrap();
        let pe_loose = partition_entropy(&m_loose).unwrap();
        assert!(pe_tight >= 0.0);
        assert!(pe_tight < pe_loose, "{pe_tight} vs {pe_loose}");
        // Bounded by ln(c).
        assert!(pe_loose <= 2.0_f64.ln() + 1e-9);
    }

    #[test]
    fn xie_beni_prefers_well_separated() {
        let tight = blobs(20.0);
        let loose = blobs(2.0);
        let m_tight = fit(&tight, &FcmConfig::new(2)).unwrap();
        let m_loose = fit(&loose, &FcmConfig::new(2)).unwrap();
        let xb_tight = xie_beni(&m_tight, &tight).unwrap();
        let xb_loose = xie_beni(&m_loose, &loose).unwrap();
        assert!(xb_tight < xb_loose, "{xb_tight} vs {xb_loose}");
    }

    #[test]
    fn xie_beni_rejects_single_cluster() {
        let data = blobs(5.0);
        let m = fit(&data, &FcmConfig::new(1)).unwrap();
        assert!(xie_beni(&m, &data).is_err());
    }

    #[test]
    fn xie_beni_rejects_row_mismatch() {
        let data = blobs(5.0);
        let m = fit(&data, &FcmConfig::new(2)).unwrap();
        let wrong = Matrix::zeros(3, 2);
        assert!(xie_beni(&m, &wrong).is_err());
    }
}
