//! Hard k-means (Lloyd's algorithm) — the crisp baseline for the
//! fuzzy-vs-hard ablation.
//!
//! The paper argues fuzzy clustering suits the non-stationary EMG better
//! than traditional (hard) clustering (Sec. 1, Sec. 7). To *test* that
//! claim rather than assume it, the ablation benches swap FCM for this
//! k-means and compare classification quality.

use crate::error::{FuzzyError, Result};
use kinemyo_linalg::vector::sq_euclidean;
use kinemyo_linalg::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for k-means.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// Defaults for `clusters` clusters.
    pub fn new(clusters: usize) -> Self {
        Self {
            clusters,
            max_iters: 300,
            seed: 0x1CDE_2007,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Cluster centers, `c × d`.
    pub centers: Matrix,
    /// Hard label per input point.
    pub labels: Vec<usize>,
    /// Sum of squared distances to assigned centers.
    pub inertia: f64,
    /// Iterations performed.
    pub iterations: usize,
}

impl KMeansModel {
    /// Assigns a new point to its nearest center.
    pub fn predict(&self, point: &[f64]) -> Result<usize> {
        if point.len() != self.centers.cols() {
            return Err(FuzzyError::InvalidData {
                reason: format!(
                    "point has dimension {}, model expects {}",
                    point.len(),
                    self.centers.cols()
                ),
            });
        }
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for k in 0..self.centers.rows() {
            let d = sq_euclidean(self.centers.row(k), point);
            if d < best_d {
                best_d = d;
                best = k;
            }
        }
        Ok(best)
    }
}

/// Fits k-means to the rows of `data`.
pub fn fit(data: &Matrix, config: &KMeansConfig) -> Result<KMeansModel> {
    let n = data.rows();
    let d = data.cols();
    if config.clusters == 0 {
        return Err(FuzzyError::InvalidConfig {
            reason: "cluster count must be >= 1".into(),
        });
    }
    if config.clusters > n {
        return Err(FuzzyError::InvalidData {
            reason: format!("cannot form {} clusters from {n} points", config.clusters),
        });
    }
    if data.has_non_finite() {
        return Err(FuzzyError::InvalidData {
            reason: "data contains NaN or infinite values".into(),
        });
    }
    let c = config.clusters;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // k-means++ seeding.
    let mut centers = Matrix::zeros(c, d);
    centers
        .row_mut(0)
        .copy_from_slice(data.row(rng.random_range(0..n)));
    let mut min_d2 = vec![f64::INFINITY; n];
    for k in 1..c {
        for (i, md) in min_d2.iter_mut().enumerate() {
            let dist = sq_euclidean(data.row(i), centers.row(k - 1));
            if dist < *md {
                *md = dist;
            }
        }
        let total: f64 = min_d2.iter().sum();
        let chosen = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centers.row_mut(k).copy_from_slice(data.row(chosen));
    }

    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, label) in labels.iter_mut().enumerate() {
            let mut best = *label;
            let mut best_d = f64::INFINITY;
            for k in 0..c {
                let dist = sq_euclidean(data.row(i), centers.row(k));
                if dist < best_d {
                    best_d = dist;
                    best = k;
                }
            }
            if best != *label {
                *label = best;
                changed = true;
            }
        }
        // Update step.
        let mut counts = vec![0usize; c];
        let mut sums = Matrix::zeros(c, d);
        for (i, &label) in labels.iter().enumerate() {
            counts[label] += 1;
            let target = sums.row_mut(label);
            for (t, &x) in target.iter_mut().zip(data.row(i)) {
                *t += x;
            }
        }
        for (k, &count) in counts.iter().enumerate() {
            if count > 0 {
                let row = sums.row_mut(k);
                for v in row.iter_mut() {
                    *v /= count as f64;
                }
                centers.row_mut(k).copy_from_slice(sums.row(k));
            } else {
                // Empty cluster: re-seed at the point farthest from its center.
                let (far_idx, _) = (0..n)
                    .map(|i| (i, sq_euclidean(data.row(i), centers.row(labels[i]))))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    // analyze: allow(panic-free-libs) c <= n is validated, so 0..n is non-empty
                    .expect("n >= 1");
                centers.row_mut(k).copy_from_slice(data.row(far_idx));
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = (0..n)
        .map(|i| sq_euclidean(data.row(i), centers.row(labels[i])))
        .sum();
    Ok(KMeansModel {
        centers,
        labels,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let mut s = 11u64;
        let mut rand01 = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for &(cx, cy) in &[(0.0, 0.0), (8.0, 8.0)] {
            for _ in 0..20 {
                rows.push(vec![cx + rand01(), cy + rand01()]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let data = blobs();
        let m = fit(&data, &KMeansConfig::new(2)).unwrap();
        // First 20 points share a label; last 20 share the other.
        let first = m.labels[0];
        assert!(m.labels[..20].iter().all(|&l| l == first));
        assert!(m.labels[20..].iter().all(|&l| l != first));
    }

    #[test]
    fn inertia_is_small_for_separated_blobs() {
        let data = blobs();
        let m = fit(&data, &KMeansConfig::new(2)).unwrap();
        // Each blob is a unit square of 20 points: inertia well below the
        // cross-blob distance scale.
        assert!(m.inertia < 20.0, "inertia {}", m.inertia);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let data = blobs();
        let m = fit(&data, &KMeansConfig::new(2)).unwrap();
        for i in 0..data.rows() {
            assert_eq!(m.predict(data.row(i)).unwrap(), m.labels[i]);
        }
        assert!(m.predict(&[1.0]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let m1 = fit(&data, &KMeansConfig::new(2)).unwrap();
        let m2 = fit(&data, &KMeansConfig::new(2)).unwrap();
        assert!(m1.centers.approx_eq(&m2.centers, 0.0));
        assert_eq!(m1.labels, m2.labels);
    }

    #[test]
    fn validation_errors() {
        let data = blobs();
        assert!(fit(&data, &KMeansConfig::new(0)).is_err());
        assert!(fit(&data, &KMeansConfig::new(1000)).is_err());
        let mut bad = blobs();
        bad[(0, 0)] = f64::INFINITY;
        assert!(fit(&bad, &KMeansConfig::new(2)).is_err());
    }

    #[test]
    fn nan_input_is_rejected_not_reordered() {
        // Regression for the old `partial_cmp(..).unwrap()` re-seed
        // comparator: NaN must surface as a typed error up front, never
        // reach the comparator, and never panic.
        let mut bad = blobs();
        bad[(3, 1)] = f64::NAN;
        assert!(matches!(
            fit(&bad, &KMeansConfig::new(2)),
            Err(FuzzyError::InvalidData { .. })
        ));
    }

    #[test]
    fn degenerate_duplicates_exercise_reseed_path() {
        // Every point identical: a cluster must go empty, forcing the
        // farthest-point re-seed whose comparator sees all-equal
        // distances. Must converge without panicking.
        let data = Matrix::from_fn(8, 2, |_, _| 2.0);
        let m = fit(&data, &KMeansConfig::new(2)).unwrap();
        assert_eq!(m.labels.len(), 8);
        assert_eq!(m.inertia, 0.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 1.0]]).unwrap();
        let m = fit(&data, &KMeansConfig::new(3)).unwrap();
        assert!(m.inertia < 1e-18);
    }
}
