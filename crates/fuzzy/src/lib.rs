//! # kinemyo-fuzzy
//!
//! Hand-implemented fuzzy c-means clustering for the `kinemyo` workspace —
//! the clustering stage of the paper's feature pipeline (Eq. 4, Eq. 9):
//!
//! * [`fcm`] — Bezdek alternating optimization with k-means++ seeding,
//!   multi-restart, degenerate-point handling, and held-out-point
//!   membership projection ([`fcm::FcmModel::memberships_for`], the paper's
//!   Eq. 9 query path);
//! * [`gk`] — Gustafson–Kessel clustering (FCM with an adaptive
//!   per-cluster metric), an extension for elongated window-point clouds;
//! * [`kmeans`] — the hard-clustering baseline for the fuzzy-vs-hard
//!   ablation;
//! * [`validity`] — partition coefficient/entropy and Xie–Beni indices for
//!   choosing the cluster count the paper sweeps empirically.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` is the NaN-rejecting validation idiom used throughout this
// workspace: `x <= 0.0` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod error;
pub mod fcm;
pub mod gk;
pub mod kmeans;
pub mod thread;
pub mod validity;

pub use error::{FuzzyError, Result};
pub use fcm::{argmax, fit as fcm_fit, FcmConfig, FcmModel};
pub use gk::{fit as gk_fit, GkConfig, GkModel};
pub use kmeans::{fit as kmeans_fit, KMeansConfig, KMeansModel};
pub use thread::ThreadPolicy;

#[cfg(test)]
mod proptests {
    use crate::fcm::{fit, FcmConfig};
    use kinemyo_linalg::Matrix;
    use proptest::prelude::*;

    fn dataset() -> impl Strategy<Value = Matrix> {
        // n in 4..40 points, d in 1..5 dims, values bounded.
        (4usize..40, 1usize..5).prop_flat_map(|(n, d)| {
            proptest::collection::vec(-50.0..50.0f64, n * d)
                .prop_map(move |data| Matrix::from_vec(n, d, data).unwrap())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn membership_rows_always_sum_to_one(data in dataset(), c in 1usize..4) {
            prop_assume!(c <= data.rows());
            let cfg = FcmConfig { restarts: 1, max_iters: 50, ..FcmConfig::new(c) };
            let model = fit(&data, &cfg).unwrap();
            for i in 0..data.rows() {
                let sum: f64 = model.memberships.row(i).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "row {} sums to {}", i, sum);
                for &u in model.memberships.row(i) {
                    prop_assert!((-1e-9..=1.0 + 1e-9).contains(&u));
                }
            }
        }

        #[test]
        fn new_point_memberships_sum_to_one(data in dataset(), c in 2usize..4) {
            prop_assume!(c <= data.rows());
            let cfg = FcmConfig { restarts: 1, max_iters: 50, ..FcmConfig::new(c) };
            let model = fit(&data, &cfg).unwrap();
            let probe: Vec<f64> = (0..data.cols()).map(|i| i as f64 * 0.37 - 1.0).collect();
            let u = model.memberships_for(&probe).unwrap();
            let sum: f64 = u.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }

        #[test]
        fn objective_history_nonincreasing(data in dataset(), c in 1usize..4) {
            prop_assume!(c <= data.rows());
            let cfg = FcmConfig { restarts: 1, max_iters: 80, ..FcmConfig::new(c) };
            let model = fit(&data, &cfg).unwrap();
            for w in model.objective_history.windows(2) {
                prop_assert!(w[1] <= w[0] * (1.0 + 1e-7) + 1e-9,
                    "objective increased {} -> {}", w[0], w[1]);
            }
        }

        #[test]
        fn centers_stay_in_data_bounding_box(data in dataset(), c in 1usize..4) {
            prop_assume!(c <= data.rows());
            let cfg = FcmConfig { restarts: 1, max_iters: 50, ..FcmConfig::new(c) };
            let model = fit(&data, &cfg).unwrap();
            for dim in 0..data.cols() {
                let col = data.col(dim);
                let lo = col.as_slice().iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = col.as_slice().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for k in 0..c {
                    let v = model.centers[(k, dim)];
                    prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9,
                        "center[{},{}]={} outside [{}, {}]", k, dim, v, lo, hi);
                }
            }
        }
    }
}
