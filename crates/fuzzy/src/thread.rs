//! Thread-count policy for the parallel clustering and pipeline stages.
//!
//! Every parallel loop in the workspace decomposes its work into fixed-size
//! chunks and reduces partial results in chunk order, so the numerical
//! output is bitwise identical for every [`ThreadPolicy`] — the policy only
//! controls how many OS threads chew through the chunk list.

use serde::{Deserialize, Serialize};

/// How many worker threads a parallel stage may use.
///
/// Results are deterministic and identical across policies (see the module
/// docs); pick a policy purely on resource grounds. `Auto` is the default
/// everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ThreadPolicy {
    /// Run on the calling thread only; no worker threads are spawned.
    Sequential,
    /// One worker per available CPU core, as reported by the OS (falls
    /// back to 1 if the core count cannot be determined).
    #[default]
    Auto,
    /// Exactly this many worker threads. Must be `>= 1`; `Fixed(0)` is
    /// rejected by configuration validation.
    Fixed(usize),
}

impl ThreadPolicy {
    /// The number of worker threads this policy resolves to on the current
    /// machine. `Fixed(0)` resolves to 1 so an unvalidated config still
    /// cannot deadlock, but validation rejects it first.
    pub fn workers(&self) -> usize {
        match self {
            ThreadPolicy::Sequential => 1,
            ThreadPolicy::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ThreadPolicy::Fixed(n) => (*n).max(1),
        }
    }

    /// Validates the policy, rejecting `Fixed(0)`.
    pub fn validate(&self) -> std::result::Result<(), String> {
        match self {
            ThreadPolicy::Fixed(0) => {
                Err("ThreadPolicy::Fixed(0) is invalid; use at least 1 thread".into())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_worker() {
        assert_eq!(ThreadPolicy::Sequential.workers(), 1);
    }

    #[test]
    fn auto_is_at_least_one_worker() {
        assert!(ThreadPolicy::Auto.workers() >= 1);
    }

    #[test]
    fn fixed_resolves_to_itself() {
        assert_eq!(ThreadPolicy::Fixed(3).workers(), 3);
        assert_eq!(ThreadPolicy::Fixed(1).workers(), 1);
    }

    #[test]
    fn fixed_zero_rejected_but_resolves_safely() {
        assert!(ThreadPolicy::Fixed(0).validate().is_err());
        assert_eq!(ThreadPolicy::Fixed(0).workers(), 1);
        assert!(ThreadPolicy::Sequential.validate().is_ok());
        assert!(ThreadPolicy::Auto.validate().is_ok());
        assert!(ThreadPolicy::Fixed(8).validate().is_ok());
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(ThreadPolicy::default(), ThreadPolicy::Auto);
    }
}
