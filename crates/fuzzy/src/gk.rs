//! Gustafson–Kessel fuzzy clustering — FCM with an adaptive per-cluster
//! metric.
//!
//! Classic FCM measures distance with the identity metric, so it prefers
//! spherical clusters. Gustafson & Kessel replace `‖x − vᵢ‖²` with the
//! Mahalanobis-style form `(x − vᵢ)ᵀ Aᵢ (x − vᵢ)`, where
//! `Aᵢ = (ρᵢ · det Fᵢ)^(1/d) · Fᵢ⁻¹` adapts to each cluster's fuzzy
//! covariance `Fᵢ` under a fixed-volume constraint. Elongated window-point
//! clouds (e.g. the arc a wrist sweeps during a raise) are exactly the
//! shapes this handles better — making it a natural extension to the
//! paper's clustering stage.

use crate::error::{FuzzyError, Result};
use crate::fcm::argmax;
use kinemyo_linalg::qr::{determinant, inverse};
use kinemyo_linalg::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for Gustafson–Kessel clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct GkConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Fuzzifier `m > 1` (2 is customary).
    pub fuzzifier: f64,
    /// Maximum alternating-optimization iterations.
    pub max_iters: usize,
    /// Convergence threshold on the membership change (∞-norm).
    pub tol: f64,
    /// RNG seed for initialization.
    pub seed: u64,
    /// Covariance regularization: `F ← (1−γ)F + γ·scale·I` keeps the
    /// per-cluster covariances invertible when a cluster collapses onto a
    /// subspace (frequent for near-identical rest-pose windows).
    pub regularization: f64,
}

impl GkConfig {
    /// Defaults for `clusters` clusters.
    pub fn new(clusters: usize) -> Self {
        Self {
            clusters,
            fuzzifier: 2.0,
            max_iters: 100,
            tol: 1e-5,
            seed: 0x1CDE_2007,
            regularization: 1e-3,
        }
    }

    fn validate(&self, n: usize, d: usize) -> Result<()> {
        if self.clusters == 0 {
            return Err(FuzzyError::InvalidConfig {
                reason: "cluster count must be >= 1".into(),
            });
        }
        if self.clusters > n {
            return Err(FuzzyError::InvalidData {
                reason: format!("cannot form {} clusters from {n} points", self.clusters),
            });
        }
        if d == 0 {
            return Err(FuzzyError::InvalidData {
                reason: "points have zero dimensions".into(),
            });
        }
        if !(self.fuzzifier > 1.0) || !self.fuzzifier.is_finite() {
            return Err(FuzzyError::InvalidConfig {
                reason: format!("fuzzifier must be > 1, got {}", self.fuzzifier),
            });
        }
        if self.max_iters == 0 {
            return Err(FuzzyError::InvalidConfig {
                reason: "max_iters must be >= 1".into(),
            });
        }
        if !(0.0..1.0).contains(&self.regularization) {
            return Err(FuzzyError::InvalidConfig {
                reason: format!(
                    "regularization must be in [0, 1), got {}",
                    self.regularization
                ),
            });
        }
        Ok(())
    }
}

/// A fitted Gustafson–Kessel model.
#[derive(Debug, Clone)]
pub struct GkModel {
    /// Cluster centers, `c × d`.
    pub centers: Matrix,
    /// Membership matrix, `n × c` (rows sum to 1).
    pub memberships: Matrix,
    /// Norm-inducing matrix `Aᵢ` per cluster (`d × d` each).
    pub norm_matrices: Vec<Matrix>,
    /// Iterations used.
    pub iterations: usize,
    /// Fuzzifier the model was fitted with.
    pub fuzzifier: f64,
}

impl GkModel {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.rows()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.centers.cols()
    }

    /// Squared GK distance of `point` to cluster `i`.
    fn sq_distance(&self, point: &[f64], i: usize) -> f64 {
        let d = self.dim();
        let mut diff = vec![0.0; d];
        for (k, v) in diff.iter_mut().enumerate() {
            *v = point[k] - self.centers[(i, k)];
        }
        let a = &self.norm_matrices[i];
        let mut acc = 0.0;
        for r in 0..d {
            let mut row_dot = 0.0;
            for c in 0..d {
                row_dot += a[(r, c)] * diff[c];
            }
            acc += diff[r] * row_dot;
        }
        acc.max(0.0)
    }

    /// Membership vector of a new point (the GK analogue of Eq. 9).
    pub fn memberships_for(&self, point: &[f64]) -> Result<Vec<f64>> {
        if point.len() != self.dim() {
            return Err(FuzzyError::InvalidData {
                reason: format!(
                    "point has dimension {}, model expects {}",
                    point.len(),
                    self.dim()
                ),
            });
        }
        let c = self.num_clusters();
        let mut d2: Vec<f64> = (0..c).map(|i| self.sq_distance(point, i)).collect();
        let zero_hits: Vec<usize> = d2
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 0.0)
            .map(|(i, _)| i)
            .collect();
        if !zero_hits.is_empty() {
            let mut u = vec![0.0; c];
            let share = 1.0 / zero_hits.len() as f64;
            for i in zero_hits {
                u[i] = share;
            }
            return Ok(u);
        }
        let e = 1.0 / (self.fuzzifier - 1.0);
        for v in d2.iter_mut() {
            *v = v.powf(-e);
        }
        let total: f64 = d2.iter().sum();
        Ok(d2.into_iter().map(|v| v / total).collect())
    }

    /// Hard assignment of a new point.
    pub fn predict(&self, point: &[f64]) -> Result<usize> {
        Ok(argmax(&self.memberships_for(point)?))
    }
}

/// Fits Gustafson–Kessel clustering to the rows of `data`.
pub fn fit(data: &Matrix, config: &GkConfig) -> Result<GkModel> {
    let n = data.rows();
    let d = data.cols();
    config.validate(n, d)?;
    if data.has_non_finite() {
        return Err(FuzzyError::InvalidData {
            reason: "data contains NaN or infinite values".into(),
        });
    }
    let c = config.clusters;
    let m = config.fuzzifier;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Initialize memberships randomly (rows normalized).
    let mut u = Matrix::zeros(n, c);
    for i in 0..n {
        let mut total = 0.0;
        for k in 0..c {
            let v: f64 = rng.random::<f64>() + 1e-3;
            u[(i, k)] = v;
            total += v;
        }
        for k in 0..c {
            u[(i, k)] /= total;
        }
    }

    // Data scale for covariance regularization.
    let mut data_var = 0.0;
    if let Ok(means) = data.col_means() {
        for i in 0..n {
            for (k, &mean) in means.as_slice().iter().enumerate() {
                let diff = data[(i, k)] - mean;
                data_var += diff * diff;
            }
        }
        data_var /= (n * d) as f64;
    }
    let reg_scale = data_var.max(1e-12);

    let mut centers = Matrix::zeros(c, d);
    let mut norm_matrices: Vec<Matrix> = vec![Matrix::identity(d); c];
    let mut iterations = 0;

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // --- Centers: vᵢ = Σ uᵢₖ^m xₖ / Σ uᵢₖ^m ---------------------------
        for k in 0..c {
            let mut weight = 0.0;
            let mut acc = vec![0.0; d];
            for i in 0..n {
                let w = u[(i, k)].powf(m);
                weight += w;
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += w * data[(i, j)];
                }
            }
            if weight > 0.0 {
                for (j, a) in acc.iter().enumerate() {
                    centers[(k, j)] = a / weight;
                }
            }
        }
        // --- Fuzzy covariances + norm matrices ----------------------------
        for k in 0..c {
            let mut f = Matrix::zeros(d, d);
            let mut weight = 0.0;
            for i in 0..n {
                let w = u[(i, k)].powf(m);
                weight += w;
                for r in 0..d {
                    let dr = data[(i, r)] - centers[(k, r)];
                    for cc in 0..d {
                        let dc = data[(i, cc)] - centers[(k, cc)];
                        f[(r, cc)] += w * dr * dc;
                    }
                }
            }
            if weight > 0.0 {
                f.scale_mut(1.0 / weight);
            }
            // Regularize toward a scaled identity to stay invertible.
            let gamma = config.regularization;
            for r in 0..d {
                for cc in 0..d {
                    let target = if r == cc { reg_scale } else { 0.0 };
                    f[(r, cc)] = (1.0 - gamma) * f[(r, cc)] + gamma * target;
                }
            }
            // Aᵢ = (det F)^(1/d) · F⁻¹ is invariant to scaling F, so
            // normalize F to unit magnitude first — keeps the inversion
            // well-conditioned even for near-degenerate clusters whose
            // covariances are tiny in absolute terms.
            let scale = f.max_abs();
            if !(scale > 0.0) {
                return Err(FuzzyError::NumericalFailure {
                    reason: format!("cluster {k} covariance vanished"),
                });
            }
            let f_unit = f.scaled(1.0 / scale);
            let det = determinant(&f_unit).map_err(|e| FuzzyError::NumericalFailure {
                reason: format!("covariance determinant failed: {e}"),
            })?;
            if det <= 0.0 {
                return Err(FuzzyError::NumericalFailure {
                    reason: format!("cluster {k} covariance is not positive definite"),
                });
            }
            let f_inv = inverse(&f_unit).map_err(|e| FuzzyError::NumericalFailure {
                reason: format!("covariance inversion failed: {e}"),
            })?;
            norm_matrices[k] = f_inv.scaled(det.powf(1.0 / d as f64));
        }
        // --- Memberships ----------------------------------------------------
        let snapshot = GkModel {
            centers: centers.clone(),
            memberships: Matrix::zeros(0, 0),
            norm_matrices: norm_matrices.clone(),
            iterations,
            fuzzifier: m,
        };
        let mut max_change = 0.0f64;
        for i in 0..n {
            let row = snapshot.memberships_for(data.row(i))?;
            for (k, &v) in row.iter().enumerate() {
                max_change = max_change.max((v - u[(i, k)]).abs());
                u[(i, k)] = v;
            }
        }
        if max_change < config.tol {
            break;
        }
    }

    Ok(GkModel {
        centers,
        memberships: u,
        norm_matrices,
        iterations,
        fuzzifier: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two elongated, rotated blobs that spherical FCM struggles with.
    fn elongated_blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut s = 5u64;
        let mut rand01 = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        // Blob 0: long axis along (1, 1); Blob 1: parallel, offset
        // perpendicular by a distance smaller than the blob length.
        for label in 0..2usize {
            let offset = label as f64 * 2.5;
            for _ in 0..60 {
                let t = (rand01() - 0.5) * 16.0; // long axis
                let w = (rand01() - 0.5) * 0.6; // short axis
                rows.push(vec![t + w - offset, t - w + offset]);
                labels.push(label);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn memberships_sum_to_one() {
        let (data, _) = elongated_blobs();
        let model = fit(&data, &GkConfig::new(2)).unwrap();
        for i in 0..data.rows() {
            let sum: f64 = model.memberships.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert_eq!(model.num_clusters(), 2);
        assert_eq!(model.dim(), 2);
    }

    #[test]
    fn separates_elongated_blobs() {
        let (data, labels) = elongated_blobs();
        let model = fit(&data, &GkConfig::new(2)).unwrap();
        // Evaluate clustering accuracy under the best label permutation.
        let mut agree = 0;
        for (i, &label) in labels.iter().enumerate() {
            let hard = argmax(model.memberships.row(i));
            if hard == label {
                agree += 1;
            }
        }
        let n = data.rows();
        let accuracy = agree.max(n - agree) as f64 / n as f64;
        assert!(
            accuracy > 0.9,
            "GK should separate parallel elongated blobs (accuracy {accuracy})"
        );
    }

    #[test]
    fn gk_beats_fcm_on_anisotropic_data() {
        let (data, labels) = elongated_blobs();
        let gk = fit(&data, &GkConfig::new(2)).unwrap();
        let fcm = crate::fcm::fit(&data, &crate::fcm::FcmConfig::new(2)).unwrap();
        let accuracy = |assign: &dyn Fn(usize) -> usize| {
            let agree = (0..data.rows()).filter(|&i| assign(i) == labels[i]).count();
            let n = data.rows();
            agree.max(n - agree) as f64 / n as f64
        };
        let acc_gk = accuracy(&|i| argmax(gk.memberships.row(i)));
        let acc_fcm = accuracy(&|i| argmax(fcm.memberships.row(i)));
        assert!(
            acc_gk >= acc_fcm,
            "adaptive metric should not lose on anisotropic blobs: GK {acc_gk} vs FCM {acc_fcm}"
        );
    }

    #[test]
    fn norm_matrices_are_symmetric_positive() {
        let (data, _) = elongated_blobs();
        let model = fit(&data, &GkConfig::new(2)).unwrap();
        for a in &model.norm_matrices {
            for r in 0..a.rows() {
                for c in 0..a.cols() {
                    assert!((a[(r, c)] - a[(c, r)]).abs() < 1e-6, "A must be symmetric");
                }
                assert!(a[(r, r)] > 0.0, "diagonal must be positive");
            }
        }
    }

    #[test]
    fn new_point_membership_and_predict() {
        let (data, _) = elongated_blobs();
        let model = fit(&data, &GkConfig::new(2)).unwrap();
        let u = model.memberships_for(&[0.0, 0.0]).unwrap();
        assert!((u.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let k = model.predict(&[0.0, 0.0]).unwrap();
        assert!(k < 2);
        assert!(model.memberships_for(&[1.0]).is_err());
    }

    #[test]
    fn center_point_gets_full_membership() {
        let (data, _) = elongated_blobs();
        let model = fit(&data, &GkConfig::new(2)).unwrap();
        let center: Vec<f64> = model.centers.row(0).to_vec();
        let u = model.memberships_for(&center).unwrap();
        assert!((u[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn config_validation() {
        let (data, _) = elongated_blobs();
        assert!(fit(
            &data,
            &GkConfig {
                clusters: 0,
                ..GkConfig::new(1)
            }
        )
        .is_err());
        assert!(fit(&data, &GkConfig::new(10_000)).is_err());
        assert!(fit(
            &data,
            &GkConfig {
                fuzzifier: 1.0,
                ..GkConfig::new(2)
            }
        )
        .is_err());
        assert!(fit(
            &data,
            &GkConfig {
                max_iters: 0,
                ..GkConfig::new(2)
            }
        )
        .is_err());
        assert!(fit(
            &data,
            &GkConfig {
                regularization: 1.5,
                ..GkConfig::new(2)
            }
        )
        .is_err());
        let mut bad = data.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(fit(&bad, &GkConfig::new(2)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = elongated_blobs();
        let a = fit(&data, &GkConfig::new(3)).unwrap();
        let b = fit(&data, &GkConfig::new(3)).unwrap();
        assert!(a.centers.approx_eq(&b.centers, 0.0));
        assert!(a.memberships.approx_eq(&b.memberships, 0.0));
    }

    #[test]
    fn degenerate_duplicate_points() {
        let rows: Vec<Vec<f64>> = (0..20).map(|_| vec![1.0, 2.0]).collect();
        let data = Matrix::from_rows(&rows).unwrap();
        // Heavy regularization keeps covariances invertible.
        let model = fit(
            &data,
            &GkConfig {
                regularization: 0.5,
                ..GkConfig::new(2)
            },
        )
        .unwrap();
        assert!(!model.centers.has_non_finite());
        assert!(!model.memberships.has_non_finite());
    }
}
