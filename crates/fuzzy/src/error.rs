//! Error types for clustering operations.

use std::fmt;

/// Errors produced by `kinemyo-fuzzy` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzyError {
    /// A configuration parameter is out of range.
    InvalidConfig {
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The dataset cannot be clustered as requested (too few points, empty,
    /// dimension mismatch with the model).
    InvalidData {
        /// Explanation of the data problem.
        reason: String,
    },
    /// The alternating optimization failed to produce finite values.
    NumericalFailure {
        /// Explanation of what became non-finite.
        reason: String,
    },
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::InvalidConfig { reason } => write!(f, "invalid FCM config: {reason}"),
            FuzzyError::InvalidData { reason } => write!(f, "invalid clustering data: {reason}"),
            FuzzyError::NumericalFailure { reason } => {
                write!(f, "numerical failure in clustering: {reason}")
            }
        }
    }
}

impl std::error::Error for FuzzyError {}

/// Result alias for clustering operations.
pub type Result<T> = std::result::Result<T, FuzzyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(FuzzyError::InvalidConfig {
            reason: "c=0".into()
        }
        .to_string()
        .contains("c=0"));
        assert!(FuzzyError::InvalidData {
            reason: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(FuzzyError::NumericalFailure {
            reason: "NaN".into()
        }
        .to_string()
        .contains("NaN"));
    }
}
