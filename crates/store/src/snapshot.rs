//! Generation-numbered snapshots.
//!
//! A snapshot `snap-<gen>.db` is the full store contents at one instant:
//! a header frame (magic, version, generation, dim, entry count) followed
//! by exactly `entry count` entry frames. Snapshots are written to
//! `<name>.tmp`, fsynced, renamed into place, and the directory fsynced —
//! so a crash mid-write can never leave a half-snapshot under the real
//! name, and readers may trust any visible `snap-*.db` to be complete
//! (a CRC or count mismatch inside one is corruption, not a torn write).

use crate::codec::MetaCodec;
use crate::error::{io_err, Result, StoreError};
use crate::record::{decode_entry, encode_entry, read_frame, write_frame, FrameRead, Reader};
use crate::wal::sync_dir;
use kinemyo_modb::Entry;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot header.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"KSNP";
/// On-disk format version of the snapshot layout.
pub const SNAPSHOT_VERSION: u16 = 1;

/// File name for a snapshot: `snap-<gen:06>.db`.
pub fn snapshot_file_name(generation: u64) -> String {
    format!("snap-{generation:06}.db")
}

/// Parses a snapshot file name back into its generation.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".db")?
        .parse()
        .ok()
}

/// Header of a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Generation this snapshot establishes.
    pub generation: u64,
    /// Vector dimensionality of every entry.
    pub dim: u32,
    /// Exact number of entry frames following the header.
    pub entry_count: u64,
}

impl SnapshotHeader {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 2 + 8 + 4 + 8);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&self.entry_count.to_le_bytes());
        out
    }

    fn decode(payload: &[u8]) -> Option<Self> {
        let mut r = Reader::new(payload);
        if r.bytes(4)? != SNAPSHOT_MAGIC {
            return None;
        }
        if r.u16()? != SNAPSHOT_VERSION {
            return None;
        }
        let generation = r.u64()?;
        let dim = r.u32()?;
        let entry_count = r.u64()?;
        (r.remaining() == 0).then_some(Self {
            generation,
            dim,
            entry_count,
        })
    }
}

/// Atomically writes a snapshot of `entries` as `snap-<generation>.db` in
/// `dir`. Returns the snapshot's path and size in bytes.
pub fn write_snapshot<M: MetaCodec>(
    dir: &Path,
    generation: u64,
    dim: u32,
    entries: &[Entry<M>],
) -> Result<(PathBuf, u64)> {
    let final_path = dir.join(snapshot_file_name(generation));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(generation)));
    let header = SnapshotHeader {
        generation,
        dim,
        entry_count: entries.len() as u64,
    };
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)
        .map_err(|e| io_err(&tmp_path, e))?;
    write_frame(&mut file, &tmp_path, &header.encode())?;
    for e in entries {
        write_frame(
            &mut file,
            &tmp_path,
            &encode_entry(e.id, &e.meta, &e.vector),
        )?;
    }
    file.sync_all().map_err(|e| io_err(&tmp_path, e))?;
    let bytes = file.metadata().map_err(|e| io_err(&tmp_path, e))?.len();
    drop(file);
    std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;
    sync_dir(dir)?;
    Ok((final_path, bytes))
}

/// Reads a snapshot file back into its header and entries, validating
/// magic, version, CRCs, and the exact entry count.
pub fn read_snapshot<M: MetaCodec>(path: &Path) -> Result<(SnapshotHeader, Vec<Entry<M>>)> {
    let buf = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let corrupt = |offset: u64, reason: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        offset,
        reason,
    };
    let (header, mut offset) = match read_frame(&buf, 0) {
        FrameRead::Frame { payload, consumed } => match SnapshotHeader::decode(&payload) {
            Some(h) => (h, consumed),
            None => {
                return Err(corrupt(
                    0,
                    "snapshot header frame is not a KSNP v1 header".into(),
                ))
            }
        },
        FrameRead::Eof => return Err(corrupt(0, "snapshot file is empty".into())),
        FrameRead::Invalid { reason } => {
            return Err(corrupt(0, format!("snapshot header unreadable: {reason}")))
        }
    };
    let mut entries = Vec::with_capacity(header.entry_count as usize);
    for i in 0..header.entry_count {
        match read_frame(&buf, offset) {
            FrameRead::Frame { payload, consumed } => {
                entries.push(decode_entry(&payload, path, offset as u64)?);
                offset += consumed;
            }
            FrameRead::Eof => {
                return Err(corrupt(
                    offset as u64,
                    format!(
                        "snapshot promises {} entries but ends after {i}",
                        header.entry_count
                    ),
                ))
            }
            FrameRead::Invalid { reason } => {
                return Err(corrupt(offset as u64, format!("entry frame {i}: {reason}")))
            }
        }
    }
    if !matches!(read_frame(&buf, offset), FrameRead::Eof) {
        return Err(corrupt(
            offset as u64,
            "trailing bytes after the final snapshot entry".into(),
        ));
    }
    Ok((header, entries))
}

/// Removes any abandoned `*.tmp` files a crashed snapshot write may have
/// left in `dir`.
pub(crate) fn remove_stale_tmp_files(dir: &Path) -> Result<()> {
    for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".tmp") {
            let p = entry.path();
            std::fs::remove_file(&p).map_err(|e| io_err(&p, e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("kinemyo_snap_{tag}_{}_{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entries(n: usize) -> Vec<Entry<u64>> {
        (0..n)
            .map(|i| Entry {
                id: i,
                meta: (i * 10) as u64,
                vector: vec![i as f64 + 0.125, -(i as f64)],
            })
            .collect()
    }

    #[test]
    fn names() {
        assert_eq!(snapshot_file_name(7), "snap-000007.db");
        assert_eq!(parse_snapshot_name("snap-000007.db"), Some(7));
        assert_eq!(parse_snapshot_name("snap-000007.db.tmp"), None);
        assert_eq!(parse_snapshot_name("wal-000001-000001.log"), None);
    }

    #[test]
    fn roundtrip_bit_identical() {
        let dir = scratch("roundtrip");
        let original = entries(5);
        let (path, bytes) = write_snapshot(&dir, 3, 2, &original).unwrap();
        assert!(bytes > 0);
        assert!(!dir.join("snap-000003.db.tmp").exists());
        let (header, back) = read_snapshot::<u64>(&path).unwrap();
        assert_eq!(
            header,
            SnapshotHeader {
                generation: 3,
                dim: 2,
                entry_count: 5
            }
        );
        assert_eq!(back.len(), original.len());
        for (a, b) in original.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.meta, b.meta);
            for (x, y) in a.vector.iter().zip(&b.vector) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_snapshot_roundtrip() {
        let dir = scratch("empty");
        let (path, _) = write_snapshot::<u64>(&dir, 1, 4, &[]).unwrap();
        let (header, back) = read_snapshot::<u64>(&path).unwrap();
        assert_eq!(header.entry_count, 0);
        assert!(back.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshot_is_corrupt() {
        let dir = scratch("trunc");
        let (path, _) = write_snapshot(&dir, 1, 2, &entries(4)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            read_snapshot::<u64>(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_bit_is_corrupt() {
        let dir = scratch("flip");
        let (path, _) = write_snapshot(&dir, 1, 2, &entries(4)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot::<u64>(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_files_removed() {
        let dir = scratch("tmp");
        std::fs::write(dir.join("snap-000009.db.tmp"), b"half").unwrap();
        remove_stale_tmp_files(&dir).unwrap();
        assert!(!dir.join("snap-000009.db.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
