//! Typed errors for the storage engine.

use kinemyo_modb::DbError;
use std::fmt;
use std::path::PathBuf;

/// Errors produced by `kinemyo-store`.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure, with the path being operated on.
    Io {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// On-disk bytes failed validation (bad magic, CRC mismatch, truncated
    /// frame outside the recoverable WAL tail, undecodable payload).
    Corrupt {
        /// The file holding the bad bytes.
        path: PathBuf,
        /// Byte offset of the first invalid frame.
        offset: u64,
        /// What failed to validate.
        reason: String,
    },
    /// The directory does not contain an initialised store.
    NotAStore {
        /// The directory that was probed.
        dir: PathBuf,
    },
    /// `create` was pointed at a directory that already holds a store.
    AlreadyExists {
        /// The occupied directory.
        dir: PathBuf,
    },
    /// The in-memory database rejected a replayed or inserted entry.
    Db(DbError),
    /// A configuration value was out of range.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            StoreError::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt store file {} at byte {offset}: {reason}",
                path.display()
            ),
            StoreError::NotAStore { dir } => {
                write!(f, "{} is not an initialised kinemyo store", dir.display())
            }
            StoreError::AlreadyExists { dir } => {
                write!(f, "{} already holds a kinemyo store", dir.display())
            }
            StoreError::Db(e) => write!(f, "database rejected entry: {e}"),
            StoreError::InvalidConfig { reason } => write!(f, "invalid store config: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for StoreError {
    fn from(e: DbError) -> Self {
        StoreError::Db(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Attaches a path to a raw I/O error.
pub(crate) fn io_err(path: &std::path::Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = StoreError::Corrupt {
            path: PathBuf::from("/x/wal-000000-000001.log"),
            offset: 42,
            reason: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("byte 42"));
        assert!(e.to_string().contains("crc mismatch"));
        assert!(StoreError::NotAStore {
            dir: PathBuf::from("/nope")
        }
        .to_string()
        .contains("not an initialised"));
        assert!(StoreError::from(DbError::Empty)
            .to_string()
            .contains("empty"));
    }
}
