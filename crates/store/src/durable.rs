//! [`DurableDb`]: the crash-safe facade over [`SharedDb`].
//!
//! Every insert is framed, appended to the active WAL segment, and (by
//! default) fsynced *before* it is applied to the in-memory database —
//! the log is the commit point, so an entry a reader has seen can never
//! be lost to a crash. Startup recovery loads the newest snapshot, then
//! replays the WAL segments of its generation in order, truncating a torn
//! tail in the final segment, and rebuilds the exact in-memory state —
//! ids, metadata, and `f64` vectors bit-identical.
//!
//! The durable store can own its database (`create`/`open`) or graft onto
//! an existing one (`open_into`), the mode `kinemyo-serve` uses: the
//! model's training entries stay in memory only, while entries ingested
//! through the store are both logged and inserted into the model's
//! [`SharedDb`] so queries see them immediately.

use crate::codec::MetaCodec;
use crate::error::{io_err, Result, StoreError};
use crate::record::{decode_entry, encode_entry};
use crate::snapshot::{parse_snapshot_name, read_snapshot, remove_stale_tmp_files, write_snapshot};
use crate::wal::{
    parse_segment_name, read_segment, sync_dir, truncate_segment, SegmentHeader, SegmentWriter,
};
use kinemyo_modb::{DbError, Entry, FeatureDb, SharedDb};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};

/// Tunables for a [`DurableDb`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Rotate the active WAL segment once it exceeds this many bytes.
    pub max_segment_bytes: u64,
    /// `fdatasync` every append before acknowledging it. Disabling this
    /// trades the durability of the most recent appends for throughput;
    /// recovery correctness is unaffected.
    pub fsync_on_commit: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            max_segment_bytes: 4 << 20,
            fsync_on_commit: true,
        }
    }
}

impl StoreConfig {
    fn validate(&self) -> Result<()> {
        if self.max_segment_bytes < 1024 {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "max_segment_bytes {} is below the 1024-byte floor",
                    self.max_segment_bytes
                ),
            });
        }
        Ok(())
    }
}

/// Point-in-time description of a store, as reported by
/// [`DurableDb::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Current snapshot generation (0 before the first snapshot).
    pub generation: u64,
    /// Entries owned by the store (ingested, not model-training ones).
    pub entries: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Live WAL segments of the current generation.
    pub segments: usize,
    /// Total bytes across those segments.
    pub wal_bytes: u64,
    /// Bytes of the current snapshot (0 before the first snapshot).
    pub snapshot_bytes: u64,
    /// Appends since the last snapshot (the index-staleness signal).
    pub appends_since_snapshot: u64,
}

/// Result of [`DurableDb::persist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Generation the new snapshot established.
    pub generation: u64,
    /// Entries captured in it.
    pub entries: usize,
    /// Its size in bytes.
    pub bytes: u64,
}

/// Result of [`DurableDb::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactInfo {
    /// Generation the compaction snapshot established.
    pub generation: u64,
    /// Entries captured in it.
    pub entries: usize,
    /// Obsolete files (old snapshots + covered segments) deleted.
    pub files_removed: usize,
    /// Bytes those files occupied.
    pub bytes_reclaimed: u64,
}

struct Writer<M> {
    /// The store's own contents — exactly what snapshots capture and
    /// recovery rebuilds.
    owned: FeatureDb<M>,
    /// The externally visible database every insert is applied to after
    /// logging. In grafted mode this is the model's db and is a strict
    /// superset of `owned`.
    shared: SharedDb<M>,
    segment: SegmentWriter,
    generation: u64,
    seq: u64,
    appends_since_snapshot: u64,
}

/// Observer fired after each durable insert with the entry's 1-based
/// sequence number and its encoded WAL payload (`encode_entry` bytes,
/// exactly what a replication follower must apply). The hook runs under
/// the writer lock, so invocations arrive strictly in commit order and
/// must stay cheap — hand the bytes to a queue, do not do I/O inline.
pub type CommitHook = Box<dyn Fn(u64, &[u8]) + Send + Sync>;

/// A crash-safe, append-only motion database: WAL-logged inserts over a
/// [`SharedDb`], with snapshots and compaction.
pub struct DurableDb<M> {
    dir: PathBuf,
    config: StoreConfig,
    inner: Mutex<Writer<M>>,
    /// Replication observer; `None` outside a cluster. Locked strictly
    /// after `inner` (insert holds the writer lock while firing), never
    /// the other way around.
    commit_hook: Mutex<Option<CommitHook>>,
}

/// Everything recovery learned from the directory.
struct Recovered<M> {
    generation: u64,
    dim: usize,
    entries: Vec<Entry<M>>,
    /// The final live segment to continue appending to, if any.
    active: Option<(PathBuf, SegmentHeader, u64)>,
    last_seq: u64,
}

/// Snapshot files found on disk, as `(generation, path)`.
type SnapshotFiles = Vec<(u64, PathBuf)>;
/// WAL segment files found on disk, as `(generation, seq, path)`.
type SegmentFiles = Vec<(u64, u64, PathBuf)>;

fn list_store_files(dir: &Path) -> Result<(SnapshotFiles, SegmentFiles)> {
    let mut snapshots = Vec::new();
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(gen) = parse_snapshot_name(&name) {
            snapshots.push((gen, entry.path()));
        } else if let Some((gen, seq)) = parse_segment_name(&name) {
            segments.push((gen, seq, entry.path()));
        }
    }
    snapshots.sort_by_key(|&(g, _)| g);
    segments.sort_by_key(|&(g, s, _)| (g, s));
    Ok((snapshots, segments))
}

fn recover<M: MetaCodec>(dir: &Path) -> Result<Recovered<M>> {
    if !dir.is_dir() {
        return Err(StoreError::NotAStore {
            dir: dir.to_path_buf(),
        });
    }
    remove_stale_tmp_files(dir)?;
    let (snapshots, segments) = list_store_files(dir)?;
    if snapshots.is_empty() && segments.is_empty() {
        return Err(StoreError::NotAStore {
            dir: dir.to_path_buf(),
        });
    }

    let (generation, mut dim, mut entries) = match snapshots.last() {
        Some((gen, path)) => {
            let (header, entries) = read_snapshot::<M>(path)?;
            if header.generation != *gen {
                return Err(StoreError::Corrupt {
                    path: path.clone(),
                    offset: 0,
                    reason: format!(
                        "file name says generation {gen}, header says {}",
                        header.generation
                    ),
                });
            }
            (*gen, Some(header.dim as usize), entries)
        }
        None => (0, None, Vec::new()),
    };

    // Only segments of the current generation are live; older ones are
    // fully covered by the snapshot. Newer ones would mean a snapshot
    // vanished.
    let live: Vec<&(u64, u64, PathBuf)> = segments
        .iter()
        .filter(|&&(g, _, _)| g == generation)
        .collect();
    if let Some(&(g, _, ref p)) = segments.iter().find(|&&(g, _, _)| g > generation) {
        return Err(StoreError::Corrupt {
            path: p.clone(),
            offset: 0,
            reason: format!(
                "segment of generation {g} present but newest snapshot is generation \
                 {generation}; its base snapshot is missing"
            ),
        });
    }

    let mut active = None;
    let mut last_seq = 0;
    for (i, &&(g, seq, ref path)) in live.iter().enumerate() {
        let is_last = i + 1 == live.len();
        if seq != (i as u64) + 1 {
            return Err(StoreError::Corrupt {
                path: path.clone(),
                offset: 0,
                reason: format!("segment sequence gap: expected seq {}, found {seq}", i + 1),
            });
        }
        let contents = read_segment(path)?;
        let header = match contents.header {
            Some(h) => h,
            None if is_last => {
                // The crash hit during segment creation, before the header
                // frame was durable. Nothing in the file is usable;
                // remove it and let the caller recreate the active
                // segment.
                if dim.is_none() {
                    // No snapshot and no earlier segment: the store never
                    // finished initialising, so not even dim is known.
                    return Err(StoreError::NotAStore {
                        dir: dir.to_path_buf(),
                    });
                }
                std::fs::remove_file(path).map_err(|e| io_err(path, e))?;
                sync_dir(dir)?;
                last_seq = seq.saturating_sub(1);
                continue;
            }
            None => {
                return Err(StoreError::Corrupt {
                    path: path.clone(),
                    offset: 0,
                    reason: "torn header in a non-final segment".into(),
                })
            }
        };
        if header.generation != g || header.seq != seq {
            return Err(StoreError::Corrupt {
                path: path.clone(),
                offset: 0,
                reason: format!(
                    "file name says generation {g} seq {seq}, header says generation {} seq {}",
                    header.generation, header.seq
                ),
            });
        }
        match dim {
            Some(d) if d != header.dim as usize => {
                return Err(StoreError::Corrupt {
                    path: path.clone(),
                    offset: 0,
                    reason: format!("segment dim {} disagrees with store dim {d}", header.dim),
                })
            }
            Some(_) => {}
            None => dim = Some(header.dim as usize),
        }
        if let Some(reason) = contents.invalid_tail {
            if !is_last {
                return Err(StoreError::Corrupt {
                    path: path.clone(),
                    offset: contents.valid_len,
                    reason: format!("invalid frame in a non-final segment: {reason}"),
                });
            }
            // The torn tail of the active segment at crash time: discard
            // it physically so the next append continues on clean bytes.
            truncate_segment(path, contents.valid_len)?;
        }
        let mut frame_offset = (crate::record::FRAME_HEADER_BYTES + header.encode().len()) as u64;
        for payload in &contents.payloads {
            entries.push(decode_entry::<M>(payload, path, frame_offset)?);
            frame_offset += (crate::record::FRAME_HEADER_BYTES + payload.len()) as u64;
        }
        if is_last {
            active = Some((path.clone(), header, contents.valid_len));
        }
        last_seq = seq;
    }

    let dim = dim.ok_or_else(|| StoreError::NotAStore {
        dir: dir.to_path_buf(),
    })?;
    Ok(Recovered {
        generation,
        dim,
        entries,
        active,
        last_seq,
    })
}

impl<M: MetaCodec + Clone> DurableDb<M> {
    /// Initialises a fresh store in `dir` (created if absent), owning an
    /// empty database of `dim`-dimensional vectors. Fails with
    /// [`StoreError::AlreadyExists`] if `dir` already holds store files.
    pub fn create(dir: &Path, dim: usize, config: StoreConfig) -> Result<Self> {
        config.validate()?;
        if dim == 0 || dim > u32::MAX as usize {
            return Err(StoreError::InvalidConfig {
                reason: format!("dim {dim} out of range (1..=u32::MAX)"),
            });
        }
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let (snapshots, segments) = list_store_files(dir)?;
        if !snapshots.is_empty() || !segments.is_empty() {
            return Err(StoreError::AlreadyExists {
                dir: dir.to_path_buf(),
            });
        }
        let segment = SegmentWriter::create(
            dir,
            SegmentHeader {
                generation: 0,
                seq: 1,
                dim: dim as u32,
            },
        )?;
        Ok(Self {
            dir: dir.to_path_buf(),
            config,
            inner: Mutex::new(Writer {
                owned: FeatureDb::new(dim),
                shared: SharedDb::new(FeatureDb::new(dim)),
                segment,
                generation: 0,
                seq: 1,
                appends_since_snapshot: 0,
            }),
            commit_hook: Mutex::new(None),
        })
    }

    /// Opens an existing store, recovering its contents into a database
    /// the store owns.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<Self> {
        config.validate()?;
        let recovered = recover::<M>(dir)?;
        let shared = SharedDb::new(FeatureDb::new(recovered.dim));
        Self::attach(dir, config, recovered, shared)
    }

    /// Opens an existing store and replays its contents *into* `shared`
    /// (the serve daemon's model database). Every recovered entry is
    /// inserted into `shared`; dimensionality must match and recovered
    /// ids must not collide with entries already present.
    pub fn open_into(dir: &Path, config: StoreConfig, shared: SharedDb<M>) -> Result<Self> {
        config.validate()?;
        let recovered = recover::<M>(dir)?;
        let shared_dim = shared.with_read(|db| db.dim());
        if shared_dim != recovered.dim {
            return Err(StoreError::Db(DbError::DimensionMismatch {
                expected: shared_dim,
                got: recovered.dim,
            }));
        }
        Self::attach(dir, config, recovered, shared)
    }

    /// [`open_into`](Self::open_into) when the directory holds a store,
    /// [`create`](Self::create)-like initialisation grafted onto `shared`
    /// otherwise.
    pub fn open_or_create_into(
        dir: &Path,
        config: StoreConfig,
        shared: SharedDb<M>,
    ) -> Result<Self> {
        match Self::open_into(dir, config.clone(), shared.clone()) {
            Err(StoreError::NotAStore { .. }) => {
                let dim = shared.with_read(|db| db.dim());
                let created = Self::create(dir, dim, config)?;
                created.inner.lock().shared = shared;
                Ok(created)
            }
            other => other,
        }
    }

    fn attach(
        dir: &Path,
        config: StoreConfig,
        recovered: Recovered<M>,
        shared: SharedDb<M>,
    ) -> Result<Self> {
        let mut owned = FeatureDb::new(recovered.dim);
        for e in &recovered.entries {
            owned.insert(e.id, e.meta.clone(), e.vector.clone())?;
            shared.insert(e.id, e.meta.clone(), e.vector.clone())?;
        }
        let (segment, seq) = match recovered.active {
            Some((path, header, valid_len)) => {
                (SegmentWriter::reopen(&path, header, valid_len)?, header.seq)
            }
            None => {
                let seq = recovered.last_seq + 1;
                (
                    SegmentWriter::create(
                        dir,
                        SegmentHeader {
                            generation: recovered.generation,
                            seq,
                            dim: recovered.dim as u32,
                        },
                    )?,
                    seq,
                )
            }
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            config,
            inner: Mutex::new(Writer {
                owned,
                shared,
                segment,
                generation: recovered.generation,
                seq,
                appends_since_snapshot: 0,
            }),
            commit_hook: Mutex::new(None),
        })
    }

    /// The externally visible database (the one queries run against).
    pub fn shared(&self) -> SharedDb<M> {
        self.inner.lock().shared.clone()
    }

    /// Durably inserts one entry: validated, WAL-appended (fsynced when
    /// configured), then applied to the visible database — in that order,
    /// so a reader can never observe an unlogged entry.
    pub fn insert(&self, id: usize, meta: M, vector: Vec<f64>) -> Result<()> {
        let mut w = self.inner.lock();
        if vector.len() != w.owned.dim() {
            return Err(StoreError::Db(DbError::DimensionMismatch {
                expected: w.owned.dim(),
                got: vector.len(),
            }));
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(StoreError::Db(DbError::InvalidArgument {
                reason: format!("vector for id {id} contains non-finite values"),
            }));
        }
        // The duplicate check runs against the *visible* database, so ids
        // also can't collide with a grafted model's training entries.
        if w.shared.with_read(|db| db.contains_id(id)) {
            return Err(StoreError::Db(DbError::DuplicateId { id }));
        }
        if w.segment.bytes() >= self.config.max_segment_bytes {
            let header = SegmentHeader {
                generation: w.generation,
                seq: w.seq + 1,
                dim: w.owned.dim() as u32,
            };
            // analyze: allow(io-under-lock) WAL rotation is part of the commit protocol; the writer lock must cover it so no entry lands in a stale segment
            w.segment = SegmentWriter::create(&self.dir, header)?;
            w.seq += 1;
        }
        let payload = encode_entry(id, &meta, &vector);
        // analyze: allow(io-under-lock) the WAL append under the writer lock IS the commit point; releasing it first would let readers observe unlogged entries
        w.segment.append(&payload, self.config.fsync_on_commit)?;
        w.owned.insert(id, meta.clone(), vector.clone())?;
        w.shared.insert(id, meta, vector)?;
        w.appends_since_snapshot += 1;
        // Fire the replication hook while still holding the writer lock:
        // hook calls arrive strictly in commit order, and a hook that
        // enqueues `(seq, payload)` observes no gaps and no reordering.
        let seq = w.owned.len() as u64;
        if let Some(hook) = self.commit_hook.lock().as_ref() {
            hook(seq, &payload);
        }
        Ok(())
    }

    /// Sequence number of the newest committed entry (equivalently, the
    /// count of store-owned entries — sequence numbers are the 1-based
    /// positions in commit order, stable across restarts because
    /// recovery replays snapshots and WAL segments in exactly that
    /// order).
    pub fn entry_seq(&self) -> u64 {
        self.inner.lock().owned.len() as u64
    }

    /// Encoded WAL payloads of every committed entry *after* sequence
    /// number `from` (pass 0 for all), as `(seq, payload)` in commit
    /// order — the leader-side source for follower catch-up. Payloads
    /// are `encode_entry` bytes, bit-identical to what the WAL holds,
    /// regardless of which snapshot generation currently covers them.
    pub fn encoded_entries_from(&self, from: u64) -> Vec<(u64, Vec<u8>)> {
        let w = self.inner.lock();
        w.owned
            .entries()
            .iter()
            .enumerate()
            .skip(from as usize)
            .map(|(i, e)| ((i + 1) as u64, encode_entry(e.id, &e.meta, &e.vector)))
            .collect()
    }

    /// Installs (or clears) the commit observer. The hook fires under
    /// the writer lock for every insert committed after this call; pair
    /// it with [`encoded_entries_from`](Self::encoded_entries_from) keyed
    /// by sequence number to seed history without races — an entry seen
    /// by both paths carries the same `seq` and deduplicates cleanly.
    pub fn set_commit_hook(&self, hook: Option<CommitHook>) {
        *self.commit_hook.lock() = hook;
    }

    /// Writes a new snapshot generation and rotates the WAL onto it. The
    /// write-temp-then-rename dance means a crash at any point leaves
    /// either the old generation or the new one, never a torn snapshot.
    pub fn persist(&self) -> Result<SnapshotInfo> {
        let mut w = self.inner.lock();
        let generation = w.generation + 1;
        // analyze: allow(io-under-lock) the snapshot must capture a frozen entry set; writing it outside the lock would race concurrent inserts
        let (_, bytes) = write_snapshot(
            &self.dir,
            generation,
            w.owned.dim() as u32,
            w.owned.entries(),
        )?;
        let header = SegmentHeader {
            generation,
            seq: 1,
            dim: w.owned.dim() as u32,
        };
        // analyze: allow(io-under-lock) WAL rotation onto the new generation must be atomic with the snapshot under the writer lock
        w.segment = SegmentWriter::create(&self.dir, header)?;
        w.generation = generation;
        w.seq = 1;
        w.appends_since_snapshot = 0;
        Ok(SnapshotInfo {
            generation,
            entries: w.owned.len(),
            bytes,
        })
    }

    /// [`persist`](Self::persist), then reclaims every file the new
    /// snapshot supersedes: older snapshots and the WAL segments of
    /// earlier generations.
    pub fn compact(&self) -> Result<CompactInfo> {
        let info = self.persist()?;
        // Hold the writer lock across reclamation so a concurrent persist
        // can't interleave file creation with deletion.
        let _w = self.inner.lock();
        let (snapshots, segments) = list_store_files(&self.dir)?;
        let mut files_removed = 0;
        let mut bytes_reclaimed = 0u64;
        let doomed = snapshots
            .iter()
            .filter(|&&(g, _)| g < info.generation)
            .map(|(_, p)| p)
            .chain(
                segments
                    .iter()
                    .filter(|&&(g, _, _)| g < info.generation)
                    .map(|(_, _, p)| p),
            );
        for path in doomed {
            // A concurrent compact may have beaten us to a file; a missing
            // one is already the desired end state.
            let len = match std::fs::metadata(path) {
                Ok(m) => m.len(),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(io_err(path, e)),
            };
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(io_err(path, e)),
            }
            files_removed += 1;
            bytes_reclaimed += len;
        }
        if files_removed > 0 {
            // analyze: allow(io-under-lock) reclamation holds the writer lock by design so a concurrent persist cannot interleave file creation with deletion
            sync_dir(&self.dir)?;
        }
        Ok(CompactInfo {
            generation: info.generation,
            entries: info.entries,
            files_removed,
            bytes_reclaimed,
        })
    }

    /// Re-grafts the store onto a different visible database — the serve
    /// daemon's hot-reload path. Every store-owned entry is inserted into
    /// `next` (dimensions must match, ids must be free), and only then
    /// does `next` become the insert target.
    pub fn rebind(&self, next: SharedDb<M>) -> Result<()> {
        let mut w = self.inner.lock();
        let next_dim = next.with_read(|db| db.dim());
        if next_dim != w.owned.dim() {
            return Err(StoreError::Db(DbError::DimensionMismatch {
                expected: w.owned.dim(),
                got: next_dim,
            }));
        }
        for e in w.owned.entries() {
            // analyze: allow(io-under-lock) name-level resolution conflates SharedDb::insert (in-memory) with DurableDb::insert; no I/O happens here
            next.insert(e.id, e.meta.clone(), e.vector.clone())?;
        }
        w.shared = next;
        Ok(())
    }

    /// Number of store-owned entries.
    pub fn len(&self) -> usize {
        self.inner.lock().owned.len()
    }

    /// True when the store owns no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.inner.lock().owned.dim()
    }

    /// Appends since the last snapshot.
    pub fn appends_since_snapshot(&self) -> u64 {
        self.inner.lock().appends_since_snapshot
    }

    /// The smallest id strictly greater than everything in the visible
    /// database — a convenient fresh id for the next ingested motion.
    pub fn next_id(&self) -> usize {
        self.inner
            .lock()
            .shared
            .with_read(|db| db.max_id().map_or(0, |m| m + 1))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Scans the directory and reports the store's current shape.
    pub fn stats(&self) -> Result<StoreStats> {
        let w = self.inner.lock();
        let (snapshots, segments) = list_store_files(&self.dir)?;
        let snapshot_bytes = match snapshots.iter().rev().find(|&&(g, _)| g == w.generation) {
            Some((_, p)) => std::fs::metadata(p).map_err(|e| io_err(p, e))?.len(),
            None => 0,
        };
        let mut wal_bytes = 0u64;
        let mut live_segments = 0usize;
        for (g, _, p) in &segments {
            if *g == w.generation {
                wal_bytes += std::fs::metadata(p).map_err(|e| io_err(p, e))?.len();
                live_segments += 1;
            }
        }
        Ok(StoreStats {
            generation: w.generation,
            entries: w.owned.len(),
            dim: w.owned.dim(),
            segments: live_segments,
            wal_bytes,
            snapshot_bytes,
            appends_since_snapshot: w.appends_since_snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("kinemyo_durable_{tag}_{}_{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn copy_dir(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }

    /// Vectors with awkward bit patterns so "bit-identical" means
    /// something: negative zero, subnormals, huge magnitudes.
    fn vector_for(i: usize) -> Vec<f64> {
        vec![
            i as f64 + 0.1,
            if i % 2 == 0 { -0.0 } else { 1.0e308 },
            f64::MIN_POSITIVE / (i + 1) as f64,
        ]
    }

    /// `(id, meta, vector)` rows a test expects to read back.
    type ExpectedEntries = Vec<(usize, u64, Vec<f64>)>;

    fn assert_entries_identical(db: &FeatureDb<u64>, expect: &[(usize, u64, Vec<f64>)]) {
        assert_eq!(db.len(), expect.len());
        for (id, meta, vector) in expect {
            let e = db.get(*id).unwrap();
            assert_eq!(e.meta, *meta);
            assert_eq!(e.vector.len(), vector.len());
            for (a, b) in e.vector.iter().zip(vector) {
                assert_eq!(a.to_bits(), b.to_bits(), "vector bits differ for id {id}");
            }
        }
    }

    fn populated(dir: &Path, n: usize) -> (DurableDb<u64>, ExpectedEntries) {
        let store = DurableDb::<u64>::create(dir, 3, StoreConfig::default()).unwrap();
        let mut expect = Vec::new();
        for i in 0..n {
            let v = vector_for(i);
            store.insert(i, (i * 7) as u64, v.clone()).unwrap();
            expect.push((i, (i * 7) as u64, v));
        }
        (store, expect)
    }

    #[test]
    fn create_insert_reopen_bit_identical() {
        let dir = scratch("roundtrip");
        let (store, expect) = populated(&dir, 6);
        drop(store);
        let back = DurableDb::<u64>::open(&dir, StoreConfig::default()).unwrap();
        back.shared()
            .with_read(|db| assert_entries_identical(db, &expect));
        assert_eq!(back.len(), 6);
        assert_eq!(back.next_id(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn power_cut_at_every_byte_offset_of_final_record() {
        let dir = scratch("powercut");
        let (store, expect) = populated(&dir, 5);
        drop(store);

        // Locate the active segment and the byte length of the final
        // record frame.
        let (_, segments) = list_store_files(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        let seg_path = segments[0].2.clone();
        let full = std::fs::read(&seg_path).unwrap();
        let (last_id, last_meta, last_vec) = expect.last().unwrap();
        let last_frame_len =
            crate::record::FRAME_HEADER_BYTES + encode_entry(*last_id, last_meta, last_vec).len();
        let clean_prefix_len = full.len() - last_frame_len;

        // A cut anywhere inside the final record must recover exactly the
        // complete-record prefix and physically truncate the tail.
        for cut in clean_prefix_len..full.len() {
            let trial = scratch("powercut_trial");
            copy_dir(&dir, &trial);
            let trial_seg = trial.join(seg_path.file_name().unwrap());
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&trial_seg)
                .unwrap();
            f.set_len(cut as u64).unwrap();
            drop(f);

            let back = DurableDb::<u64>::open(&trial, StoreConfig::default()).unwrap();
            back.shared()
                .with_read(|db| assert_entries_identical(db, &expect[..expect.len() - 1]));
            drop(back);
            let after = std::fs::metadata(&trial_seg).unwrap().len();
            assert_eq!(
                after, clean_prefix_len as u64,
                "cut {cut}: torn tail not truncated to the last valid frame"
            );
            std::fs::remove_dir_all(&trial).ok();
        }

        // And a cut exactly at EOF (no tear) keeps every record.
        let back = DurableDb::<u64>::open(&dir, StoreConfig::default()).unwrap();
        back.shared()
            .with_read(|db| assert_entries_identical(db, &expect));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_can_append_after_truncation() {
        let dir = scratch("append_after_cut");
        let (store, mut expect) = populated(&dir, 3);
        drop(store);
        let (_, segments) = list_store_files(&dir).unwrap();
        let seg_path = segments[0].2.clone();
        let full = std::fs::read(&seg_path).unwrap();
        // Tear off the last 5 bytes (mid-frame).
        std::fs::write(&seg_path, &full[..full.len() - 5]).unwrap();
        expect.pop();

        let back = DurableDb::<u64>::open(&dir, StoreConfig::default()).unwrap();
        let v = vector_for(9);
        back.insert(9, 99, v.clone()).unwrap();
        expect.push((9, 99, v));
        drop(back);
        let again = DurableDb::<u64>::open(&dir, StoreConfig::default()).unwrap();
        again
            .shared()
            .with_read(|db| assert_entries_identical(db, &expect));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_then_wal_tail_replayed() {
        let dir = scratch("snap_tail");
        let (store, mut expect) = populated(&dir, 4);
        let info = store.persist().unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(info.entries, 4);
        assert_eq!(store.appends_since_snapshot(), 0);
        for i in 4..7 {
            let v = vector_for(i);
            store.insert(i, (i * 7) as u64, v.clone()).unwrap();
            expect.push((i, (i * 7) as u64, v));
        }
        assert_eq!(store.appends_since_snapshot(), 3);
        drop(store);
        let back = DurableDb::<u64>::open(&dir, StoreConfig::default()).unwrap();
        back.shared()
            .with_read(|db| assert_entries_identical(db, &expect));
        let stats = back.stats().unwrap();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.entries, 7);
        assert!(stats.snapshot_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_rotation_and_multi_segment_replay() {
        let dir = scratch("rotate");
        let config = StoreConfig {
            max_segment_bytes: 1024,
            fsync_on_commit: false,
        };
        let store = DurableDb::<u64>::create(&dir, 3, config.clone()).unwrap();
        let mut expect = Vec::new();
        for i in 0..40 {
            let v = vector_for(i);
            store.insert(i, i as u64, v.clone()).unwrap();
            expect.push((i, i as u64, v));
        }
        drop(store);
        let (_, segments) = list_store_files(&dir).unwrap();
        assert!(segments.len() > 1, "expected rotation to multiple segments");
        let back = DurableDb::<u64>::open(&dir, config).unwrap();
        back.shared()
            .with_read(|db| assert_entries_identical(db, &expect));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_reclaims_and_preserves() {
        let dir = scratch("compact");
        let config = StoreConfig {
            max_segment_bytes: 1024,
            fsync_on_commit: false,
        };
        let store = DurableDb::<u64>::create(&dir, 3, config.clone()).unwrap();
        let mut expect = Vec::new();
        for i in 0..30 {
            let v = vector_for(i);
            store.insert(i, i as u64, v.clone()).unwrap();
            expect.push((i, i as u64, v));
        }
        store.persist().unwrap();
        for i in 30..35 {
            let v = vector_for(i);
            store.insert(i, i as u64, v.clone()).unwrap();
            expect.push((i, i as u64, v));
        }
        let info = store.compact().unwrap();
        assert_eq!(info.generation, 2);
        assert_eq!(info.entries, 35);
        assert!(info.files_removed > 0);
        assert!(info.bytes_reclaimed > 0);
        let (snapshots, segments) = list_store_files(&dir).unwrap();
        assert!(snapshots.iter().all(|&(g, _)| g == 2));
        assert!(segments.iter().all(|&(g, _, _)| g == 2));
        drop(store);
        let back = DurableDb::<u64>::open(&dir, config).unwrap();
        back.shared()
            .with_read(|db| assert_entries_identical(db, &expect));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_into_grafts_onto_model_db() {
        let dir = scratch("graft");
        // "Training" entries live only in the model db.
        let mut model_db: FeatureDb<u64> = FeatureDb::new(3);
        model_db.insert(0, 100, vec![1.0, 2.0, 3.0]).unwrap();
        model_db.insert(1, 101, vec![4.0, 5.0, 6.0]).unwrap();
        let shared = SharedDb::new(model_db);

        let store =
            DurableDb::open_or_create_into(&dir, StoreConfig::default(), shared.clone()).unwrap();
        // Ingest starts above the model's ids.
        assert_eq!(store.next_id(), 2);
        store.insert(2, 200, vector_for(2)).unwrap();
        // Colliding with a model training id is rejected.
        assert!(matches!(
            store.insert(0, 9, vector_for(0)),
            Err(StoreError::Db(DbError::DuplicateId { id: 0 }))
        ));
        assert_eq!(shared.len(), 3);
        assert_eq!(store.len(), 1);
        drop(store);

        // Restart: a fresh model db, the store replays only its own
        // entries into it.
        let mut model_db2: FeatureDb<u64> = FeatureDb::new(3);
        model_db2.insert(0, 100, vec![1.0, 2.0, 3.0]).unwrap();
        model_db2.insert(1, 101, vec![4.0, 5.0, 6.0]).unwrap();
        let shared2 = SharedDb::new(model_db2);
        let store2 =
            DurableDb::open_or_create_into(&dir, StoreConfig::default(), shared2.clone()).unwrap();
        assert_eq!(store2.len(), 1);
        assert_eq!(shared2.len(), 3);
        shared2.with_read(|db| {
            let e = db.get(2).unwrap();
            assert_eq!(e.meta, 200);
            for (a, b) in e.vector.iter().zip(&vector_for(2)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebind_moves_entries_to_next_db() {
        let dir = scratch("rebind");
        let (store, _) = populated(&dir, 3);
        let next = SharedDb::new(FeatureDb::new(3));
        store.rebind(next.clone()).unwrap();
        assert_eq!(next.len(), 3);
        store.insert(50, 5, vector_for(5)).unwrap();
        assert_eq!(next.len(), 4);
        // Mismatched dimensionality is rejected before any mutation.
        let wrong = SharedDb::new(FeatureDb::<u64>::new(2));
        assert!(store.rebind(wrong).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validation_and_lifecycle_errors() {
        let dir = scratch("errors");
        assert!(matches!(
            DurableDb::<u64>::open(&dir.join("nope"), StoreConfig::default()),
            Err(StoreError::Io { .. } | StoreError::NotAStore { .. })
        ));
        let store = DurableDb::<u64>::create(&dir, 3, StoreConfig::default()).unwrap();
        assert!(matches!(
            DurableDb::<u64>::create(&dir, 3, StoreConfig::default()),
            Err(StoreError::AlreadyExists { .. })
        ));
        assert!(store.insert(0, 0, vec![1.0]).is_err()); // wrong dim
        assert!(store.insert(0, 0, vec![f64::NAN, 0.0, 0.0]).is_err());
        store.insert(0, 0, vector_for(0)).unwrap();
        assert!(matches!(
            store.insert(0, 1, vector_for(1)),
            Err(StoreError::Db(DbError::DuplicateId { id: 0 }))
        ));
        assert!(DurableDb::<u64>::create(&scratch("dim0"), 0, StoreConfig::default()).is_err());
        assert!(StoreConfig {
            max_segment_bytes: 10,
            fsync_on_commit: true
        }
        .validate()
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_only_recovery_after_lost_segment_rotation() {
        // Crash window: snapshot renamed, but the fresh segment for the
        // new generation was never created. Recovery must come up on the
        // snapshot alone and recreate the active segment.
        let dir = scratch("lost_rotation");
        let (store, expect) = populated(&dir, 4);
        store.persist().unwrap();
        drop(store);
        // Delete the generation-1 segment, keeping the gen-0 one (it is
        // fully covered by the snapshot and must be ignored).
        let (_, segments) = list_store_files(&dir).unwrap();
        for (g, _, p) in &segments {
            if *g == 1 {
                std::fs::remove_file(p).unwrap();
            }
        }
        let back = DurableDb::<u64>::open(&dir, StoreConfig::default()).unwrap();
        back.shared()
            .with_read(|db| assert_entries_identical(db, &expect));
        let stats = back.stats().unwrap();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.segments, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_hook_sees_every_insert_in_order_with_wal_bytes() {
        let dir = scratch("hook");
        let store = DurableDb::<u64>::create(&dir, 3, StoreConfig::default()).unwrap();
        type SeenCommits = std::sync::Arc<Mutex<Vec<(u64, Vec<u8>)>>>;
        let seen: SeenCommits = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&seen);
        store.set_commit_hook(Some(Box::new(move |seq, payload| {
            sink.lock().push((seq, payload.to_vec()));
        })));
        for i in 0..4 {
            store.insert(i, (i * 7) as u64, vector_for(i)).unwrap();
        }
        assert_eq!(store.entry_seq(), 4);
        {
            let got = seen.lock();
            assert_eq!(got.len(), 4);
            for (i, (seq, payload)) in got.iter().enumerate() {
                assert_eq!(*seq, (i + 1) as u64, "hook must fire in commit order");
                let expect = encode_entry(i, &((i * 7) as u64), &vector_for(i));
                assert_eq!(payload, &expect, "hook payload must be the WAL bytes");
            }
        }
        // Clearing the hook stops the stream.
        store.set_commit_hook(None);
        store.insert(9, 9, vector_for(9)).unwrap();
        assert_eq!(seen.lock().len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encoded_entries_from_streams_history_across_snapshots() {
        let dir = scratch("stream_history");
        let (store, expect) = populated(&dir, 5);
        // Snapshot mid-stream: streamed history must be unaffected — the
        // logical sequence covers snapshot-covered entries too.
        store.persist().unwrap();
        for i in 5..8 {
            store.insert(i, (i * 7) as u64, vector_for(i)).unwrap();
        }
        assert_eq!(store.entry_seq(), 8);

        let all = store.encoded_entries_from(0);
        assert_eq!(all.len(), 8);
        for (i, (seq, payload)) in all.iter().enumerate() {
            assert_eq!(*seq, (i + 1) as u64);
            let expect_payload = encode_entry(i, &((i * 7) as u64), &vector_for(i));
            assert_eq!(payload, &expect_payload, "seq {seq} payload mismatch");
        }
        // A caught-up-to-5 follower asks for the tail only.
        let tail = store.encoded_entries_from(5);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].0, 6);
        assert_eq!(tail[2].0, 8);
        // Fully caught up ⇒ empty.
        assert!(store.encoded_entries_from(8).is_empty());
        drop(store);

        // Restart: sequence numbering is stable across recovery.
        let back = DurableDb::<u64>::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(back.entry_seq(), 8);
        let again = back.encoded_entries_from(0);
        assert_eq!(again, all, "recovery must preserve commit order");
        let _ = expect;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_without_snapshot_is_corrupt() {
        let dir = scratch("missing_snap");
        let (store, _) = populated(&dir, 2);
        store.persist().unwrap();
        drop(store);
        // Delete the snapshot out from under its segments.
        let (snapshots, _) = list_store_files(&dir).unwrap();
        for (_, p) in &snapshots {
            std::fs::remove_file(p).unwrap();
        }
        assert!(matches!(
            DurableDb::<u64>::open(&dir, StoreConfig::default()),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
