//! Segmented append-only write-ahead log.
//!
//! A segment file `wal-<generation>-<seq>.log` is a header frame followed
//! by entry frames (see [`crate::record`]). `generation` is the snapshot
//! generation the segment builds on; `seq` orders segments within a
//! generation. Appends are framed, written, flushed, and (by default)
//! `fdatasync`ed before the insert is acknowledged — the WAL is the
//! commit point.
//!
//! Recovery reads a segment strictly: any invalid frame in a non-final
//! segment is corruption. Only the *final* segment may end in an invalid
//! frame — the signature of a torn write at the moment of a crash — and
//! there the file is physically truncated back to its last valid frame
//! boundary so the next append continues from clean bytes.

use crate::error::{io_err, Result, StoreError};
use crate::record::{read_frame, write_frame, FrameRead, Reader};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment header.
pub const SEGMENT_MAGIC: [u8; 4] = *b"KWAL";
/// On-disk format version of the segment layout.
pub const SEGMENT_VERSION: u16 = 1;

/// Metadata at the head of every segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Snapshot generation this segment's appends build on.
    pub generation: u64,
    /// Order of this segment within its generation (1-based).
    pub seq: u64,
    /// Vector dimensionality of every entry in the segment.
    pub dim: u32,
}

impl SegmentHeader {
    /// Encodes the header as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 2 + 8 + 8 + 4);
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out
    }

    /// Decodes a header frame payload; `None` on any mismatch.
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut r = Reader::new(payload);
        if r.bytes(4)? != SEGMENT_MAGIC {
            return None;
        }
        if r.u16()? != SEGMENT_VERSION {
            return None;
        }
        let generation = r.u64()?;
        let seq = r.u64()?;
        let dim = r.u32()?;
        (r.remaining() == 0).then_some(Self {
            generation,
            seq,
            dim,
        })
    }
}

/// File name for a segment: `wal-<gen:06>-<seq:06>.log`.
pub fn segment_file_name(generation: u64, seq: u64) -> String {
    format!("wal-{generation:06}-{seq:06}.log")
}

/// Parses a segment file name back into `(generation, seq)`.
pub fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (g, s) = rest.split_once('-')?;
    Some((g.parse().ok()?, s.parse().ok()?))
}

/// `fsync` a directory so a just-created or just-renamed file inside it
/// survives a crash of the directory entry itself.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    let d = File::open(dir).map_err(|e| io_err(dir, e))?;
    d.sync_all().map_err(|e| io_err(dir, e))
}

/// An open segment accepting appends.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
    header: SegmentHeader,
}

impl SegmentWriter {
    /// Creates a fresh segment: writes the header frame, fsyncs the file
    /// and its directory.
    pub fn create(dir: &Path, header: SegmentHeader) -> Result<Self> {
        let path = dir.join(segment_file_name(header.generation, header.seq));
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        write_frame(&mut file, &path, &header.encode())?;
        file.sync_all().map_err(|e| io_err(&path, e))?;
        sync_dir(dir)?;
        let bytes = file.metadata().map_err(|e| io_err(&path, e))?.len();
        Ok(Self {
            file,
            path,
            bytes,
            header,
        })
    }

    /// Reopens an existing, already-validated segment for append at
    /// `valid_len` (the recovery-determined end of its last good frame).
    pub fn reopen(path: &Path, header: SegmentHeader, valid_len: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            bytes: valid_len,
            header,
        })
    }

    /// Appends one frame; when `fsync` is set the write is `fdatasync`ed
    /// before returning — the caller may then acknowledge the commit.
    pub fn append(&mut self, payload: &[u8], fsync: bool) -> Result<()> {
        write_frame(&mut self.file, &self.path, payload)?;
        self.file.flush().map_err(|e| io_err(&self.path, e))?;
        if fsync {
            self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        }
        self.bytes += (crate::record::FRAME_HEADER_BYTES + payload.len()) as u64;
        Ok(())
    }

    /// Bytes written to this segment (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// This segment's header.
    pub fn header(&self) -> SegmentHeader {
        self.header
    }

    /// Path of the segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The parsed contents of one segment file.
#[derive(Debug)]
pub struct SegmentContents {
    /// The validated header, if the header frame itself was readable.
    pub header: Option<SegmentHeader>,
    /// Validated entry frame payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte offset just past the last valid frame — the truncation point
    /// for a torn tail.
    pub valid_len: u64,
    /// Why reading stopped before a clean EOF, if it did.
    pub invalid_tail: Option<String>,
}

/// Reads and frame-validates a whole segment file. Does not interpret
/// entry payloads and does not modify the file; tail policy is the
/// caller's.
pub fn read_segment(path: &Path) -> Result<SegmentContents> {
    let buf = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let (header, mut offset) = match read_frame(&buf, 0) {
        FrameRead::Frame { payload, consumed } => match SegmentHeader::decode(&payload) {
            Some(h) => (Some(h), consumed),
            None => {
                return Err(StoreError::Corrupt {
                    path: path.to_path_buf(),
                    offset: 0,
                    reason: "segment header frame is not a KWAL v1 header".into(),
                })
            }
        },
        FrameRead::Eof | FrameRead::Invalid { .. } => {
            // A torn header: the crash hit before the very first fsync of
            // this segment. No entries can follow an unreadable header.
            return Ok(SegmentContents {
                header: None,
                payloads: Vec::new(),
                valid_len: 0,
                invalid_tail: Some("segment header torn or missing".into()),
            });
        }
    };
    let mut payloads = Vec::new();
    let mut invalid_tail = None;
    loop {
        match read_frame(&buf, offset) {
            FrameRead::Frame { payload, consumed } => {
                payloads.push(payload);
                offset += consumed;
            }
            FrameRead::Eof => break,
            FrameRead::Invalid { reason } => {
                invalid_tail = Some(reason);
                break;
            }
        }
    }
    Ok(SegmentContents {
        header,
        payloads,
        valid_len: offset as u64,
        invalid_tail,
    })
}

/// Physically truncates `path` to `len` and syncs, discarding a torn tail.
pub fn truncate_segment(path: &Path, len: u64) -> Result<()> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    file.set_len(len).map_err(|e| io_err(path, e))?;
    file.sync_all().map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode_frame;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("kinemyo_wal_{tag}_{}_{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn header_roundtrip_and_rejections() {
        let h = SegmentHeader {
            generation: 3,
            seq: 9,
            dim: 16,
        };
        let enc = h.encode();
        assert_eq!(SegmentHeader::decode(&enc), Some(h));
        assert_eq!(SegmentHeader::decode(&enc[..enc.len() - 1]), None);
        let mut bad_magic = enc.clone();
        bad_magic[0] = b'X';
        assert_eq!(SegmentHeader::decode(&bad_magic), None);
        let mut bad_version = enc.clone();
        bad_version[4] = 0xEE;
        assert_eq!(SegmentHeader::decode(&bad_version), None);
    }

    #[test]
    fn segment_names() {
        assert_eq!(segment_file_name(0, 1), "wal-000000-000001.log");
        assert_eq!(parse_segment_name("wal-000002-000013.log"), Some((2, 13)));
        assert_eq!(parse_segment_name("wal-junk.log"), None);
        assert_eq!(parse_segment_name("snap-000001.db"), None);
        assert_eq!(parse_segment_name("wal-000001-000001.tmp"), None);
    }

    #[test]
    fn create_append_read_roundtrip() {
        let dir = scratch("roundtrip");
        let header = SegmentHeader {
            generation: 0,
            seq: 1,
            dim: 2,
        };
        let mut w = SegmentWriter::create(&dir, header).unwrap();
        w.append(b"first", true).unwrap();
        w.append(b"second", false).unwrap();
        let contents = read_segment(w.path()).unwrap();
        assert_eq!(contents.header, Some(header));
        assert_eq!(
            contents.payloads,
            vec![b"first".to_vec(), b"second".to_vec()]
        );
        assert!(contents.invalid_tail.is_none());
        assert_eq!(contents.valid_len, w.bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_detected_and_truncated() {
        let dir = scratch("torn");
        let header = SegmentHeader {
            generation: 0,
            seq: 1,
            dim: 2,
        };
        let mut w = SegmentWriter::create(&dir, header).unwrap();
        w.append(b"keep-me", true).unwrap();
        let keep_len = w.bytes();
        let path = w.path().to_path_buf();
        drop(w);
        // Simulate a torn write: append half a frame by hand.
        let mut torn = Vec::new();
        encode_frame(b"lost-to-the-crash", &mut torn);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_segment(&path).unwrap();
        assert_eq!(contents.payloads, vec![b"keep-me".to_vec()]);
        assert_eq!(contents.valid_len, keep_len);
        assert!(contents.invalid_tail.is_some());

        truncate_segment(&path, contents.valid_len).unwrap();
        let clean = read_segment(&path).unwrap();
        assert!(clean.invalid_tail.is_none());
        assert_eq!(clean.payloads.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_yields_empty_contents() {
        let dir = scratch("torn_header");
        let path = dir.join(segment_file_name(0, 1));
        std::fs::write(&path, [0x12, 0x34]).unwrap();
        let contents = read_segment(&path).unwrap();
        assert!(contents.header.is_none());
        assert!(contents.payloads.is_empty());
        assert_eq!(contents.valid_len, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_appending() {
        let dir = scratch("reopen");
        let header = SegmentHeader {
            generation: 1,
            seq: 2,
            dim: 4,
        };
        let mut w = SegmentWriter::create(&dir, header).unwrap();
        w.append(b"one", true).unwrap();
        let path = w.path().to_path_buf();
        let len = w.bytes();
        drop(w);
        let mut r = SegmentWriter::reopen(&path, header, len).unwrap();
        r.append(b"two", true).unwrap();
        let contents = read_segment(&path).unwrap();
        assert_eq!(contents.payloads, vec![b"one".to_vec(), b"two".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
