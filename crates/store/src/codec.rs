//! Binary metadata codec.
//!
//! The store persists `Entry<M>` without serde so that recovery works in
//! any build environment and the wire format is pinned by this crate
//! alone. Metadata types opt in by implementing [`MetaCodec`]: an exact,
//! self-contained little-endian encoding. The contract is a strict
//! round-trip — `decode_meta(encode_meta(m)) == Some(m)` — and decoders
//! must reject trailing or missing bytes with `None` so a corrupted
//! payload can never alias a valid one.

/// Exact binary round-trip codec for entry metadata.
pub trait MetaCodec: Sized {
    /// Appends the encoded form to `out`.
    fn encode_meta(&self, out: &mut Vec<u8>);
    /// Decodes from exactly `bytes`; `None` on any malformation
    /// (checksum integrity is already guaranteed by the frame layer, so
    /// `None` means a format or version mismatch).
    fn decode_meta(bytes: &[u8]) -> Option<Self>;
}

impl MetaCodec for () {
    fn encode_meta(&self, _out: &mut Vec<u8>) {}
    fn decode_meta(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

impl MetaCodec for u64 {
    fn encode_meta(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode_meta(bytes: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = bytes.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }
}

impl MetaCodec for usize {
    fn encode_meta(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_meta(out);
    }
    fn decode_meta(bytes: &[u8]) -> Option<Self> {
        u64::decode_meta(bytes).map(|v| v as usize)
    }
}

impl MetaCodec for String {
    fn encode_meta(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_meta(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: MetaCodec + PartialEq + std::fmt::Debug>(m: M) {
        let mut buf = Vec::new();
        m.encode_meta(&mut buf);
        assert_eq!(M::decode_meta(&buf), Some(m));
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(String::from("raise-arm/participant 3"));
        roundtrip(String::new());
    }

    #[test]
    fn wrong_lengths_rejected() {
        assert_eq!(<()>::decode_meta(&[1]), None);
        assert_eq!(u64::decode_meta(&[0; 7]), None);
        assert_eq!(u64::decode_meta(&[0; 9]), None);
        assert_eq!(String::decode_meta(&[0xFF, 0xFE]), None);
    }
}
