//! # kinemyo-store
//!
//! A crash-safe, append-only embedded storage engine for motion feature
//! vectors — the durability layer under the paper's growing retrieval
//! database (Sec. 4). The in-memory [`kinemyo_modb::FeatureDb`] holds the
//! `2c`-length motion vectors; this crate makes a live-ingesting daemon
//! survive restarts and power cuts without losing an acknowledged insert.
//!
//! * [`record`] — the CRC32-checked, length-prefixed frame codec and the
//!   self-contained little-endian entry payload (bit-exact `f64` via
//!   [`f64::to_bits`]);
//! * [`codec`] — the [`MetaCodec`] trait entry metadata implements to
//!   ride in those payloads without serde;
//! * [`wal`] — segmented append-only write-ahead log: fsync-on-commit
//!   appends, strict validation, torn-tail truncation on recovery;
//! * [`snapshot`] — generation-numbered full snapshots written
//!   temp-then-rename, the base compaction reclaims WAL segments against;
//! * [`durable`] — [`DurableDb`]: the facade that logs every insert
//!   before it becomes visible in a [`kinemyo_modb::SharedDb`] and
//!   replays snapshot + WAL tail into bit-identical state at startup.
//!
//! The on-disk formats and recovery invariants are specified in
//! DESIGN.md §12.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod durable;
pub mod error;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use codec::MetaCodec;
pub use durable::{CommitHook, CompactInfo, DurableDb, SnapshotInfo, StoreConfig, StoreStats};
pub use error::{Result, StoreError};
pub use record::{crc32, FrameRead, MAX_FRAME_BYTES};
