//! The length-prefixed, CRC32-checked frame codec and the binary entry
//! payload layout shared by WAL segments and snapshots.
//!
//! A frame on disk is `len: u32 LE | crc: u32 LE | payload: len bytes`,
//! where `crc` is the IEEE CRC-32 of the payload. Everything the engine
//! writes — segment headers, inserts, snapshot headers, snapshot entries —
//! is one frame, so torn-write detection is uniform: a frame whose length
//! prefix, payload bytes, or checksum cannot be satisfied is invalid, and
//! whether that is tolerated (WAL tail) or fatal (anywhere else) is the
//! caller's policy, not the codec's.
//!
//! Payloads are self-contained little-endian binary — no serde, so
//! recovery has zero dependencies and `f64` vectors round-trip via
//! [`f64::to_bits`] bit-identically.

use crate::codec::MetaCodec;
use crate::error::{io_err, Result, StoreError};
use kinemyo_modb::Entry;
use std::io::Write;
use std::path::Path;

/// Upper bound on a single frame payload; anything larger is treated as
/// corruption rather than honoured with a giant allocation.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Bytes of frame overhead ahead of every payload (length + checksum).
pub const FRAME_HEADER_BYTES: usize = 8;

const CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/PNG polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends one frame (header + payload) to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Writes one frame to `w`, mapping failures to [`StoreError::Io`] against
/// `path`.
pub fn write_frame(w: &mut impl Write, path: &Path, payload: &[u8]) -> Result<()> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    encode_frame(payload, &mut buf);
    w.write_all(&buf).map_err(|e| io_err(path, e))
}

/// Outcome of reading one frame from a byte buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete, checksum-valid frame: payload plus total bytes
    /// consumed (header + payload).
    Frame {
        /// The validated payload.
        payload: Vec<u8>,
        /// Header + payload size — advance the cursor by this much.
        consumed: usize,
    },
    /// The buffer ends exactly at `offset`: a clean end of file.
    Eof,
    /// The bytes at this offset are not a valid frame (short header,
    /// oversized or short payload, or CRC mismatch) — a torn write if
    /// this is the tail of the active WAL segment, corruption anywhere
    /// else.
    Invalid {
        /// What failed to validate.
        reason: String,
    },
}

/// Reads the frame starting at `offset` in `buf`.
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead {
    let rest = buf.get(offset..).unwrap_or(&[]);
    if rest.is_empty() {
        return FrameRead::Eof;
    }
    if rest.len() < FRAME_HEADER_BYTES {
        return FrameRead::Invalid {
            reason: format!("{} trailing bytes, frame header needs 8", rest.len()),
        };
    }
    let mut len4 = [0u8; 4];
    let mut crc4 = [0u8; 4];
    len4.copy_from_slice(&rest[..4]);
    crc4.copy_from_slice(&rest[4..8]);
    let len = u32::from_le_bytes(len4);
    let want_crc = u32::from_le_bytes(crc4);
    if len > MAX_FRAME_BYTES {
        return FrameRead::Invalid {
            reason: format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        };
    }
    let len = len as usize;
    let Some(payload) = rest.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len) else {
        return FrameRead::Invalid {
            reason: format!(
                "frame claims {len} payload bytes, only {} present",
                rest.len() - FRAME_HEADER_BYTES
            ),
        };
    };
    let got_crc = crc32(payload);
    if got_crc != want_crc {
        return FrameRead::Invalid {
            reason: format!("crc mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"),
        };
    }
    FrameRead::Frame {
        payload: payload.to_vec(),
        consumed: FRAME_HEADER_BYTES + len,
    }
}

/// A little-endian cursor over a validated frame payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u16(&mut self) -> Option<u16> {
        let s = self.take(2)?;
        let mut b = [0u8; 2];
        b.copy_from_slice(s);
        Some(u16::from_le_bytes(b))
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Some(u32::from_le_bytes(b))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Some(u64::from_le_bytes(b))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        self.take(n)
    }
}

/// Operation tag of an entry payload (the only record kind today; the tag
/// leaves room for deletes/updates without a format bump).
pub(crate) const OP_INSERT: u8 = 1;

/// Encodes one database entry as a frame payload:
/// `op: u8 | id: u64 | vec_len: u32 | vec_len × f64-bits u64 | meta_len:
/// u32 | meta bytes`.
pub fn encode_entry<M: MetaCodec>(id: usize, meta: &M, vector: &[f64]) -> Vec<u8> {
    let mut meta_buf = Vec::new();
    meta.encode_meta(&mut meta_buf);
    let mut out = Vec::with_capacity(1 + 8 + 4 + vector.len() * 8 + 4 + meta_buf.len());
    out.push(OP_INSERT);
    out.extend_from_slice(&(id as u64).to_le_bytes());
    out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
    for v in vector {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(meta_buf.len() as u32).to_le_bytes());
    out.extend_from_slice(&meta_buf);
    out
}

/// Decodes an entry payload produced by [`encode_entry`]. `path`/`offset`
/// only label the error.
pub fn decode_entry<M: MetaCodec>(payload: &[u8], path: &Path, offset: u64) -> Result<Entry<M>> {
    let corrupt = |reason: String| StoreError::Corrupt {
        path: path.to_path_buf(),
        offset,
        reason,
    };
    let mut r = Reader::new(payload);
    let op = r
        .u8()
        .ok_or_else(|| corrupt("empty entry payload".into()))?;
    if op != OP_INSERT {
        return Err(corrupt(format!("unknown record op {op}")));
    }
    let id = r
        .u64()
        .ok_or_else(|| corrupt("entry payload truncated at id".into()))?;
    let vec_len = r
        .u32()
        .ok_or_else(|| corrupt("entry payload truncated at vector length".into()))?
        as usize;
    // Cap before the remaining-bytes check: `vec_len * 8` must not be
    // trusted arithmetic on an attacker-supplied u32 (it would wrap on a
    // 32-bit usize), and the allocation below must never exceed what a
    // framed payload could legitimately carry.
    if vec_len > MAX_FRAME_BYTES as usize / 8 {
        return Err(corrupt(format!(
            "entry claims {vec_len} vector components, exceeding the frame cap"
        )));
    }
    if r.remaining() < vec_len * 8 {
        return Err(corrupt(format!(
            "entry claims {vec_len} vector components, {} payload bytes remain",
            r.remaining()
        )));
    }
    let mut vector = Vec::with_capacity(vec_len);
    for _ in 0..vec_len {
        let bits = r
            .u64()
            .ok_or_else(|| corrupt("entry payload truncated in vector".into()))?;
        vector.push(f64::from_bits(bits));
    }
    let meta_len = r
        .u32()
        .ok_or_else(|| corrupt("entry payload truncated at meta length".into()))?
        as usize;
    let meta_bytes = r
        .bytes(meta_len)
        .ok_or_else(|| corrupt(format!("entry claims {meta_len} meta bytes, payload short")))?;
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "{} unexpected trailing bytes after entry",
            r.remaining()
        )));
    }
    let meta = M::decode_meta(meta_bytes)
        .ok_or_else(|| corrupt("metadata bytes failed to decode".into()))?;
    Ok(Entry {
        id: id as usize,
        meta,
        vector,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"", &mut buf);
        match read_frame(&buf, 0) {
            FrameRead::Frame { payload, consumed } => {
                assert_eq!(payload, b"hello");
                assert_eq!(consumed, 13);
                match read_frame(&buf, consumed) {
                    FrameRead::Frame { payload, consumed } => {
                        assert_eq!(payload, b"");
                        assert_eq!(consumed, 8);
                    }
                    other => panic!("expected empty frame, got {other:?}"),
                }
            }
            other => panic!("expected frame, got {other:?}"),
        }
        assert_eq!(read_frame(&buf, buf.len()), FrameRead::Eof);
    }

    #[test]
    fn every_truncation_is_invalid_not_misread() {
        let mut buf = Vec::new();
        encode_frame(&[7u8; 20], &mut buf);
        for cut in 1..buf.len() {
            match read_frame(&buf[..cut], 0) {
                FrameRead::Invalid { .. } => {}
                other => panic!("cut {cut} read as {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_byte_fails_crc() {
        let mut buf = Vec::new();
        encode_frame(b"payload-bytes", &mut buf);
        for i in FRAME_HEADER_BYTES..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(read_frame(&bad, 0), FrameRead::Invalid { .. }),
                "flip at {i} not caught"
            );
        }
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0];
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(read_frame(&buf, 0), FrameRead::Invalid { .. }));
    }

    #[test]
    fn entry_roundtrip_bit_identical() {
        let vector = vec![
            0.1,
            -0.0,
            f64::MIN_POSITIVE / 2.0, // subnormal
            1.0e308,
            -3.25,
        ];
        let payload = encode_entry(99, &7u64, &vector);
        let back: Entry<u64> = decode_entry(&payload, &PathBuf::from("t"), 0).unwrap();
        assert_eq!(back.id, 99);
        assert_eq!(back.meta, 7);
        assert_eq!(back.vector.len(), vector.len());
        for (a, b) in vector.iter().zip(&back.vector) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn entry_decode_rejects_malformed() {
        let p = PathBuf::from("t");
        assert!(decode_entry::<u64>(&[], &p, 0).is_err());
        assert!(decode_entry::<u64>(&[9], &p, 0).is_err()); // unknown op
        let good = encode_entry(1, &2u64, &[1.0]);
        assert!(decode_entry::<u64>(&good[..good.len() - 1], &p, 0).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_entry::<u64>(&trailing, &p, 0).is_err());
    }
}
