//! Trained-model persistence.
//!
//! A clinic or prosthetic controller trains once on a motion database and
//! then classifies for days — retraining FCM on every restart would be
//! absurd. [`MotionClassifier::save_json`] / [`MotionClassifier::load_json`]
//! serialize the complete trained state: configuration, window plan,
//! feature scaler, fuzzy centers, and the motion feature database.

use crate::error::{KinemyoError, Result};
use crate::pipeline::{MotionClassifier, RecordMeta};
use kinemyo_biosim::Limb;
use kinemyo_dsp::WindowSpec;
use kinemyo_fuzzy::FcmModel;
use kinemyo_linalg::stats::ZScore;
use kinemyo_modb::FeatureDb;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk representation of a trained model (format-versioned).
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct SavedModel {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Training configuration.
    pub config: crate::config::PipelineConfig,
    /// Limb the model was trained for.
    pub limb: Limb,
    /// Window segmentation.
    pub window: WindowSpec,
    /// Feature scaler (None when standardization was disabled).
    pub scaler: Option<ZScore>,
    /// Fuzzy clustering state.
    pub fcm: FcmModel,
    /// Stored motion vectors.
    pub db: FeatureDb<RecordMeta>,
}

/// Current save-format version.
pub(crate) const FORMAT_VERSION: u32 = 1;

impl MotionClassifier {
    /// Saves the trained model as JSON at `path`.
    ///
    /// The write is atomic: the JSON goes to `<path>.tmp`, is fsynced,
    /// and is renamed over `path` — a crash mid-save leaves either the
    /// previous model or the new one, never a truncated file.
    pub fn save_json(&self, path: &Path) -> Result<()> {
        let saved = self.to_saved();
        let json = serde_json::to_string(&saved).map_err(|e| KinemyoError::InvalidConfig {
            reason: format!("model serialization failed: {e}"),
        })?;
        let tmp = path.with_extension(match path.extension() {
            Some(ext) => format!("{}.tmp", ext.to_string_lossy()),
            None => "tmp".to_string(),
        });
        let write_err = |e: std::io::Error, p: &Path| KinemyoError::InvalidConfig {
            reason: format!("could not write {}: {e}", p.display()),
        };
        let mut file = std::fs::File::create(&tmp).map_err(|e| write_err(e, &tmp))?;
        use std::io::Write;
        file.write_all(json.as_bytes())
            .map_err(|e| write_err(e, &tmp))?;
        file.sync_all().map_err(|e| write_err(e, &tmp))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| write_err(e, path))?;
        // Make the rename itself durable where the platform allows it;
        // the model file is already safe on disk either way.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                d.sync_all().ok();
            }
        }
        Ok(())
    }

    /// Loads a model previously written by [`MotionClassifier::save_json`].
    ///
    /// Failure modes are typed: a missing/unreadable file, a truncated or
    /// non-JSON artifact ([`KinemyoError::ModelFormat`]), and a format
    /// version from a different build
    /// ([`KinemyoError::ModelVersionMismatch`], carrying both the found
    /// and the expected version) are all distinguishable by the caller —
    /// a serving daemon keeps its current model and reports the reason
    /// instead of dying on an opaque serde message.
    pub fn load_json(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path).map_err(|e| KinemyoError::ModelFormat {
            reason: format!("could not read {}: {e}", path.display()),
        })?;
        // Peek at the version before strict decoding so a model written
        // by a newer build reports a version mismatch (with both
        // numbers), not a shape error about whatever field changed.
        #[derive(Deserialize)]
        struct VersionOnly {
            version: u32,
        }
        let head: VersionOnly =
            serde_json::from_str(&json).map_err(|e| KinemyoError::ModelFormat {
                reason: format!(
                    "{} is truncated or not a kinemyo model (JSON error: {e})",
                    path.display()
                ),
            })?;
        if head.version != FORMAT_VERSION {
            return Err(KinemyoError::ModelVersionMismatch {
                found: head.version,
                expected: FORMAT_VERSION,
            });
        }
        let saved: SavedModel =
            serde_json::from_str(&json).map_err(|e| KinemyoError::ModelFormat {
                reason: format!(
                    "{} is truncated or not a kinemyo model (JSON error: {e})",
                    path.display()
                ),
            })?;
        Self::from_saved(saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use kinemyo_biosim::{Dataset, DatasetSpec, MotionRecord};

    #[test]
    fn save_load_roundtrip_preserves_classification() {
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let config = PipelineConfig::default().with_clusters(8);
        let model = MotionClassifier::train(&refs, Limb::RightHand, &config).unwrap();

        let path = std::env::temp_dir().join("kinemyo_model_roundtrip.json");
        model.save_json(&path).unwrap();
        let loaded = MotionClassifier::load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.limb(), model.limb());
        assert_eq!(loaded.db().len(), model.db().len());
        assert_eq!(loaded.fcm().num_clusters(), 8);
        for r in &ds.records {
            let a = model.classify_record(r).unwrap();
            let b = loaded.classify_record(r).unwrap();
            assert_eq!(a.predicted, b.predicted);
            assert!(a.feature_vector.approx_eq(&b.feature_vector, 0.0));
        }
    }

    #[test]
    fn save_is_atomic_and_leaves_no_tmp_file() {
        if !json_available() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 2)).unwrap();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let model = MotionClassifier::train(
            &refs,
            Limb::RightHand,
            &PipelineConfig::default().with_clusters(5),
        )
        .unwrap();
        let dir = std::env::temp_dir().join("kinemyo_model_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        // Pre-existing file: an interrupted save must never truncate it,
        // and a completed save replaces it wholesale.
        std::fs::write(&path, "{\"previous\": true}").unwrap();
        model.save_json(&path).unwrap();
        assert!(!dir.join("model.json.tmp").exists(), "tmp file left behind");
        let loaded = MotionClassifier::load_json(&path).unwrap();
        assert_eq!(loaded.db().len(), model.db().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage_with_typed_error() {
        let path = std::env::temp_dir().join("kinemyo_model_garbage.json");
        std::fs::write(&path, "{\"not\": \"a model\"}").unwrap();
        let err = MotionClassifier::load_json(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, KinemyoError::ModelFormat { .. }), "{err}");
        let err = MotionClassifier::load_json(Path::new("/nonexistent/m.json")).unwrap_err();
        assert!(matches!(err, KinemyoError::ModelFormat { .. }), "{err}");
    }

    /// True when the real serde_json backend is linked in; tests that
    /// must *write* a valid model file first skip under the offline
    /// compile-only stub (see `.claude/skills/verify`).
    fn json_available() -> bool {
        serde_json::to_string(&0u32).is_ok()
    }

    #[test]
    fn load_rejects_truncated_file_with_typed_error() {
        if !json_available() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 2)).unwrap();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let model = MotionClassifier::train(
            &refs,
            Limb::RightHand,
            &PipelineConfig::default().with_clusters(5),
        )
        .unwrap();
        let path = std::env::temp_dir().join("kinemyo_model_truncated.json");
        model.save_json(&path).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        let err = MotionClassifier::load_json(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            KinemyoError::ModelFormat { reason } => {
                assert!(reason.contains("truncated"), "{reason}")
            }
            other => panic!("expected ModelFormat, got {other}"),
        }
    }

    #[test]
    fn version_mismatch_reports_found_and_expected() {
        // The Display assertions at the end run everywhere; the
        // file-based path needs a real JSON backend.
        let msg = KinemyoError::ModelVersionMismatch {
            found: 999,
            expected: FORMAT_VERSION,
        }
        .to_string();
        assert!(msg.contains("999"), "{msg}");
        assert!(msg.contains(&FORMAT_VERSION.to_string()), "{msg}");
        if !json_available() {
            eprintln!("skipping file roundtrip: serde_json stub build");
            return;
        }
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 2)).unwrap();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let model = MotionClassifier::train(
            &refs,
            Limb::RightHand,
            &PipelineConfig::default().with_clusters(5),
        )
        .unwrap();
        let mut saved = model.to_saved();
        saved.version = 999;
        let json = serde_json::to_string(&saved).unwrap();
        let path = std::env::temp_dir().join("kinemyo_model_badversion.json");
        std::fs::write(&path, json).unwrap();
        let err = MotionClassifier::load_json(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            KinemyoError::ModelVersionMismatch { found, expected } => {
                assert_eq!(found, 999);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected ModelVersionMismatch, got {other}"),
        }
    }
}
