//! Online (streaming) classification for prosthetic-control-style use.
//!
//! The paper motivates the work with prosthetic control and rehabilitation
//! of a single limb (Sec. 5). A controller cannot wait for a whole
//! recorded motion: it consumes synchronized frames as they arrive, emits
//! a membership assignment per completed window, and can be asked for its
//! best-guess classification at any time using the windows seen so far.

use crate::error::{KinemyoError, Result};
use crate::pipeline::{MotionClassifier, RecordMeta};
use kinemyo_features::extract::{CombinedExtractor, FeatureSpec, WindowedExtractor};
use kinemyo_features::motion_vector::WindowAssignment;
use kinemyo_features::{iav_windows, to_pelvis_local, wsvd_windows, Modality};
use kinemyo_linalg::{Matrix, Vector};
use kinemyo_modb::{classify, Neighbor};

/// Incremental min/max-membership state (Eqs. 7–8 maintained one window
/// at a time). Shared by [`StreamingSession`] and the fault-guarded
/// session in [`crate::guard`], which runs one tracker per modality.
#[derive(Debug, Clone)]
pub(crate) struct MembershipTracker {
    mins: Vec<f64>,
    maxs: Vec<f64>,
    windows: usize,
}

impl MembershipTracker {
    /// A tracker over `clusters` fuzzy clusters with no windows observed.
    pub(crate) fn new(clusters: usize) -> Self {
        Self {
            mins: vec![f64::INFINITY; clusters],
            maxs: vec![0.0; clusters],
            windows: 0,
        }
    }

    /// Folds one window's highest membership into the running min/max.
    pub(crate) fn observe(&mut self, a: WindowAssignment) {
        if a.membership > self.maxs[a.cluster] {
            self.maxs[a.cluster] = a.membership;
        }
        if a.membership < self.mins[a.cluster] {
            self.mins[a.cluster] = a.membership;
        }
        self.windows += 1;
    }

    /// Number of windows observed.
    pub(crate) fn windows(&self) -> usize {
        self.windows
    }

    /// The `2c`-length feature vector over the windows observed so far.
    /// Clusters never visited contribute `(0, 0)` — the INFINITY sentinel
    /// in `mins` must not leak out.
    pub(crate) fn final_vector(&self) -> Vector {
        let c = self.mins.len();
        let mut out = Vec::with_capacity(2 * c);
        for k in 0..c {
            if self.mins[k].is_infinite() {
                out.push(0.0);
                out.push(0.0);
            } else {
                out.push(self.mins[k]);
                out.push(self.maxs[k]);
            }
        }
        Vector::from_vec(out)
    }

    /// Forgets all observed windows.
    pub(crate) fn reset(&mut self) {
        self.mins.fill(f64::INFINITY);
        self.maxs.fill(0.0);
        self.windows = 0;
    }
}

/// Computes one window's feature point under `model`'s modality and
/// returns its highest-membership assignment against the trained centers.
/// The matrices hold exactly the window's frames; for `EmgOnly` models the
/// mocap/pelvis inputs are not read (and vice versa), which is what lets
/// the guard layer classify a window whose other stream is dead.
pub(crate) fn assign_window(
    model: &MotionClassifier,
    mocap: &Matrix,
    pelvis: &Matrix,
    emg: &Matrix,
) -> Result<WindowAssignment> {
    let frames = match model.config().modality {
        Modality::EmgOnly => emg.rows(),
        _ => mocap.rows(),
    };
    let range = [(0usize, frames)];
    let mut point: Vec<f64> = match model.config().modality {
        Modality::EmgOnly => iav_windows(emg, &range)?.row(0).to_vec(),
        Modality::MocapOnly => {
            let local = to_pelvis_local(mocap, pelvis)?;
            wsvd_windows(&local, &range)?.row(0).to_vec()
        }
        Modality::Combined => {
            let mut p = iav_windows(emg, &range)?.row(0).to_vec();
            let local = to_pelvis_local(mocap, pelvis)?;
            p.extend_from_slice(wsvd_windows(&local, &range)?.row(0));
            p
        }
    };
    model.scale_point(&mut point)?;
    let u = model.fcm().memberships_for(&point)?;
    let mut cluster = 0;
    for (i, &v) in u.iter().enumerate() {
        if v > u[cluster] {
            cluster = i;
        }
    }
    Ok(WindowAssignment {
        cluster,
        membership: u[cluster],
    })
}

/// One completed window's classification against the trained centers,
/// plus how decisively it was won.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowOutcome {
    /// The window's highest-membership cluster assignment.
    pub assignment: WindowAssignment,
    /// Membership margin: top membership minus runner-up membership
    /// (1.0 for a single-cluster model). Near `0` the window sat between
    /// clusters; near `1` the assignment was unambiguous. The session
    /// layer uses the rolling mean margin to pick a per-stream winner
    /// among concurrent window lengths and to detect distribution drift.
    pub margin: f64,
}

/// The owned per-stream window engine: a persistent incremental
/// [`CombinedExtractor`] plus membership/margin state, with every method
/// parameterized on the model so callers can hold the engine across
/// model swaps (`Arc` snapshots, hot reload) without a borrow.
///
/// Frames are folded into the extractor with O(d) accumulator updates
/// per frame, no window re-buffering, and a warm-started per-joint
/// eigensolve at each window boundary. Because the batch training/query
/// path pushes the same rows through the same extractor, a clean stream
/// reproduces the batch feature vector *bitwise* — and the guard layer's
/// clean path ([`crate::guard::GuardedSession`]) now runs on this same
/// engine, so offline `evaluate_guarded` and a live wire session agree
/// bit for bit on clean streams.
///
/// The engine does not pin the model: each call takes `&MotionClassifier`.
/// Callers that rebind mid-stream (the serve layer's `rebind` reload
/// policy) must keep limb and modality compatible; the per-call
/// validation enforces arity, and the membership dimensions are checked
/// by the FCM layer.
#[derive(Debug)]
pub struct SessionCore {
    extractor: CombinedExtractor,
    modality: Modality,
    window_len: usize,
    row_buf: Vec<f64>,
    u_buf: Vec<f64>,
    d2_buf: Vec<f64>,
    tracker: MembershipTracker,
    assignments: Vec<WindowAssignment>,
    margin_sum: f64,
}

impl SessionCore {
    /// An engine matched to the model's trained window length.
    pub fn for_model(model: &MotionClassifier) -> Self {
        // WindowSpec guarantees len >= 1 and Limb::mocap_cols is a
        // multiple of 3 — the only two ways with_window_len can fail.
        Self::with_window_len(model, model.window().len())
            .expect("model invariants satisfy the feature spec")
    }

    /// An engine over an alternative window length (a multi-window
    /// "arm"). IAV and WSVD feature dimensions depend only on channel
    /// and joint counts, so points from any window length score against
    /// the same trained centers.
    pub fn with_window_len(model: &MotionClassifier, window_len: usize) -> Result<Self> {
        let c = model.fcm().num_clusters();
        let extractor = FeatureSpec::new(window_len)
            .with_modality(model.config().modality)
            .with_emg_channels(model.limb().emg_channels())
            .with_mocap_cols(model.limb().mocap_cols())
            .build()?;
        Ok(Self {
            extractor,
            modality: model.config().modality,
            window_len,
            row_buf: Vec::new(),
            u_buf: vec![0.0; c],
            d2_buf: vec![0.0; c],
            tracker: MembershipTracker::new(c),
            assignments: Vec::new(),
            margin_sum: 0.0,
        })
    }

    /// The window length this engine completes windows at.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Number of completed windows so far.
    pub fn windows_seen(&self) -> usize {
        self.tracker.windows()
    }

    /// All recorded window assignments so far.
    pub fn assignments(&self) -> &[WindowAssignment] {
        &self.assignments
    }

    /// Mean membership margin over recorded windows (0 before the first).
    pub fn mean_margin(&self) -> f64 {
        if self.assignments.is_empty() {
            0.0
        } else {
            self.margin_sum / self.assignments.len() as f64
        }
    }

    /// Feeds one synchronized frame. Returns `Some(outcome)` whenever a
    /// window completes; the outcome is recorded into the rolling
    /// min/max-membership feature vector (Eqs. 7–8).
    ///
    /// A frame with the wrong arity or non-finite values is rejected with
    /// a typed error and **not** buffered; the engine stays usable for
    /// subsequent frames. Callers that want corrupt frames absorbed
    /// instead of rejected should use [`crate::guard::GuardedSession`].
    pub fn push_frame(
        &mut self,
        model: &MotionClassifier,
        mocap_row: &[f64],
        pelvis: [f64; 3],
        emg_row: &[f64],
    ) -> Result<Option<WindowOutcome>> {
        let limb = model.limb();
        if mocap_row.len() != limb.mocap_cols() || emg_row.len() != limb.emg_channels() {
            return Err(KinemyoError::InvalidTrainingData {
                reason: format!(
                    "frame has ({}, {}) values; limb {limb} needs ({}, {})",
                    mocap_row.len(),
                    emg_row.len(),
                    limb.mocap_cols(),
                    limb.emg_channels()
                ),
            });
        }
        if let Some(i) = mocap_row.iter().position(|v| !v.is_finite()) {
            return Err(KinemyoError::CorruptInput {
                reason: format!("mocap value at column {i} is not finite"),
            });
        }
        if pelvis.iter().any(|v| !v.is_finite()) {
            return Err(KinemyoError::CorruptInput {
                reason: "pelvis position is not finite".into(),
            });
        }
        if let Some(ch) = emg_row.iter().position(|v| !v.is_finite()) {
            return Err(KinemyoError::CorruptInput {
                reason: format!("emg sample at channel {ch} is not finite"),
            });
        }
        // One extractor row per frame: [emg | pelvis-local mocap], with the
        // unused stream omitted for single-modality models. The pelvis
        // subtraction here is the same `marker − pelvis` arithmetic as the
        // batch `to_pelvis_local`, so the rows — and hence the features —
        // are bitwise those of the batch path.
        self.row_buf.clear();
        if !matches!(self.modality, Modality::MocapOnly) {
            self.row_buf.extend_from_slice(emg_row);
        }
        if !matches!(self.modality, Modality::EmgOnly) {
            self.row_buf.extend(
                mocap_row
                    .iter()
                    .enumerate()
                    .map(|(c, &v)| v - pelvis[c % 3]),
            );
        }
        let row = std::mem::take(&mut self.row_buf);
        let out = self.push_row_raw(model, &row);
        self.row_buf = row;
        match out? {
            Some(outcome) => {
                self.record(&outcome);
                Ok(Some(outcome))
            }
            None => Ok(None),
        }
    }

    /// Feeds one pre-assembled extractor row without recording the
    /// outcome. The guard layer uses this to keep the warm-started
    /// extractor chain running through windows it will not count (and to
    /// decide per window whether to [`record`](Self::record)).
    pub(crate) fn push_row_raw(
        &mut self,
        model: &MotionClassifier,
        row: &[f64],
    ) -> Result<Option<WindowOutcome>> {
        let Some(mut point) = self.extractor.push_sample(row)? else {
            return Ok(None);
        };
        model.scale_point(&mut point)?;
        model
            .fcm()
            .memberships_into(&point, &mut self.u_buf, &mut self.d2_buf)?;
        let mut cluster = 0;
        for (i, &v) in self.u_buf.iter().enumerate() {
            if v > self.u_buf[cluster] {
                cluster = i;
            }
        }
        let mut runner_up = 0.0f64;
        for (i, &v) in self.u_buf.iter().enumerate() {
            if i != cluster && v > runner_up {
                runner_up = v;
            }
        }
        let margin = if self.u_buf.len() > 1 {
            self.u_buf[cluster] - runner_up
        } else {
            1.0
        };
        Ok(Some(WindowOutcome {
            assignment: WindowAssignment {
                cluster,
                membership: self.u_buf[cluster],
            },
            margin,
        }))
    }

    /// Folds a window outcome into the rolling feature vector.
    pub(crate) fn record(&mut self, outcome: &WindowOutcome) {
        self.tracker.observe(outcome.assignment);
        self.assignments.push(outcome.assignment);
        self.margin_sum += outcome.margin;
    }

    /// Discards a partially fed window (and, necessarily, the extractor's
    /// warm-start chain). Recorded windows are untouched. The guard calls
    /// this when a window trips a numeric error mid-feed, so the next
    /// window starts at a clean extractor boundary.
    pub(crate) fn abort_window(&mut self) {
        self.extractor.reset();
    }

    /// The rolling min/max-membership tracker (guard-layer seam).
    pub(crate) fn tracker(&self) -> &MembershipTracker {
        &self.tracker
    }

    /// The current final feature vector (Eqs. 7–8 over windows seen).
    pub fn feature_vector(&self) -> Vector {
        self.tracker.final_vector()
    }

    /// Classifies the motion seen so far; `None` before the first window
    /// completes.
    pub fn classify(
        &self,
        model: &MotionClassifier,
        k: usize,
    ) -> Result<Option<(kinemyo_biosim::MotionClass, Vec<Neighbor<RecordMeta>>)>> {
        if self.tracker.windows() == 0 {
            return Ok(None);
        }
        let fv = self.feature_vector();
        let neighbors = model.neighbors(fv.as_slice(), k)?;
        let predicted = classify(&neighbors, |m| m.class);
        Ok(predicted.map(|p| (p, neighbors)))
    }

    /// Resets the engine for a new motion (the model is reused). This
    /// also clears the extractor's warm-start chain, so a reset engine
    /// is bitwise equivalent to a fresh one.
    pub fn reset(&mut self) {
        self.extractor.reset();
        self.tracker.reset();
        self.assignments.clear();
        self.margin_sum = 0.0;
    }
}

/// A live classification session over a trained [`MotionClassifier`]: a
/// [`SessionCore`] bound to one borrowed model. The borrow-free engine
/// underneath is what the serve layer's wire sessions hold (with `Arc`
/// model snapshots that survive hot reloads).
#[derive(Debug)]
pub struct StreamingSession<'m> {
    model: &'m MotionClassifier,
    core: SessionCore,
}

impl<'m> StreamingSession<'m> {
    /// Starts a session on a trained model.
    pub fn new(model: &'m MotionClassifier) -> Self {
        Self {
            model,
            core: SessionCore::for_model(model),
        }
    }

    /// Number of completed windows so far.
    pub fn windows_seen(&self) -> usize {
        self.core.windows_seen()
    }

    /// All window assignments so far.
    pub fn assignments(&self) -> &[WindowAssignment] {
        self.core.assignments()
    }

    /// Feeds one synchronized frame. Returns `Some(assignment)` whenever a
    /// window completes.
    ///
    /// A frame with the wrong arity or non-finite values is rejected with
    /// a typed error and **not** buffered; the session stays usable for
    /// subsequent frames. Callers that want corrupt frames absorbed
    /// instead of rejected should use [`crate::guard::GuardedSession`].
    pub fn push_frame(
        &mut self,
        mocap_row: &[f64],
        pelvis: [f64; 3],
        emg_row: &[f64],
    ) -> Result<Option<WindowAssignment>> {
        Ok(self
            .core
            .push_frame(self.model, mocap_row, pelvis, emg_row)?
            .map(|o| o.assignment))
    }

    /// The current final feature vector (Eqs. 7–8 over windows seen).
    pub fn feature_vector(&self) -> Vector {
        self.core.feature_vector()
    }

    /// Classifies the motion seen so far; `None` before the first window
    /// completes.
    pub fn classify(
        &self,
        k: usize,
    ) -> Result<Option<(kinemyo_biosim::MotionClass, Vec<Neighbor<RecordMeta>>)>> {
        self.core.classify(self.model, k)
    }

    /// Resets the session for a new motion (the model is reused). This
    /// also clears the extractor's warm-start chain, so a reset session
    /// is bitwise equivalent to a fresh one.
    pub fn reset(&mut self) {
        self.core.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::MotionClassifier;
    use kinemyo_biosim::{Dataset, DatasetSpec, Limb, MotionRecord};

    fn model() -> (Dataset, MotionClassifier) {
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let model = MotionClassifier::train(
            &refs,
            Limb::RightHand,
            &PipelineConfig::default().with_clusters(8),
        )
        .unwrap();
        (ds, model)
    }

    fn stream_record(session: &mut StreamingSession<'_>, r: &MotionRecord) {
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            session
                .push_frame(r.mocap.row(f), pelvis, r.emg.row(f))
                .unwrap();
        }
    }

    #[test]
    fn streaming_matches_batch_feature_vector() {
        let (ds, model) = model();
        let r = &ds.records[3];
        let mut session = StreamingSession::new(&model);
        stream_record(&mut session, r);
        let batch = model.query_feature_vector(r).unwrap();
        let streamed = session.feature_vector();
        assert_eq!(batch.len(), streamed.len());
        for (a, b) in batch.as_slice().iter().zip(streamed.as_slice()) {
            assert!((a - b).abs() < 1e-9, "batch {a} vs streamed {b}");
        }
    }

    #[test]
    fn emits_one_assignment_per_window() {
        let (ds, model) = model();
        let r = &ds.records[0];
        let mut session = StreamingSession::new(&model);
        let mut emitted = 0;
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            if session
                .push_frame(r.mocap.row(f), pelvis, r.emg.row(f))
                .unwrap()
                .is_some()
            {
                emitted += 1;
            }
        }
        assert_eq!(emitted, session.windows_seen());
        assert_eq!(emitted, r.frames() / model.window().len());
        assert_eq!(session.assignments().len(), emitted);
    }

    #[test]
    fn classify_before_any_window_is_none() {
        let (_ds, model) = model();
        let session = StreamingSession::new(&model);
        assert!(session.classify(5).unwrap().is_none());
    }

    #[test]
    fn streaming_classification_of_training_record() {
        let (ds, model) = model();
        let r = &ds.records[5];
        let mut session = StreamingSession::new(&model);
        stream_record(&mut session, r);
        let (predicted, neighbors) = session.classify(1).unwrap().unwrap();
        assert_eq!(
            neighbors[0].id, r.id,
            "training record must retrieve itself"
        );
        assert_eq!(predicted, r.class);
    }

    #[test]
    fn reset_clears_state() {
        let (ds, model) = model();
        let mut session = StreamingSession::new(&model);
        stream_record(&mut session, &ds.records[0]);
        assert!(session.windows_seen() > 0);
        session.reset();
        assert_eq!(session.windows_seen(), 0);
        assert!(session.classify(5).unwrap().is_none());
        let fv = session.feature_vector();
        assert!(fv.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn streaming_matches_batch_for_all_modalities() {
        use kinemyo_features::Modality;
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 2)).unwrap();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        for modality in [Modality::EmgOnly, Modality::MocapOnly] {
            let cfg = PipelineConfig::default()
                .with_clusters(6)
                .with_modality(modality);
            let model = MotionClassifier::train(&refs, Limb::RightHand, &cfg).unwrap();
            let r = &ds.records[4];
            let mut session = StreamingSession::new(&model);
            stream_record(&mut session, r);
            let batch = model.query_feature_vector(r).unwrap();
            let streamed = session.feature_vector();
            for (a, b) in batch.as_slice().iter().zip(streamed.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{modality:?}: batch {a} vs streamed {b}"
                );
            }
        }
    }

    #[test]
    fn rejects_malformed_frames() {
        let (_ds, model) = model();
        let mut session = StreamingSession::new(&model);
        assert!(session.push_frame(&[0.0; 3], [0.0; 3], &[0.0; 4]).is_err());
        assert!(session.push_frame(&[0.0; 12], [0.0; 3], &[0.0; 1]).is_err());
    }

    #[test]
    fn nan_frame_is_rejected_and_session_continues() {
        let (ds, model) = model();
        let r = &ds.records[0];
        let mut session = StreamingSession::new(&model);

        let mut bad_mocap = r.mocap.row(0).to_vec();
        bad_mocap[4] = f64::NAN;
        let err = session.push_frame(&bad_mocap, [0.0; 3], r.emg.row(0));
        assert!(matches!(err, Err(KinemyoError::CorruptInput { .. })));

        let mut bad_emg = r.emg.row(0).to_vec();
        bad_emg[1] = f64::INFINITY;
        let err = session.push_frame(r.mocap.row(0), [0.0; 3], &bad_emg);
        assert!(matches!(err, Err(KinemyoError::CorruptInput { .. })));

        let err = session.push_frame(r.mocap.row(0), [0.0, f64::NAN, 0.0], r.emg.row(0));
        assert!(matches!(err, Err(KinemyoError::CorruptInput { .. })));

        // Rejected frames were not buffered: the session still produces
        // the exact batch feature vector from the clean frames.
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            session
                .push_frame(r.mocap.row(f), pelvis, r.emg.row(f))
                .unwrap();
        }
        let batch = model.query_feature_vector(r).unwrap();
        for (a, b) in batch
            .as_slice()
            .iter()
            .zip(session.feature_vector().as_slice())
        {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn wrong_arity_mid_stream_does_not_corrupt_state() {
        let (ds, model) = model();
        let r = &ds.records[1];
        let mut session = StreamingSession::new(&model);
        let half = model.window().len() / 2;
        for f in 0..half {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            session
                .push_frame(r.mocap.row(f), pelvis, r.emg.row(f))
                .unwrap();
        }
        assert!(session.push_frame(&[0.0; 2], [0.0; 3], &[0.0; 4]).is_err());
        // Remaining clean frames still complete the window.
        let mut completed = 0;
        for f in half..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            if session
                .push_frame(r.mocap.row(f), pelvis, r.emg.row(f))
                .unwrap()
                .is_some()
            {
                completed += 1;
            }
        }
        assert!(completed > 0);
        assert_eq!(session.windows_seen(), completed);
    }

    #[test]
    fn incomplete_window_yields_no_classification() {
        let (ds, model) = model();
        let r = &ds.records[2];
        let mut session = StreamingSession::new(&model);
        // One frame short of a full window: nothing ever completes.
        for f in 0..model.window().len() - 1 {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            let out = session
                .push_frame(r.mocap.row(f), pelvis, r.emg.row(f))
                .unwrap();
            assert!(out.is_none());
        }
        assert_eq!(session.windows_seen(), 0);
        assert!(session.classify(5).unwrap().is_none());
        let fv = session.feature_vector();
        assert!(fv.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn unvisited_clusters_produce_no_sentinels() {
        // With far more clusters than completed windows, most clusters are
        // never visited; their (min, max) pairs must come out (0, 0) — no
        // INFINITY sentinel may leak into the final vector.
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let model = MotionClassifier::train(
            &refs,
            Limb::RightHand,
            &PipelineConfig::default().with_clusters(24),
        )
        .unwrap();
        let r = &ds.records[0];
        let mut session = StreamingSession::new(&model);
        // Exactly two windows.
        for f in 0..2 * model.window().len() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            session
                .push_frame(r.mocap.row(f), pelvis, r.emg.row(f))
                .unwrap();
        }
        assert_eq!(session.windows_seen(), 2);
        let fv = session.feature_vector();
        assert_eq!(fv.len(), 48);
        let visited: std::collections::HashSet<usize> =
            session.assignments().iter().map(|a| a.cluster).collect();
        for k in 0..24 {
            let (lo, hi) = (fv.as_slice()[2 * k], fv.as_slice()[2 * k + 1]);
            assert!(lo.is_finite() && hi.is_finite(), "sentinel leaked at {k}");
            assert!(lo <= hi + 1e-12);
            if !visited.contains(&k) {
                assert_eq!((lo, hi), (0.0, 0.0));
            } else {
                assert!(hi > 0.0);
            }
        }
    }
}
