//! Unsupervised cluster-count selection.
//!
//! The paper sweeps the cluster count 5–40 and observes classification
//! quality ("the performance of the classification varies on choice of
//! cluster numbers", Sec. 3.3) — but choosing `c` that way needs labels.
//! This module picks `c` *without* labels by minimizing the Xie–Beni
//! validity index of the FCM partition over the window feature points,
//! which a deployment can run on unlabeled recordings.

use crate::config::PipelineConfig;
use crate::error::{KinemyoError, Result};
use crate::pipeline::record_points;
use kinemyo_biosim::MotionRecord;
use kinemyo_dsp::WindowSpec;
use kinemyo_fuzzy::validity::xie_beni;
use kinemyo_fuzzy::{fcm_fit, FcmConfig};
use kinemyo_linalg::stats::ZScore;
use kinemyo_linalg::Matrix;

/// One evaluated candidate cluster count.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCandidate {
    /// The cluster count.
    pub clusters: usize,
    /// Xie–Beni index of the fitted partition (lower is better).
    pub xie_beni: f64,
    /// Final FCM objective.
    pub objective: f64,
}

/// Result of a cluster-count selection sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSelection {
    /// The winning (minimum Xie–Beni) cluster count.
    pub best: usize,
    /// All evaluated candidates, in the order given.
    pub candidates: Vec<ClusterCandidate>,
}

/// Evaluates every candidate cluster count on the records' window feature
/// points and returns the Xie–Beni-optimal choice.
///
/// Uses the same windowing/feature/standardization settings as training
/// would, so the chosen `c` transfers directly into
/// [`crate::MotionClassifier::train`].
pub fn select_cluster_count(
    records: &[&MotionRecord],
    config: &PipelineConfig,
    candidates: &[usize],
) -> Result<ClusterSelection> {
    config.validate()?;
    if records.is_empty() {
        return Err(KinemyoError::InvalidTrainingData {
            reason: "no records to select clusters from".into(),
        });
    }
    if candidates.is_empty() {
        return Err(KinemyoError::InvalidConfig {
            reason: "no candidate cluster counts".into(),
        });
    }
    if candidates.iter().any(|&c| c < 2) {
        return Err(KinemyoError::InvalidConfig {
            reason: "cluster candidates must be >= 2 (Xie-Beni needs separation)".into(),
        });
    }

    let window = WindowSpec::from_ms(config.window_ms, config.mocap_fs)?;
    let mut stacked: Option<Matrix> = None;
    for r in records {
        let points = record_points(r, &window, config.modality)?;
        stacked = Some(match stacked {
            None => points,
            Some(acc) => acc.vstack(&points)?,
        });
    }
    // `records` was checked non-empty above, but fail typed rather than
    // panic if that invariant ever drifts.
    let mut points = stacked.ok_or_else(|| KinemyoError::InvalidTrainingData {
        reason: "no window feature points were extracted".into(),
    })?;
    if config.standardize {
        let z = ZScore::fit(&points)?;
        points = z.transform(&points)?;
    }

    let mut out = Vec::with_capacity(candidates.len());
    for &c in candidates {
        if c > points.rows() {
            return Err(KinemyoError::InvalidTrainingData {
                reason: format!("{c} clusters exceed {} window points", points.rows()),
            });
        }
        let fcm_config = FcmConfig {
            clusters: c,
            fuzzifier: config.fuzzifier,
            max_iters: config.fcm_max_iters,
            tol: 1e-6,
            restarts: config.fcm_restarts,
            seed: config.seed,
            threads: config.threads,
        };
        let model = fcm_fit(&points, &fcm_config)?;
        let xb = xie_beni(&model, &points)?;
        out.push(ClusterCandidate {
            clusters: c,
            xie_beni: xb,
            objective: model.objective(),
        });
    }
    let best = out
        .iter()
        .min_by(|a, b| a.xie_beni.total_cmp(&b.xie_beni))
        .ok_or_else(|| KinemyoError::InvalidConfig {
            reason: "no candidate cluster counts".into(),
        })?
        .clusters;
    Ok(ClusterSelection {
        best,
        candidates: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo_biosim::{Dataset, DatasetSpec, Limb};

    fn records() -> Dataset {
        Dataset::generate(DatasetSpec::hand_default().with_size(1, 2)).unwrap()
    }

    #[test]
    fn selection_returns_a_candidate() {
        let ds = records();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let sel = select_cluster_count(&refs, &PipelineConfig::default(), &[4, 8, 12]).unwrap();
        assert!([4usize, 8, 12].contains(&sel.best));
        assert_eq!(sel.candidates.len(), 3);
        for c in &sel.candidates {
            assert!(c.xie_beni.is_finite() && c.xie_beni > 0.0);
            assert!(c.objective.is_finite());
        }
        // The winner actually has the minimum index.
        let min = sel
            .candidates
            .iter()
            .map(|c| c.xie_beni)
            .fold(f64::INFINITY, f64::min);
        let winner = sel
            .candidates
            .iter()
            .find(|c| c.clusters == sel.best)
            .unwrap();
        assert_eq!(winner.xie_beni, min);
        let _ = Limb::RightHand;
    }

    #[test]
    fn selection_is_deterministic() {
        let ds = records();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let a = select_cluster_count(&refs, &PipelineConfig::default(), &[4, 8]).unwrap();
        let b = select_cluster_count(&refs, &PipelineConfig::default(), &[4, 8]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation() {
        let ds = records();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        assert!(select_cluster_count(&[], &PipelineConfig::default(), &[4]).is_err());
        assert!(select_cluster_count(&refs, &PipelineConfig::default(), &[]).is_err());
        assert!(select_cluster_count(&refs, &PipelineConfig::default(), &[1]).is_err());
        assert!(select_cluster_count(&refs, &PipelineConfig::default(), &[100_000]).is_err());
    }

    #[test]
    fn empty_records_is_a_typed_error() {
        let err = select_cluster_count(&[], &PipelineConfig::default(), &[4]).unwrap_err();
        assert!(matches!(err, KinemyoError::InvalidTrainingData { .. }));
    }

    #[test]
    fn empty_candidates_is_a_typed_error() {
        let ds = records();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let err = select_cluster_count(&refs, &PipelineConfig::default(), &[]).unwrap_err();
        assert!(matches!(err, KinemyoError::InvalidConfig { .. }));
    }
}
