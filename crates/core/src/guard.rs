//! Sensor-fault supervision and graceful degradation.
//!
//! The paper's motivating deployment — online prosthetic control (Sec. 5)
//! — cannot assume the clean synchronized streams of Sec. 5's laboratory:
//! optical markers occlude, electrodes detach or saturate, cables glitch,
//! and the two clocks drift. [`StreamingSession`](crate::StreamingSession)
//! and [`MotionClassifier`](crate::MotionClassifier) *reject* such input
//! with typed errors; this module instead *absorbs* it:
//!
//! * **per-frame validation** — arity and finiteness checked at the door;
//! * **bounded gap-fill** — a run of up to `max_gap_frames` missing mocap
//!   frames is filled by holding the last good frame; longer gaps mark the
//!   enclosing window degraded. Non-finite EMG samples are hold-filled per
//!   channel and counted;
//! * **dead-channel detection** — an EMG channel whose window is mostly
//!   identical consecutive samples (flatline 0 V, amplifier rail, or a
//!   long fill) is flagged dead;
//! * **modality fallback** — a window with dead EMG is re-classified
//!   against a mocap-only model trained on the same records (and
//!   symmetrically for lost mocap), flagged in the health report;
//! * **stream resync** — *gross* inter-stream drift (half a window or
//!   more) is estimated by cross-correlating mocap speed with EMG energy
//!   and the EMG read position is shifted to compensate. Sub-window
//!   jitter is deliberately left alone: the speed/energy envelopes are
//!   smooth at the movement timescale, so finer drift is not observable
//!   from the signals — and the window features absorb it anyway;
//! * **health reporting** — a structured [`SessionHealth`] counts every
//!   dropped/filled/quarantined unit so operators can see degradation
//!   instead of discovering it as silent misclassification.

use crate::config::PipelineConfig;
use crate::error::{KinemyoError, Result};
use crate::pipeline::{MotionClassifier, RecordMeta};
use crate::stream::{assign_window, MembershipTracker, SessionCore, WindowOutcome};
use kinemyo_biosim::{Limb, MotionClass, MotionRecord};
use kinemyo_features::Modality;
use kinemyo_linalg::{Matrix, Vector};
use kinemyo_modb::{classify, Neighbor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tuning knobs of the fault guard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Longest run of missing mocap frames repaired by holding the last
    /// good frame; longer runs degrade the enclosing window.
    pub max_gap_frames: usize,
    /// Fraction of identical consecutive samples within a window above
    /// which an EMG channel is considered dead (flatline or saturated).
    pub dead_channel_frac: f64,
    /// How many dead EMG channels a window tolerates before its EMG side
    /// is considered lost.
    pub max_dead_channels: usize,
    /// Train mocap-only and EMG-only fallback models and re-classify
    /// degraded windows against them (instead of quarantining).
    pub fallback: bool,
    /// Estimate inter-stream drift and shift the EMG read position.
    pub resync: bool,
    /// Largest absolute drift, in frames, the resync search considers.
    /// Window emission is delayed by this many frames so positive lags can
    /// read EMG that arrives after the mocap clock. Drift smaller than
    /// [`RESYNC_DEADBAND`] frames is never corrected (see the module docs),
    /// so values below the dead band effectively disable resync.
    pub max_resync_frames: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            max_gap_frames: 3,
            dead_channel_frac: 0.5,
            max_dead_channels: 0,
            fallback: true,
            resync: true,
            max_resync_frames: 30,
        }
    }
}

impl GuardConfig {
    /// Validates the knobs.
    pub fn validate(&self) -> Result<()> {
        if !(self.dead_channel_frac > 0.0) || self.dead_channel_frac > 1.0 {
            return Err(KinemyoError::InvalidConfig {
                reason: format!(
                    "dead_channel_frac must be in (0, 1], got {}",
                    self.dead_channel_frac
                ),
            });
        }
        Ok(())
    }
}

/// How one completed window was handled by the guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowStatus {
    /// Both streams healthy; classified with the combined model.
    Clean,
    /// EMG side dead; classified mocap-only.
    FallbackMocap,
    /// Mocap side lost; classified EMG-only.
    FallbackEmg,
    /// Neither stream usable (or fallback disabled): window discarded.
    Quarantined,
}

/// Structured degradation report of one guarded session (or the merged
/// totals of many).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionHealth {
    /// Frames accepted into the session.
    pub frames_seen: usize,
    /// Mocap frames detected missing (non-finite).
    pub mocap_frames_dropped: usize,
    /// Missing mocap frames repaired by hold-last gap-fill.
    pub mocap_frames_filled: usize,
    /// Non-finite EMG samples detected.
    pub emg_samples_non_finite: usize,
    /// EMG samples repaired by per-channel hold-last fill.
    pub emg_samples_filled: usize,
    /// Windows completed.
    pub windows_total: usize,
    /// Windows classified with both streams.
    pub windows_clean: usize,
    /// Windows classified mocap-only (EMG dead).
    pub windows_fallback_mocap: usize,
    /// Windows classified EMG-only (mocap lost).
    pub windows_fallback_emg: usize,
    /// Windows discarded entirely.
    pub windows_quarantined: usize,
    /// Per EMG channel: number of windows in which it was flagged dead.
    pub dead_channel_windows: Vec<usize>,
    /// Transitions from clean into any fallback mode.
    pub fallback_episodes: usize,
    /// Times the resync estimator changed the stream lag.
    pub resync_events: usize,
    /// Final estimated EMG lag behind the mocap clock, frames.
    pub current_lag_frames: i64,
}

impl SessionHealth {
    /// True when nothing degraded: every frame and window was clean.
    pub fn is_clean(&self) -> bool {
        self.mocap_frames_dropped == 0
            && self.emg_samples_non_finite == 0
            && self.windows_total == self.windows_clean
            && self.resync_events == 0
    }

    /// Windows that contributed to a classification (clean + fallback).
    pub fn windows_usable(&self) -> usize {
        self.windows_clean + self.windows_fallback_mocap + self.windows_fallback_emg
    }

    /// Accumulates another session's counts into this one (for batch
    /// evaluation totals). Lags don't sum; the largest magnitude is kept.
    pub fn merge(&mut self, other: &SessionHealth) {
        self.frames_seen += other.frames_seen;
        self.mocap_frames_dropped += other.mocap_frames_dropped;
        self.mocap_frames_filled += other.mocap_frames_filled;
        self.emg_samples_non_finite += other.emg_samples_non_finite;
        self.emg_samples_filled += other.emg_samples_filled;
        self.windows_total += other.windows_total;
        self.windows_clean += other.windows_clean;
        self.windows_fallback_mocap += other.windows_fallback_mocap;
        self.windows_fallback_emg += other.windows_fallback_emg;
        self.windows_quarantined += other.windows_quarantined;
        if self.dead_channel_windows.len() < other.dead_channel_windows.len() {
            self.dead_channel_windows
                .resize(other.dead_channel_windows.len(), 0);
        }
        for (a, b) in self
            .dead_channel_windows
            .iter_mut()
            .zip(&other.dead_channel_windows)
        {
            *a += b;
        }
        self.fallback_episodes += other.fallback_episodes;
        self.resync_events += other.resync_events;
        if other.current_lag_frames.abs() > self.current_lag_frames.abs() {
            self.current_lag_frames = other.current_lag_frames;
        }
    }
}

impl fmt::Display for SessionHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "frames: {} seen, {} mocap dropped ({} filled), {} emg samples non-finite ({} filled)",
            self.frames_seen,
            self.mocap_frames_dropped,
            self.mocap_frames_filled,
            self.emg_samples_non_finite,
            self.emg_samples_filled
        )?;
        writeln!(
            f,
            "windows: {} total = {} clean + {} mocap-only + {} emg-only + {} quarantined",
            self.windows_total,
            self.windows_clean,
            self.windows_fallback_mocap,
            self.windows_fallback_emg,
            self.windows_quarantined
        )?;
        let dead: usize = self.dead_channel_windows.iter().sum();
        write!(
            f,
            "degradation: {} fallback episodes, {} dead-channel window flags, {} resyncs (lag {} frames)",
            self.fallback_episodes, dead, self.resync_events, self.current_lag_frames
        )
    }
}

/// Result of classifying one motion through the guard.
#[derive(Debug, Clone)]
pub struct GuardedClassification {
    /// Majority-vote class over the k nearest neighbours.
    pub predicted: MotionClass,
    /// The retrieved neighbours, closest first.
    pub neighbors: Vec<Neighbor<RecordMeta>>,
    /// The final feature vector actually used (of the chosen modality).
    pub feature_vector: Vector,
    /// Which modality's model produced the classification.
    pub modality_used: Modality,
    /// Degradation report of the session that produced it.
    pub health: SessionHealth,
}

/// A [`MotionClassifier`] wrapped with fallback models and a fault guard.
///
/// Trains the paper's combined pipeline *plus* (when
/// [`GuardConfig::fallback`] is on) a mocap-only and an EMG-only model on
/// the same records, so a window whose EMG (or mocap) stream dies can
/// still be classified against centers that never saw the dead modality.
#[derive(Debug)]
pub struct GuardedClassifier {
    primary: MotionClassifier,
    mocap_only: Option<MotionClassifier>,
    emg_only: Option<MotionClassifier>,
    guard: GuardConfig,
}

impl GuardedClassifier {
    /// Trains the combined model and, with fallback enabled, the two
    /// single-modality models. `config.modality` must be `Combined`: the
    /// guard's whole point is to degrade *from* the fused pipeline.
    pub fn train(
        records: &[&MotionRecord],
        limb: Limb,
        config: &PipelineConfig,
        guard: GuardConfig,
    ) -> Result<Self> {
        guard.validate()?;
        if config.modality != Modality::Combined {
            return Err(KinemyoError::InvalidConfig {
                reason: format!(
                    "guarded training requires the Combined modality (got {:?}); \
                     single-modality models are trained internally for fallback",
                    config.modality
                ),
            });
        }
        let primary = MotionClassifier::train(records, limb, config)?;
        let (mocap_only, emg_only) = if guard.fallback {
            let mocap_cfg = config.clone().with_modality(Modality::MocapOnly);
            let emg_cfg = config.clone().with_modality(Modality::EmgOnly);
            (
                Some(MotionClassifier::train(records, limb, &mocap_cfg)?),
                Some(MotionClassifier::train(records, limb, &emg_cfg)?),
            )
        } else {
            (None, None)
        };
        Ok(Self {
            primary,
            mocap_only,
            emg_only,
            guard,
        })
    }

    /// The combined (primary) model.
    pub fn primary(&self) -> &MotionClassifier {
        &self.primary
    }

    /// The guard configuration.
    pub fn guard(&self) -> &GuardConfig {
        &self.guard
    }

    /// Starts a fault-tolerant streaming session.
    pub fn session(&self) -> GuardedSession<'_> {
        GuardedSession::new(self)
    }

    /// Classifies a whole (possibly corrupted) record by streaming it
    /// through a fresh guarded session. Uses the primary config's `knn_k`.
    pub fn classify_record(&self, record: &MotionRecord) -> Result<GuardedClassification> {
        let mut session = self.session();
        for f in 0..record.frames() {
            let pelvis = [record.pelvis[f].x, record.pelvis[f].y, record.pelvis[f].z];
            session.push_frame(record.mocap.row(f), pelvis, record.emg.row(f))?;
        }
        session.finish()?;
        session
            .classify(self.primary.config().knn_k)?
            .ok_or_else(|| KinemyoError::CorruptInput {
                reason: format!(
                    "record {}: no usable windows survived the fault guard",
                    record.id
                ),
            })
    }
}

/// Hysteresis margin: the best candidate lag must beat the currently
/// applied lag's Pearson correlation by this absolute step before the
/// guard resynchronizes. On healthy streams the correlation profile is
/// nearly flat across the search range (the envelopes are smooth), so a
/// step this large only clears when the streams genuinely drifted.
const RESYNC_DELTA: f64 = 0.10;

/// Smallest lag change, in frames, the guard will apply. The mocap-speed
/// and EMG-energy envelopes localize drift only to within roughly half a
/// window, so candidate corrections below this are estimator noise —
/// and sub-window drift is absorbed by the window features anyway.
pub const RESYNC_DEADBAND: i64 = 8;

/// Frames of per-frame signal history retained for the lag estimator.
const RESYNC_HISTORY: usize = 512;

/// Consecutive lag updates that must agree (within the dead band) before
/// a correction is applied. Successive estimates share most of their
/// history, so a noise peak can survive one update — but real drift wins
/// every update while noise wanders.
const RESYNC_CONFIRM: usize = 3;

/// Pearson correlation of two equal-length series (0 when either side is
/// constant, so a flatlined stream never looks like a good alignment).
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

/// A fault-tolerant streaming session (the guarded counterpart of
/// [`StreamingSession`](crate::StreamingSession)).
///
/// Frames are validated, gap-filled and buffered; windows are emitted
/// `max_resync_frames` behind the live edge (so a positive EMG lag can be
/// compensated with samples that have already arrived) and classified with
/// the healthiest modality available. Call
/// [`finish`](GuardedSession::finish) after the last frame to flush the
/// delayed windows, then [`classify`](GuardedSession::classify).
#[derive(Debug)]
pub struct GuardedSession<'m> {
    model: &'m GuardedClassifier,
    window_len: usize,
    emg_channels: usize,
    /// Retained frame history; index `i` holds absolute frame `base + i`.
    base: usize,
    mocap: Vec<Vec<f64>>,
    pelvis: Vec<[f64; 3]>,
    emg: Vec<Vec<f64>>,
    mocap_valid: Vec<bool>,
    /// Gap-fill state.
    last_good: Option<(Vec<f64>, [f64; 3])>,
    gap_run: usize,
    last_emg: Vec<f64>,
    /// Per-frame resync signals (own base, bounded history).
    sig_base: usize,
    speed: Vec<f64>,
    energy: Vec<f64>,
    prev_mocap: Option<Vec<f64>>,
    lag: i64,
    pending_lag: i64,
    pending_streak: usize,
    /// Combined-modality window engine: the same warm-chained
    /// incremental-extractor path as [`crate::StreamingSession`] and the
    /// serve layer's wire sessions, fed at emit time with the repaired
    /// rows — so on a clean stream the guarded feature vector is bitwise
    /// the batch/streaming one.
    core: SessionCore,
    row_buf: Vec<f64>,
    /// Parallel min/max trackers for the fallback modalities.
    mocap_tr: MembershipTracker,
    emg_tr: MembershipTracker,
    statuses: Vec<WindowStatus>,
    next_window: usize,
    frames_seen: usize,
    in_fallback: bool,
    health: SessionHealth,
    finished: bool,
}

impl<'m> GuardedSession<'m> {
    fn new(model: &'m GuardedClassifier) -> Self {
        let c = model.primary.fcm().num_clusters();
        let mc = model
            .mocap_only
            .as_ref()
            .map_or(c, |m| m.fcm().num_clusters());
        let ec = model
            .emg_only
            .as_ref()
            .map_or(c, |m| m.fcm().num_clusters());
        let channels = model.primary.limb().emg_channels();
        Self {
            model,
            window_len: model.primary.window().len(),
            emg_channels: channels,
            base: 0,
            mocap: Vec::new(),
            pelvis: Vec::new(),
            emg: Vec::new(),
            mocap_valid: Vec::new(),
            last_good: None,
            gap_run: 0,
            last_emg: vec![0.0; channels],
            sig_base: 0,
            speed: Vec::new(),
            energy: Vec::new(),
            prev_mocap: None,
            lag: 0,
            pending_lag: 0,
            pending_streak: 0,
            core: SessionCore::for_model(&model.primary),
            row_buf: Vec::new(),
            mocap_tr: MembershipTracker::new(mc),
            emg_tr: MembershipTracker::new(ec),
            statuses: Vec::new(),
            next_window: 0,
            frames_seen: 0,
            in_fallback: false,
            health: SessionHealth {
                dead_channel_windows: vec![0; channels],
                ..SessionHealth::default()
            },
            finished: false,
        }
    }

    /// The degradation report so far.
    pub fn health(&self) -> &SessionHealth {
        &self.health
    }

    /// Per-window guard verdicts so far.
    pub fn window_statuses(&self) -> &[WindowStatus] {
        &self.statuses
    }

    /// Feeds one frame. Corrupt *values* (non-finite mocap, pelvis or EMG
    /// samples) are absorbed — repaired where the gap budget allows,
    /// counted always. A frame of the wrong *arity* is a caller bug, not a
    /// sensor fault, and is rejected with a typed error (the session stays
    /// usable). Returns the verdicts of any windows the frame completed.
    pub fn push_frame(
        &mut self,
        mocap_row: &[f64],
        pelvis: [f64; 3],
        emg_row: &[f64],
    ) -> Result<Vec<WindowStatus>> {
        let limb = self.model.primary.limb();
        if mocap_row.len() != limb.mocap_cols() || emg_row.len() != self.emg_channels {
            return Err(KinemyoError::InvalidTrainingData {
                reason: format!(
                    "frame has ({}, {}) values; limb {limb} needs ({}, {})",
                    mocap_row.len(),
                    emg_row.len(),
                    limb.mocap_cols(),
                    self.emg_channels
                ),
            });
        }
        self.frames_seen += 1;
        self.health.frames_seen += 1;

        // Mocap side: detect, then gap-fill within budget.
        let mocap_bad =
            mocap_row.iter().any(|v| !v.is_finite()) || pelvis.iter().any(|v| !v.is_finite());
        let (stored_mocap, stored_pelvis, valid) = if mocap_bad {
            self.health.mocap_frames_dropped += 1;
            self.gap_run += 1;
            match &self.last_good {
                Some((m, p)) if self.gap_run <= self.model.guard.max_gap_frames => {
                    self.health.mocap_frames_filled += 1;
                    (m.clone(), *p, true)
                }
                _ => (vec![0.0; mocap_row.len()], [0.0; 3], false),
            }
        } else {
            self.gap_run = 0;
            self.last_good = Some((mocap_row.to_vec(), pelvis));
            (mocap_row.to_vec(), pelvis, true)
        };

        // EMG side: per-sample hold-last fill (long outages surface later
        // as dead channels, since a filled run is constant by definition).
        let mut stored_emg = Vec::with_capacity(emg_row.len());
        for (ch, &v) in emg_row.iter().enumerate() {
            if v.is_finite() {
                self.last_emg[ch] = v;
                stored_emg.push(v);
            } else {
                self.health.emg_samples_non_finite += 1;
                self.health.emg_samples_filled += 1;
                stored_emg.push(self.last_emg[ch]);
            }
        }

        // Resync signals: mocap speed (mean |Δ marker|) vs EMG energy
        // (mean |sample|), valid frames only for the speed side.
        let speed = match (&self.prev_mocap, valid) {
            (Some(prev), true) => {
                let s: f64 = prev
                    .iter()
                    .zip(&stored_mocap)
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                s / stored_mocap.len() as f64
            }
            _ => 0.0,
        };
        if valid {
            self.prev_mocap = Some(stored_mocap.clone());
        }
        let energy: f64 =
            stored_emg.iter().map(|v| v.abs()).sum::<f64>() / stored_emg.len().max(1) as f64;
        self.speed.push(speed);
        self.energy.push(energy);
        if self.speed.len() > RESYNC_HISTORY {
            let drop = self.speed.len() - RESYNC_HISTORY;
            self.speed.drain(..drop);
            self.energy.drain(..drop);
            self.sig_base += drop;
        }

        self.mocap.push(stored_mocap);
        self.pelvis.push(stored_pelvis);
        self.emg.push(stored_emg);
        self.mocap_valid.push(valid);

        self.drain_ready_windows(false)
    }

    /// Flushes the windows still held back by the resync delay. Call once
    /// after the last frame; further frames are rejected.
    pub fn finish(&mut self) -> Result<Vec<WindowStatus>> {
        self.finished = true;
        self.drain_ready_windows(true)
    }

    /// Emits every window whose frames (plus, unless finishing, the resync
    /// delay margin) have arrived.
    fn drain_ready_windows(&mut self, finishing: bool) -> Result<Vec<WindowStatus>> {
        if self.finished && !finishing {
            return Err(KinemyoError::Internal {
                reason: "guarded session already finished".into(),
            });
        }
        let delay = if self.model.guard.resync && !finishing {
            self.model.guard.max_resync_frames
        } else {
            0
        };
        let mut emitted = Vec::new();
        while self.frames_seen >= (self.next_window + 1) * self.window_len + delay {
            let status = self.emit_window()?;
            emitted.push(status);
        }
        Ok(emitted)
    }

    /// Classifies window `next_window` and advances.
    fn emit_window(&mut self) -> Result<WindowStatus> {
        let w = self.next_window;
        self.next_window += 1;
        let start = w * self.window_len;
        let end = start + self.window_len;
        self.health.windows_total += 1;

        if self.model.guard.resync {
            self.update_lag();
        }

        let mocap_ok = (start..end).all(|f| self.mocap_valid[f - self.base]);
        let mocap_rows: Vec<Vec<f64>> = (start..end)
            .map(|f| self.mocap[f - self.base].clone())
            .collect();
        let mocap = Matrix::from_rows(&mocap_rows).map_err(KinemyoError::Linalg)?;
        let pelvis_rows: Vec<Vec<f64>> = (start..end)
            .map(|f| self.pelvis[f - self.base].to_vec())
            .collect();
        let pelvis = Matrix::from_rows(&pelvis_rows).map_err(KinemyoError::Linalg)?;

        // EMG rows at the lag-shifted read position, clamped to history.
        let hi = self.frames_seen as i64 - 1;
        let emg_rows: Vec<Vec<f64>> = (start..end)
            .map(|f| {
                let src = (f as i64 + self.lag).clamp(self.base as i64, hi) as usize;
                self.emg[src - self.base].clone()
            })
            .collect();
        let emg = Matrix::from_rows(&emg_rows).map_err(KinemyoError::Linalg)?;

        // Dead-channel scan: fraction of identical consecutive samples.
        let mut dead = 0usize;
        for ch in 0..self.emg_channels {
            let mut same = 0usize;
            for f in 1..self.window_len {
                if emg[(f, ch)] == emg[(f - 1, ch)] {
                    same += 1;
                }
            }
            let frac = same as f64 / (self.window_len - 1).max(1) as f64;
            if frac >= self.model.guard.dead_channel_frac {
                dead += 1;
                self.health.dead_channel_windows[ch] += 1;
            }
        }
        let emg_ok = dead <= self.model.guard.max_dead_channels;

        let status = self.classify_window(&mocap, &pelvis, &emg, mocap_ok, emg_ok)?;
        self.statuses.push(status);

        // Trim history no later window can reach (resync may still look
        // backwards up to max_resync_frames).
        let keep_from =
            (self.next_window * self.window_len).saturating_sub(self.model.guard.max_resync_frames);
        if keep_from > self.base {
            let drop = keep_from - self.base;
            self.mocap.drain(..drop);
            self.pelvis.drain(..drop);
            self.emg.drain(..drop);
            self.mocap_valid.drain(..drop);
            self.base = keep_from;
        }
        Ok(status)
    }

    /// Routes one assembled window to the healthiest model.
    fn classify_window(
        &mut self,
        mocap: &Matrix,
        pelvis: &Matrix,
        emg: &Matrix,
        mocap_ok: bool,
        emg_ok: bool,
    ) -> Result<WindowStatus> {
        let fallback = self.model.guard.fallback;
        if mocap_ok && emg_ok {
            self.in_fallback = false;
            // A window that passed validation can still trip a numeric
            // guard deeper in the pipeline; quarantine instead of failing.
            match self.feed_combined_window(mocap, pelvis, emg) {
                Ok(outcome) => {
                    self.core.record(&outcome);
                    if let Some(m) = &self.model.mocap_only {
                        self.mocap_tr.observe(assign_window(m, mocap, pelvis, emg)?);
                    }
                    if let Some(m) = &self.model.emg_only {
                        self.emg_tr.observe(assign_window(m, mocap, pelvis, emg)?);
                    }
                    self.health.windows_clean += 1;
                    Ok(WindowStatus::Clean)
                }
                Err(_) => {
                    // Drop the partial feed so the next window starts at
                    // a clean extractor boundary.
                    self.core.abort_window();
                    self.health.windows_quarantined += 1;
                    Ok(WindowStatus::Quarantined)
                }
            }
        } else if mocap_ok && fallback {
            if let Some(m) = &self.model.mocap_only {
                self.mocap_tr.observe(assign_window(m, mocap, pelvis, emg)?);
                self.health.windows_fallback_mocap += 1;
                if !self.in_fallback {
                    self.in_fallback = true;
                    self.health.fallback_episodes += 1;
                }
                return Ok(WindowStatus::FallbackMocap);
            }
            self.health.windows_quarantined += 1;
            Ok(WindowStatus::Quarantined)
        } else if emg_ok && fallback {
            if let Some(m) = &self.model.emg_only {
                self.emg_tr.observe(assign_window(m, mocap, pelvis, emg)?);
                self.health.windows_fallback_emg += 1;
                if !self.in_fallback {
                    self.in_fallback = true;
                    self.health.fallback_episodes += 1;
                }
                return Ok(WindowStatus::FallbackEmg);
            }
            self.health.windows_quarantined += 1;
            Ok(WindowStatus::Quarantined)
        } else {
            self.health.windows_quarantined += 1;
            Ok(WindowStatus::Quarantined)
        }
    }

    /// Feeds one assembled (repaired, lag-shifted) window row by row
    /// through the shared [`SessionCore`] engine. The rows are exactly
    /// those of [`crate::StreamingSession`]'s clean path — `[emg |
    /// marker − pelvis]` — so a clean guarded stream stays bitwise equal
    /// to the plain streaming and batch paths. Returns the completed
    /// window's outcome; recording it is the caller's decision.
    fn feed_combined_window(
        &mut self,
        mocap: &Matrix,
        pelvis: &Matrix,
        emg: &Matrix,
    ) -> Result<WindowOutcome> {
        let model = self.model;
        let mut out = None;
        for f in 0..self.window_len {
            self.row_buf.clear();
            self.row_buf.extend_from_slice(emg.row(f));
            self.row_buf.extend(
                mocap
                    .row(f)
                    .iter()
                    .enumerate()
                    .map(|(c, &v)| v - pelvis[(f, c % 3)]),
            );
            let row = std::mem::take(&mut self.row_buf);
            let res = self.core.push_row_raw(&model.primary, &row);
            self.row_buf = row;
            out = res?;
        }
        out.ok_or_else(|| KinemyoError::Internal {
            reason: "assembled window did not complete at the extractor boundary".into(),
        })
    }

    /// Re-estimates the EMG lag by Pearson-correlating the retained mocap
    /// speed and EMG energy series over `±max_resync_frames`. Three guards
    /// keep healthy streams at lag 0: the winner must beat the applied
    /// lag's correlation by [`RESYNC_DELTA`], must move the lag by at
    /// least [`RESYNC_DEADBAND`] frames (each record has an intrinsic
    /// sub-window speed/energy offset that is noise for our purposes),
    /// and must win [`RESYNC_CONFIRM`] consecutive updates.
    fn update_lag(&mut self) {
        let n = self.speed.len();
        let r = self.model.guard.max_resync_frames as i64;
        if r == 0 || n < 8 * self.window_len {
            return;
        }
        // Correlation is recomputed over each overlap so the estimate is
        // scale-free and unaffected by the series' absolute levels.
        let corr = |lag: i64| -> f64 {
            let mut a = Vec::with_capacity(n);
            let mut b = Vec::with_capacity(n);
            for t in 0..n {
                let u = t as i64 + lag;
                if u >= 0 && (u as usize) < n {
                    a.push(self.speed[t]);
                    b.push(self.energy[u as usize]);
                }
            }
            pearson(&a, &b)
        };
        let current = corr(self.lag);
        let mut best_lag = self.lag;
        let mut best = current;
        for lag in -r..=r {
            let c = corr(lag);
            if c > best {
                best = c;
                best_lag = lag;
            }
        }
        if (best_lag - self.lag).abs() >= RESYNC_DEADBAND && best > current + RESYNC_DELTA {
            if self.pending_streak > 0 && (best_lag - self.pending_lag).abs() <= RESYNC_DEADBAND {
                self.pending_streak += 1;
            } else {
                self.pending_lag = best_lag;
                self.pending_streak = 1;
            }
            if self.pending_streak >= RESYNC_CONFIRM {
                self.lag = best_lag;
                self.health.resync_events += 1;
                self.pending_streak = 0;
            }
        } else {
            self.pending_streak = 0;
        }
        self.health.current_lag_frames = self.lag;
    }

    /// Classifies the motion seen so far with the modality that kept the
    /// most usable windows; `None` before any usable window.
    pub fn classify(&self, k: usize) -> Result<Option<GuardedClassification>> {
        // Prefer the combined model whenever it saw every usable window;
        // otherwise the fallback tracker covering the most windows wins
        // (its clean windows were tracked too, so it spans both regimes).
        let candidates: [(Modality, &MembershipTracker, Option<&MotionClassifier>); 3] = [
            (
                Modality::Combined,
                self.core.tracker(),
                Some(&self.model.primary),
            ),
            (
                Modality::MocapOnly,
                &self.mocap_tr,
                self.model.mocap_only.as_ref(),
            ),
            (
                Modality::EmgOnly,
                &self.emg_tr,
                self.model.emg_only.as_ref(),
            ),
        ];
        let mut choice: Option<(Modality, &MembershipTracker, &MotionClassifier)> = None;
        for (modality, tracker, model) in candidates {
            let Some(model) = model else { continue };
            if tracker.windows() == 0 {
                continue;
            }
            let better = match &choice {
                None => true,
                Some((_, t, _)) => tracker.windows() > t.windows(),
            };
            if better {
                choice = Some((modality, tracker, model));
            }
        }
        let Some((modality, tracker, model)) = choice else {
            return Ok(None);
        };
        let fv = tracker.final_vector();
        let neighbors = model.neighbors(fv.as_slice(), k)?;
        let Some(predicted) = classify(&neighbors, |m| m.class) else {
            return Ok(None);
        };
        Ok(Some(GuardedClassification {
            predicted,
            neighbors,
            feature_vector: fv,
            modality_used: modality,
            health: self.health.clone(),
        }))
    }
}

/// Outcome of evaluating queries through the guard.
#[derive(Debug, Clone)]
pub struct GuardedEvalOutcome {
    /// Percent of queries misclassified (unusable queries count as wrong).
    pub misclassification_pct: f64,
    /// Queries whose predicted class was wrong or unusable.
    pub errors: usize,
    /// Queries evaluated.
    pub queries: usize,
    /// Merged degradation totals over all query sessions.
    pub health: SessionHealth,
}

/// Streams every query through a fresh guarded session and accumulates
/// accuracy plus merged health totals. A query whose windows are all
/// quarantined is counted as misclassified, not an abort — the guard's
/// contract is that corrupt input degrades accuracy, never the process.
pub fn evaluate_guarded(
    model: &GuardedClassifier,
    queries: &[&MotionRecord],
) -> Result<GuardedEvalOutcome> {
    if queries.is_empty() {
        return Err(KinemyoError::InvalidTrainingData {
            reason: "no query records".into(),
        });
    }
    let mut errors = 0usize;
    let mut health = SessionHealth::default();
    for q in queries {
        match model.classify_record(q) {
            Ok(c) => {
                if c.predicted != q.class {
                    errors += 1;
                }
                health.merge(&c.health);
            }
            Err(KinemyoError::CorruptInput { .. }) => errors += 1,
            Err(e) => return Err(e),
        }
    }
    Ok(GuardedEvalOutcome {
        misclassification_pct: 100.0 * errors as f64 / queries.len() as f64,
        errors,
        queries: queries.len(),
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo_biosim::{inject_faults, Dataset, DatasetSpec, FaultSpec};

    fn dataset() -> Dataset {
        Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap()
    }

    fn guarded(ds: &Dataset, guard: GuardConfig) -> GuardedClassifier {
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        GuardedClassifier::train(
            &refs,
            Limb::RightHand,
            &PipelineConfig::default().with_clusters(8),
            guard,
        )
        .unwrap()
    }

    fn stream<'a>(model: &'a GuardedClassifier, r: &MotionRecord) -> GuardedSession<'a> {
        let mut s = model.session();
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            s.push_frame(r.mocap.row(f), pelvis, r.emg.row(f)).unwrap();
        }
        s.finish().unwrap();
        s
    }

    #[test]
    fn clean_stream_matches_unguarded_session() {
        let ds = dataset();
        let model = guarded(&ds, GuardConfig::default());
        let r = &ds.records[3];
        let s = stream(&model, r);
        assert!(s.health().is_clean(), "{}", s.health());
        assert_eq!(s.health().windows_total, s.health().windows_clean);
        let c = s.classify(1).unwrap().unwrap();
        assert_eq!(c.modality_used, Modality::Combined);
        assert_eq!(c.predicted, r.class);
        // Identical feature vector to the plain streaming path.
        let batch = model.primary().query_feature_vector(r).unwrap();
        for (a, b) in batch.as_slice().iter().zip(c.feature_vector.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn short_mocap_gaps_are_filled() {
        let ds = dataset();
        let model = guarded(&ds, GuardConfig::default());
        let r = &ds.records[0];
        let mut s = model.session();
        let nan_row = vec![f64::NAN; r.mocap.cols()];
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            // Drop two isolated frames — within the gap budget.
            if f == 30 || f == 31 {
                s.push_frame(&nan_row, pelvis, r.emg.row(f)).unwrap();
            } else {
                s.push_frame(r.mocap.row(f), pelvis, r.emg.row(f)).unwrap();
            }
        }
        s.finish().unwrap();
        let h = s.health();
        assert_eq!(h.mocap_frames_dropped, 2);
        assert_eq!(h.mocap_frames_filled, 2);
        assert_eq!(h.windows_quarantined, 0);
        assert_eq!(h.windows_fallback_emg, 0, "filled gaps stay combined");
        assert!(s.classify(1).unwrap().is_some());
    }

    #[test]
    fn long_mocap_outage_falls_back_to_emg() {
        let ds = dataset();
        let model = guarded(&ds, GuardConfig::default());
        let r = &ds.records[1];
        let mut s = model.session();
        let nan_row = vec![f64::NAN; r.mocap.cols()];
        let l = model.primary().window().len();
        // Kill mocap for two full windows in the middle.
        let dead = 2 * l..4 * l;
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            if dead.contains(&f) {
                s.push_frame(&nan_row, [f64::NAN; 3], r.emg.row(f)).unwrap();
            } else {
                s.push_frame(r.mocap.row(f), pelvis, r.emg.row(f)).unwrap();
            }
        }
        s.finish().unwrap();
        let h = s.health().clone();
        assert!(h.windows_fallback_emg >= 1, "{h}");
        assert!(h.fallback_episodes >= 1);
        assert_eq!(h.windows_quarantined, 0);
        let c = s.classify(1).unwrap().unwrap();
        // No sentinel or NaN anywhere in the returned vector.
        assert!(c.feature_vector.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dead_emg_channels_fall_back_to_mocap() {
        let ds = dataset();
        let model = guarded(&ds, GuardConfig::default());
        let r = &ds.records[2];
        let mut s = model.session();
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            // All EMG channels flatlined from the start: every window's
            // EMG side is dead.
            let dead_emg = vec![0.0; r.emg.cols()];
            s.push_frame(r.mocap.row(f), pelvis, &dead_emg).unwrap();
        }
        s.finish().unwrap();
        let h = s.health();
        assert_eq!(h.windows_fallback_mocap, h.windows_total);
        assert!(h.dead_channel_windows.iter().all(|&n| n == h.windows_total));
        let c = s.classify(1).unwrap().unwrap();
        assert_eq!(c.modality_used, Modality::MocapOnly);
        assert!(c.feature_vector.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fallback_disabled_quarantines_degraded_windows() {
        let ds = dataset();
        let model = guarded(
            &ds,
            GuardConfig {
                fallback: false,
                ..GuardConfig::default()
            },
        );
        let r = &ds.records[0];
        let mut s = model.session();
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            let dead_emg = vec![0.0; r.emg.cols()];
            s.push_frame(r.mocap.row(f), pelvis, &dead_emg).unwrap();
        }
        s.finish().unwrap();
        let h = s.health();
        assert_eq!(h.windows_quarantined, h.windows_total);
        assert!(s.classify(1).unwrap().is_none());
        assert!(matches!(
            model.classify_record(r_with_dead_emg(r)).unwrap_err(),
            KinemyoError::CorruptInput { .. }
        ));
    }

    fn r_with_dead_emg(r: &MotionRecord) -> &'static MotionRecord {
        // classify_record needs a record; build a leaked dead-EMG copy
        // (test-only, one allocation per test run).
        let mut copy = r.clone();
        for f in 0..copy.emg.rows() {
            for c in 0..copy.emg.cols() {
                copy.emg[(f, c)] = 0.0;
            }
        }
        Box::leak(Box::new(copy))
    }

    #[test]
    fn resync_recovers_gross_stream_lag() {
        let ds = dataset();
        let model = guarded(&ds, GuardConfig::default());
        let r = &ds.records[4];
        let d = 24usize; // EMG lags mocap by 24 frames (two windows).
        let mut s = model.session();
        for f in 0..r.frames() {
            let pelvis = [r.pelvis[f].x, r.pelvis[f].y, r.pelvis[f].z];
            let src = f.saturating_sub(d);
            s.push_frame(r.mocap.row(f), pelvis, r.emg.row(src))
                .unwrap();
        }
        s.finish().unwrap();
        let h = s.health();
        assert!(h.resync_events >= 1, "{h}");
        // The envelopes localize drift to within the dead band, not to the
        // exact frame — that residual is sub-window and feature-absorbed.
        assert!(
            (h.current_lag_frames - d as i64).abs() <= RESYNC_DEADBAND,
            "estimated lag {} vs injected {d}",
            h.current_lag_frames
        );
        assert!(s.classify(1).unwrap().is_some());
    }

    #[test]
    fn clean_stream_never_resyncs() {
        let ds = dataset();
        let model = guarded(&ds, GuardConfig::default());
        for r in ds.records.iter().take(4) {
            let s = stream(&model, r);
            assert_eq!(s.health().resync_events, 0, "record {}", r.id);
            assert_eq!(s.health().current_lag_frames, 0);
        }
    }

    #[test]
    fn wrong_arity_is_a_typed_error_not_a_fault() {
        let ds = dataset();
        let model = guarded(&ds, GuardConfig::default());
        let mut s = model.session();
        assert!(s.push_frame(&[0.0; 2], [0.0; 3], &[0.0; 4]).is_err());
        assert_eq!(s.health().frames_seen, 0);
    }

    #[test]
    fn guarded_training_rejects_single_modality_config() {
        let ds = dataset();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let cfg = PipelineConfig::default()
            .with_clusters(8)
            .with_modality(Modality::EmgOnly);
        let err = GuardedClassifier::train(&refs, Limb::RightHand, &cfg, GuardConfig::default());
        assert!(matches!(err, Err(KinemyoError::InvalidConfig { .. })));
        let bad_guard = GuardConfig {
            dead_channel_frac: 0.0,
            ..GuardConfig::default()
        };
        let err = GuardedClassifier::train(
            &refs,
            Limb::RightHand,
            &PipelineConfig::default(),
            bad_guard,
        );
        assert!(matches!(err, Err(KinemyoError::InvalidConfig { .. })));
    }

    #[test]
    fn injected_fault_counts_are_reported_exactly() {
        let ds = dataset();
        let model = guarded(&ds, GuardConfig::default());
        let r = &ds.records[5];
        // Isolated fault classes so detection is exact, desync off.
        let spec = FaultSpec {
            mocap_drop_rate: 0.02,
            emg_nan_rate: 0.01,
            ..FaultSpec::none(42)
        };
        let (faulted, log) = inject_faults(r, &spec);
        let c = model.classify_record(&faulted).unwrap();
        assert_eq!(c.health.mocap_frames_dropped, log.mocap_frames_dropped);
        assert_eq!(c.health.emg_samples_non_finite, log.emg_nan_samples);
        assert!(c.feature_vector.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn health_merge_accumulates() {
        let mut a = SessionHealth {
            frames_seen: 10,
            windows_total: 2,
            windows_clean: 2,
            dead_channel_windows: vec![1, 0],
            current_lag_frames: -2,
            ..SessionHealth::default()
        };
        let b = SessionHealth {
            frames_seen: 5,
            windows_total: 1,
            windows_quarantined: 1,
            dead_channel_windows: vec![0, 3, 2],
            fallback_episodes: 1,
            current_lag_frames: 1,
            ..SessionHealth::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_seen, 15);
        assert_eq!(a.windows_total, 3);
        assert_eq!(a.dead_channel_windows, vec![1, 3, 2]);
        assert_eq!(a.fallback_episodes, 1);
        assert_eq!(a.current_lag_frames, -2);
        assert!(!a.is_clean());
        assert_eq!(a.windows_usable(), 2);
        assert!(a.to_string().contains("windows"));
    }

    #[test]
    fn evaluate_guarded_counts_unusable_as_errors() {
        let ds = dataset();
        let model = guarded(
            &ds,
            GuardConfig {
                fallback: false,
                ..GuardConfig::default()
            },
        );
        let clean = &ds.records[0];
        let broken = r_with_dead_emg(&ds.records[1]);
        let out = evaluate_guarded(&model, &[clean, broken]).unwrap();
        assert_eq!(out.queries, 2);
        assert!(out.errors >= 1);
        assert!(out.misclassification_pct >= 50.0);
        assert!(evaluate_guarded(&model, &[]).is_err());
    }
}
