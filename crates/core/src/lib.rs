//! # kinemyo
//!
//! A Rust reproduction of **"Integration of Motion Capture and EMG data
//! for Classifying the Human Motions"** (Pradhan, Engineer, Nadin,
//! Prabhakaran — ICDE Workshops 2007).
//!
//! The paper classifies human motions by fusing two synchronized
//! biomedical streams — 120 Hz optical motion capture and surface EMG —
//! through a window-level feature pipeline (IAV for EMG, weighted SVD for
//! motion capture), fuzzy c-means clustering of the combined feature
//! points, and a `2c`-length min/max-membership feature vector per motion
//! that feeds a kNN retrieval classifier.
//!
//! ## Quick start
//!
//! ```
//! use kinemyo::{MotionClassifier, PipelineConfig};
//! use kinemyo_biosim::{Dataset, DatasetSpec};
//!
//! // Generate a small synthetic right-hand test bed (the substitute for
//! // the paper's motion-capture laboratory).
//! let dataset = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
//! let (train, queries): (Vec<_>, Vec<_>) = dataset
//!     .records
//!     .iter()
//!     .partition(|r| r.trial < 2);
//!
//! // Train the paper's pipeline: window features → FCM → motion vectors.
//! let config = PipelineConfig::default().with_clusters(8);
//! let model = MotionClassifier::train(&train, dataset.spec.limb, &config).unwrap();
//!
//! // Classify a held-out motion.
//! let result = model.classify_record(queries[0]).unwrap();
//! println!("predicted {:?}", result.predicted);
//! ```
//!
//! ## Crate map
//!
//! * [`pipeline`] — [`MotionClassifier`]: train + query paths (Secs. 3–4);
//! * [`eval`] — misclassification / kNN-% evaluation and the window ×
//!   cluster parameter sweeps behind Figs. 6–9 (Sec. 6);
//! * [`stream`] — online per-window classification for prosthetic-control
//!   style consumers;
//! * [`guard`] — sensor-fault supervision: gap-fill, modality fallback,
//!   stream resync and structured health reporting over the streaming and
//!   batch query paths;
//! * [`shared`] — [`SharedModel`]: an atomically swappable `Arc` handle
//!   to the current model, the hot-reload primitive used by the
//!   `kinemyo-serve` daemon;
//! * [`config`] — [`PipelineConfig`].
//!
//! Substrates live in sibling crates: `kinemyo-biosim` (synthetic
//! lab), `kinemyo-features` (Eqs. 1–3, 5–8), `kinemyo-fuzzy` (Eq. 4, 9),
//! `kinemyo-modb` (retrieval), `kinemyo-dsp`, `kinemyo-linalg`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` is the NaN-rejecting validation idiom used throughout this
// workspace: `x <= 0.0` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod cluster;
pub mod config;
pub mod error;
pub mod eval;
pub mod guard;
pub mod persist;
pub mod pipeline;
pub mod select;
pub mod shared;
pub mod stream;

pub use cluster::{ClusterHealth, ShardHealth, ShardStatus};
pub use config::{IndexBackend, PipelineConfig, PipelineConfigBuilder};
pub use error::{KinemyoError, Result};
pub use eval::{evaluate, stratified_split, sweep, EvalOutcome, SweepPoint};
pub use guard::{
    evaluate_guarded, GuardConfig, GuardedClassification, GuardedClassifier, GuardedEvalOutcome,
    GuardedSession, SessionHealth, WindowStatus,
};
pub use pipeline::{class_index, pelvis_matrix, Classification, MotionClassifier, RecordMeta};
pub use select::{select_cluster_count, ClusterSelection};
pub use shared::SharedModel;
pub use stream::{SessionCore, StreamingSession, WindowOutcome};

// Re-export the pieces examples and downstream users need most.
pub use kinemyo_biosim as biosim;
pub use kinemyo_features::Modality;
pub use kinemyo_fuzzy::ThreadPolicy;

/// The one-line import for typical users: configuration, training,
/// classification, streaming, and evaluation entry points.
///
/// ```
/// use kinemyo::prelude::*;
///
/// let config = PipelineConfig::builder().clusters(8).build().unwrap();
/// # let _ = config;
/// ```
pub mod prelude {
    pub use crate::cluster::{ClusterHealth, ShardHealth, ShardStatus};
    pub use crate::config::{IndexBackend, PipelineConfig, PipelineConfigBuilder};
    // `crate::error::Result` is deliberately NOT re-exported: a glob import
    // would shadow `std::result::Result` and break the ubiquitous
    // `fn main() -> Result<(), Box<dyn Error>>` pattern in user code.
    pub use crate::error::KinemyoError;
    pub use crate::eval::{
        evaluate, evaluate_with_model, stratified_split, sweep, EvalOutcome, SweepPoint,
    };
    pub use crate::guard::{
        evaluate_guarded, GuardConfig, GuardedClassification, GuardedClassifier,
        GuardedEvalOutcome, GuardedSession, SessionHealth, WindowStatus,
    };
    pub use crate::pipeline::{Classification, MotionClassifier, RecordMeta};
    pub use crate::select::{select_cluster_count, ClusterSelection};
    pub use crate::shared::SharedModel;
    pub use crate::stream::{SessionCore, StreamingSession, WindowOutcome};
    pub use kinemyo_biosim::{Limb, MotionClass, MotionRecord};
    pub use kinemyo_features::Modality;
    pub use kinemyo_fuzzy::ThreadPolicy;
}
