//! Atomically swappable shared handle to a trained model.
//!
//! A serving process holds one trained [`MotionClassifier`] and fans
//! queries across threads; an operator occasionally retrains and wants
//! the running process to pick up the new model without a restart and
//! without interrupting queries that are mid-flight. [`SharedModel`] is
//! that handle: readers take a cheap `Arc` snapshot ([`SharedModel::load`],
//! one `RwLock` read + one refcount bump), and a writer swaps in a
//! replacement ([`SharedModel::swap`]) that only subsequent `load`s see.
//! Requests already running keep their snapshot alive until they drop it,
//! so a reload never invalidates in-flight work.

use crate::pipeline::MotionClassifier;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cloneable, thread-safe handle to the current model. All clones point
/// at the same slot: a [`swap`](Self::swap) through any clone is visible
/// to every other clone's next [`load`](Self::load).
#[derive(Debug, Clone)]
pub struct SharedModel {
    inner: Arc<Slot>,
}

#[derive(Debug)]
struct Slot {
    current: RwLock<Arc<MotionClassifier>>,
    generation: AtomicU64,
}

impl SharedModel {
    /// Wraps a freshly trained or loaded model. Generation starts at 0.
    pub fn new(model: MotionClassifier) -> Self {
        Self::from_arc(Arc::new(model))
    }

    /// Wraps an already shared model.
    pub fn from_arc(model: Arc<MotionClassifier>) -> Self {
        Self {
            inner: Arc::new(Slot {
                current: RwLock::new(model),
                generation: AtomicU64::new(0),
            }),
        }
    }

    /// Snapshot of the current model. The returned `Arc` stays valid (and
    /// keeps the model alive) across any number of concurrent swaps.
    pub fn load(&self) -> Arc<MotionClassifier> {
        self.inner.current.read().clone()
    }

    /// Replaces the current model, returning the previous one. Bumps
    /// [`generation`](Self::generation). In-flight readers holding the
    /// old `Arc` are unaffected.
    pub fn swap(&self, next: MotionClassifier) -> Arc<MotionClassifier> {
        self.swap_arc(Arc::new(next))
    }

    /// [`swap`](Self::swap) for an already shared replacement.
    pub fn swap_arc(&self, next: Arc<MotionClassifier>) -> Arc<MotionClassifier> {
        let mut guard = self.inner.current.write();
        let old = std::mem::replace(&mut *guard, next);
        // Bump while the write lock is held so (model, generation) pairs
        // observed under a read lock are never torn.
        self.inner.generation.fetch_add(1, Ordering::Release);
        old
    }

    /// Number of swaps performed on this handle since creation.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use kinemyo_biosim::{Dataset, DatasetSpec, Limb, MotionRecord};

    fn tiny_model(clusters: usize) -> MotionClassifier {
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 2)).unwrap();
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        MotionClassifier::train(
            &refs,
            Limb::RightHand,
            &PipelineConfig::default().with_clusters(clusters),
        )
        .unwrap()
    }

    #[test]
    fn load_swap_generation() {
        let shared = SharedModel::new(tiny_model(4));
        assert_eq!(shared.generation(), 0);
        let before = shared.load();
        assert_eq!(before.fcm().num_clusters(), 4);

        let old = shared.swap(tiny_model(5));
        assert_eq!(shared.generation(), 1);
        assert_eq!(old.fcm().num_clusters(), 4);
        assert_eq!(shared.load().fcm().num_clusters(), 5);
        // The pre-swap snapshot is still alive and unchanged.
        assert_eq!(before.fcm().num_clusters(), 4);
    }

    #[test]
    fn clones_share_the_slot() {
        let a = SharedModel::new(tiny_model(4));
        let b = a.clone();
        b.swap(tiny_model(6));
        assert_eq!(a.load().fcm().num_clusters(), 6);
        assert_eq!(a.generation(), 1);
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn concurrent_loads_during_swaps_see_whole_models() {
        let shared = SharedModel::new(tiny_model(4));
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let shared = &shared;
                    scope.spawn(move || {
                        for _ in 0..200 {
                            let m = shared.load();
                            let c = m.fcm().num_clusters();
                            assert!(c == 4 || c == 5, "torn model: {c} clusters");
                        }
                    })
                })
                .collect();
            let m5 = tiny_model(5);
            let m4 = tiny_model(4);
            shared.swap(m5);
            shared.swap(m4);
            for r in readers {
                r.join().unwrap();
            }
        });
        assert_eq!(shared.generation(), 2);
    }
}
