//! Top-level error type for the `kinemyo` pipeline.

use std::fmt;

/// Errors produced by the end-to-end pipeline.
#[derive(Debug)]
pub enum KinemyoError {
    /// Invalid pipeline configuration.
    InvalidConfig {
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The training set is unusable (empty, mixed limbs, too short).
    InvalidTrainingData {
        /// Explanation of the data problem.
        reason: String,
    },
    /// Sensor input is corrupt beyond what the pipeline can absorb
    /// (non-finite frames, or a query whose every window was quarantined
    /// by the fault guard).
    CorruptInput {
        /// What was corrupt and where.
        reason: String,
    },
    /// An internal invariant failed (a worker panicked or a lock was
    /// poisoned). Surfaced as a typed error so batch callers keep their
    /// remaining results instead of the process aborting.
    Internal {
        /// Description of the violated invariant.
        reason: String,
    },
    /// A saved model file could not be read or decoded (missing,
    /// truncated, or not JSON). Distinct from [`Self::InvalidConfig`] so
    /// operators can tell a corrupt artifact from a bad parameter.
    ModelFormat {
        /// What was wrong with the file.
        reason: String,
    },
    /// A saved model declares a format version this build cannot load.
    ModelVersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// Feature extraction failed.
    Feature(kinemyo_features::FeatureError),
    /// Clustering failed.
    Fuzzy(kinemyo_fuzzy::FuzzyError),
    /// Database operation failed.
    Db(kinemyo_modb::DbError),
    /// Simulation substrate failed.
    Biosim(kinemyo_biosim::BiosimError),
    /// Numerical substrate failed.
    Linalg(kinemyo_linalg::LinalgError),
    /// DSP substrate failed.
    Dsp(kinemyo_dsp::DspError),
}

impl fmt::Display for KinemyoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KinemyoError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            KinemyoError::InvalidTrainingData { reason } => {
                write!(f, "invalid training data: {reason}")
            }
            KinemyoError::CorruptInput { reason } => write!(f, "corrupt input: {reason}"),
            KinemyoError::Internal { reason } => write!(f, "internal error: {reason}"),
            KinemyoError::ModelFormat { reason } => write!(f, "model file: {reason}"),
            KinemyoError::ModelVersionMismatch { found, expected } => write!(
                f,
                "unsupported model format version {found} (this build expects {expected})"
            ),
            KinemyoError::Feature(e) => write!(f, "feature extraction: {e}"),
            KinemyoError::Fuzzy(e) => write!(f, "clustering: {e}"),
            KinemyoError::Db(e) => write!(f, "database: {e}"),
            KinemyoError::Biosim(e) => write!(f, "simulation: {e}"),
            KinemyoError::Linalg(e) => write!(f, "linear algebra: {e}"),
            KinemyoError::Dsp(e) => write!(f, "dsp: {e}"),
        }
    }
}

impl std::error::Error for KinemyoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KinemyoError::Feature(e) => Some(e),
            KinemyoError::Fuzzy(e) => Some(e),
            KinemyoError::Db(e) => Some(e),
            KinemyoError::Biosim(e) => Some(e),
            KinemyoError::Linalg(e) => Some(e),
            KinemyoError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for KinemyoError {
            fn from(e: $ty) -> Self {
                KinemyoError::$variant(e)
            }
        }
    };
}

impl_from!(Feature, kinemyo_features::FeatureError);
impl_from!(Fuzzy, kinemyo_fuzzy::FuzzyError);
impl_from!(Db, kinemyo_modb::DbError);
impl_from!(Biosim, kinemyo_biosim::BiosimError);
impl_from!(Linalg, kinemyo_linalg::LinalgError);
impl_from!(Dsp, kinemyo_dsp::DspError);

/// Result alias for the pipeline.
pub type Result<T> = std::result::Result<T, KinemyoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e = KinemyoError::InvalidConfig {
            reason: "clusters=0".into(),
        };
        assert!(e.to_string().contains("clusters=0"));
        let fe: KinemyoError = kinemyo_features::FeatureError::NoWindows {
            frames: 1,
            window: 2,
        }
        .into();
        assert!(fe.to_string().contains("feature extraction"));
        let de: KinemyoError = kinemyo_modb::DbError::Empty.into();
        assert!(de.to_string().contains("database"));
        let ce = KinemyoError::CorruptInput {
            reason: "NaN frame".into(),
        };
        assert!(ce.to_string().contains("corrupt input"));
        let ie = KinemyoError::Internal {
            reason: "worker panicked".into(),
        };
        assert!(ie.to_string().contains("internal error"));
        let mf = KinemyoError::ModelFormat {
            reason: "truncated".into(),
        };
        assert!(mf.to_string().contains("truncated"));
        let mv = KinemyoError::ModelVersionMismatch {
            found: 999,
            expected: 1,
        };
        let msg = mv.to_string();
        assert!(msg.contains("999") && msg.contains('1'), "{msg}");
    }
}
