//! Typed cluster degradation reporting: [`ClusterHealth`].
//!
//! The guard layer answers "which *sensor* died and what did we do about
//! it" with [`SessionHealth`](crate::guard::SessionHealth); this module
//! lifts the same philosophy one level up, to "which *shard* answered".
//! A scatter-gather router fans a query out over N database shards; when
//! a shard is dead or slow the router still answers from the survivors,
//! but the response must say so in a machine-matchable way — partial
//! results are typed, never silent.
//!
//! The report travels inside serve-protocol responses (the router
//! attaches it to `classify`/`classify_batch` answers), so it derives the
//! same serde representation as everything else on the wire.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Terminal outcome of one shard's part in a scatter-gather query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "state", rename_all = "snake_case")]
pub enum ShardStatus {
    /// The shard answered within its deadline budget.
    Answered,
    /// The shard answered, but with a non-success response (overloaded,
    /// shutting down, ...); its partition contributed nothing.
    Refused {
        /// The rejection, rendered.
        reason: String,
    },
    /// No replica of the shard could be reached within the retry budget;
    /// its partition is missing from the merged answer.
    Dead {
        /// The last transport failure, rendered.
        reason: String,
    },
}

/// One shard's entry in a [`ClusterHealth`] report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index in the router's configuration.
    pub shard: usize,
    /// Replica address that produced the terminal outcome (the last one
    /// tried when the shard is dead).
    pub replica: String,
    /// Connection/request attempts spent across the shard's replicas.
    pub attempts: u32,
    /// How the shard's part of the query ended.
    pub status: ShardStatus,
    /// Wall-clock spent on this shard, milliseconds.
    pub elapsed_ms: u64,
}

impl ShardHealth {
    /// True when this shard contributed its partition to the answer.
    pub fn answered(&self) -> bool {
        matches!(self.status, ShardStatus::Answered)
    }
}

/// Structured degradation report of one scatter-gather query (the
/// cluster-level mirror of [`SessionHealth`](crate::guard::SessionHealth)).
///
/// A response carrying this report is *partial* unless
/// [`is_complete`](Self::is_complete): the neighbour pool was merged from
/// the answering shards only, so a class stored solely on a dead shard
/// can never be retrieved. Callers that need certainty branch on the
/// typed report instead of parsing prose.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterHealth {
    /// Shards the router fanned out to.
    pub shards_total: usize,
    /// Shards whose partition made it into the merged answer.
    pub shards_answered: usize,
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardHealth>,
    /// Streaming sessions the router currently pins to a shard replica
    /// (0 for routers predating sessions — the field is additive on the
    /// wire).
    #[serde(default)]
    pub sessions_routed: u64,
}

impl ClusterHealth {
    /// Builds the report from per-shard outcomes (in shard order).
    pub fn from_shards(shards: Vec<ShardHealth>) -> Self {
        let shards_total = shards.len();
        let shards_answered = shards.iter().filter(|s| s.answered()).count();
        Self {
            shards_total,
            shards_answered,
            shards,
            sessions_routed: 0,
        }
    }

    /// Attaches the router's live pinned-session count.
    pub fn with_sessions_routed(mut self, sessions: u64) -> Self {
        self.sessions_routed = sessions;
        self
    }

    /// True when every shard answered — the merged result is exact, not
    /// degraded.
    pub fn is_complete(&self) -> bool {
        self.shards_answered == self.shards_total
    }

    /// Shards that did not contribute, in shard order.
    pub fn missing(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| !s.answered())
            .map(|s| s.shard)
            .collect()
    }
}

impl fmt::Display for ClusterHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shards: {}/{} answered",
            self.shards_answered, self.shards_total
        )?;
        for s in &self.shards {
            let state = match &s.status {
                ShardStatus::Answered => "answered".to_string(),
                ShardStatus::Refused { reason } => format!("refused ({reason})"),
                ShardStatus::Dead { reason } => format!("DEAD ({reason})"),
            };
            write!(
                f,
                "\n  shard {} via {}: {state} after {} attempt(s), {} ms",
                s.shard, s.replica, s.attempts, s.elapsed_ms
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: usize, status: ShardStatus) -> ShardHealth {
        ShardHealth {
            shard: i,
            replica: format!("127.0.0.1:{}", 9000 + i),
            attempts: 1,
            status,
            elapsed_ms: 3,
        }
    }

    #[test]
    fn complete_report() {
        let h = ClusterHealth::from_shards(vec![
            shard(0, ShardStatus::Answered),
            shard(1, ShardStatus::Answered),
        ]);
        assert!(h.is_complete());
        assert_eq!(h.shards_answered, 2);
        assert!(h.missing().is_empty());
    }

    #[test]
    fn degraded_report_names_the_dead_shard() {
        let h = ClusterHealth::from_shards(vec![
            shard(0, ShardStatus::Answered),
            shard(
                1,
                ShardStatus::Dead {
                    reason: "connection refused".into(),
                },
            ),
            shard(
                2,
                ShardStatus::Refused {
                    reason: "overloaded".into(),
                },
            ),
        ]);
        assert!(!h.is_complete());
        assert_eq!(h.shards_answered, 1);
        assert_eq!(h.missing(), vec![1, 2]);
        let rendered = h.to_string();
        assert!(rendered.contains("1/3 answered"), "{rendered}");
        assert!(rendered.contains("DEAD"), "{rendered}");
    }

    #[test]
    fn wire_roundtrip() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipping: serde_json stub build");
            return;
        }
        let h = ClusterHealth::from_shards(vec![shard(
            0,
            ShardStatus::Dead {
                reason: "timed out".into(),
            },
        )]);
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.contains("\"state\":\"dead\""), "{json}");
        let back: ClusterHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
