//! The end-to-end classifier: train (Sec. 3) and query (Sec. 4) paths.
//!
//! Training: every database motion is windowed; each window becomes a
//! combined IAV + weighted-SVD feature point; fuzzy c-means over all
//! points yields centers and memberships; each motion's final `2c`-length
//! min/max-membership vector is stored in the feature database.
//!
//! Querying: the same windowing and feature extraction, memberships
//! against the *trained* centers via Eq. 9, the same min/max reduction,
//! then kNN retrieval among the stored vectors.

use crate::config::{IndexBackend, PipelineConfig};
use crate::error::{KinemyoError, Result};
use kinemyo_ann::{AnnIndex, AnnParams};
use kinemyo_biosim::{class_code, class_from_code, Limb, MotionClass, MotionRecord, Vec3};
use kinemyo_dsp::WindowSpec;
use kinemyo_features::motion_vector::{
    motion_feature_vector, window_assignments, WindowAssignment,
};
use kinemyo_features::{window_feature_points, Modality};
use kinemyo_fuzzy::{fcm_fit, FcmConfig, FcmModel};
use kinemyo_linalg::stats::ZScore;
use kinemyo_linalg::{Matrix, Vector};
use kinemyo_modb::{classify, knn, DbReadGuard, FeatureDb, HybridIndex, Neighbor, SharedDb};
use kinemyo_store::MetaCodec;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Metadata attached to every stored motion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordMeta {
    /// Originating record id.
    pub record_id: usize,
    /// Ground-truth class.
    pub class: MotionClass,
    /// Participant index.
    pub participant: usize,
    /// Trial index.
    pub trial: usize,
}

/// Exact wire size of an encoded [`RecordMeta`].
const META_WIRE_BYTES: usize = 8 + 1 + 8 + 8;

/// Binary layout for the durable store (DESIGN.md §12): little-endian
/// `u64 record_id | u8 class code | u64 participant | u64 trial`. The
/// class rides as its stable biosim wire code so the persisted payload
/// stays self-contained and serde-free.
impl MetaCodec for RecordMeta {
    fn encode_meta(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.record_id as u64).to_le_bytes());
        out.push(class_code(self.class));
        out.extend_from_slice(&(self.participant as u64).to_le_bytes());
        out.extend_from_slice(&(self.trial as u64).to_le_bytes());
    }

    fn decode_meta(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != META_WIRE_BYTES {
            return None;
        }
        let usize_at = |i: usize| -> Option<usize> {
            let raw = u64::from_le_bytes(bytes.get(i..i + 8)?.try_into().ok()?);
            usize::try_from(raw).ok()
        };
        Some(RecordMeta {
            record_id: usize_at(0)?,
            class: class_from_code(*bytes.get(8)?)?,
            participant: usize_at(9)?,
            trial: usize_at(17)?,
        })
    }
}

/// Result of classifying one query motion.
///
/// Serializable so the wire protocol (`kinemyo-serve`) and offline
/// tooling can move classification results between processes verbatim
/// (`serde_json`'s `float_roundtrip` keeps the vectors bit-exact).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classification {
    /// Majority-vote class over the k nearest neighbours.
    pub predicted: MotionClass,
    /// The retrieved neighbours, closest first.
    pub neighbors: Vec<Neighbor<RecordMeta>>,
    /// The query's final feature vector.
    pub feature_vector: Vector,
}

/// Converts a pelvis trajectory to a `frames × 3` matrix.
pub fn pelvis_matrix(pelvis: &[Vec3]) -> Matrix {
    Matrix::from_fn(pelvis.len(), 3, |r, c| match c {
        0 => pelvis[r].x,
        1 => pelvis[r].y,
        _ => pelvis[r].z,
    })
}

/// A trained motion classifier.
///
/// The stored feature database lives behind a [`SharedDb`], so batched
/// queries ([`classify_batch`](Self::classify_batch)) and streaming
/// sessions can read it from several threads at once.
#[derive(Debug)]
pub struct MotionClassifier {
    config: PipelineConfig,
    limb: Limb,
    window: WindowSpec,
    scaler: Option<ZScore>,
    fcm: FcmModel,
    db: SharedDb<RecordMeta>,
    /// Lazily built kNN index over the stable database prefix (exact
    /// VP-tree or approximate ANN graph, per
    /// `config.index_kind()`), with a linear scan over the appended
    /// tail. Rebuilt once the tail reaches `config.index_rebuild_appends`
    /// (ANN with threshold 0 builds once and never rebuilds); `None`
    /// until the first indexed query, and never populated when the
    /// effective backend is the linear scan.
    index: Mutex<Option<CachedIndex>>,
}

/// The two cacheable index shapes behind [`MotionClassifier::neighbors`].
#[derive(Debug, Clone)]
enum CachedIndex {
    Hybrid(HybridIndex<RecordMeta>),
    Ann(AnnIndex<RecordMeta>),
}

impl CachedIndex {
    fn covered(&self) -> usize {
        match self {
            CachedIndex::Hybrid(i) => i.covered(),
            CachedIndex::Ann(i) => i.covered(),
        }
    }

    fn stale_appends(&self, db: &FeatureDb<RecordMeta>) -> usize {
        match self {
            CachedIndex::Hybrid(i) => i.stale_appends(db),
            CachedIndex::Ann(i) => i.stale_appends(db),
        }
    }

    fn knn(
        &self,
        db: &FeatureDb<RecordMeta>,
        query: &[f64],
        k: usize,
    ) -> kinemyo_modb::Result<Vec<Neighbor<RecordMeta>>> {
        match self {
            CachedIndex::Hybrid(i) => i.knn(db, query, k),
            CachedIndex::Ann(i) => i.knn(db, query, k),
        }
    }
}

impl Clone for MotionClassifier {
    /// Deep copy: the clone gets its own database, detached from later
    /// inserts into the original (matching the pre-`SharedDb` semantics).
    /// The index cache starts cold — it rebuilds on first use.
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            limb: self.limb,
            window: self.window,
            scaler: self.scaler.clone(),
            fcm: self.fcm.clone(),
            db: SharedDb::new(self.db.snapshot()),
            index: Mutex::new(None),
        }
    }
}

impl MotionClassifier {
    /// Trains the full pipeline on a set of synchronized records.
    pub fn train(records: &[&MotionRecord], limb: Limb, config: &PipelineConfig) -> Result<Self> {
        config.validate()?;
        if records.is_empty() {
            return Err(KinemyoError::InvalidTrainingData {
                reason: "no training records".into(),
            });
        }
        let mocap_cols = limb.mocap_cols();
        let emg_cols = limb.emg_channels();
        for r in records {
            if r.mocap.cols() != mocap_cols || r.emg.cols() != emg_cols {
                return Err(KinemyoError::InvalidTrainingData {
                    reason: format!(
                        "record {} has shape ({} mocap, {} emg) but limb {limb} needs ({mocap_cols}, {emg_cols})",
                        r.id,
                        r.mocap.cols(),
                        r.emg.cols()
                    ),
                });
            }
        }
        let window = WindowSpec::from_ms(config.window_ms, config.mocap_fs)?;

        // 1. Per-window combined feature points for every record, written
        //    straight into one preallocated matrix (the former one-vstack-
        //    per-record chain re-copied all previous rows each time,
        //    i.e. quadratic in the record count). Window counts are known
        //    up front from the segmentation, so each record owns a
        //    disjoint row range and extraction parallelizes cleanly.
        let per_record_counts: Vec<usize> = records
            .iter()
            .map(|r| window.count(r.mocap.rows()))
            .collect();
        for (r, &count) in records.iter().zip(&per_record_counts) {
            if count == 0 {
                // Reproduce the extraction error (NoWindows) for the first
                // too-short record, as the sequential path did.
                record_points(r, &window, config.modality)?;
            }
        }
        let total_windows: usize = per_record_counts.iter().sum();
        let dim = match config.modality {
            Modality::Combined => emg_cols + mocap_cols,
            Modality::EmgOnly => emg_cols,
            Modality::MocapOnly => mocap_cols,
        };
        let mut all_points = Matrix::zeros(total_windows, dim);
        {
            // Disjoint per-record destination slices of the point matrix.
            let mut slices: Vec<(usize, &MotionRecord, &mut [f64])> =
                Vec::with_capacity(records.len());
            let mut rest = all_points.as_mut_slice();
            for (i, (r, &count)) in records.iter().zip(&per_record_counts).enumerate() {
                let (head, tail) = rest.split_at_mut(count * dim);
                slices.push((i, r, head));
                rest = tail;
            }

            let extract = |record: &MotionRecord, dst: &mut [f64]| -> Result<()> {
                let points = record_points(record, &window, config.modality)?;
                debug_assert_eq!(points.as_slice().len(), dst.len());
                dst.copy_from_slice(points.as_slice());
                Ok(())
            };

            let workers = config.threads.workers().min(records.len());
            if workers <= 1 {
                for (_, r, dst) in slices {
                    extract(r, dst)?;
                }
            } else {
                // Strided static assignment; on error, the lowest record
                // index wins so the reported failure is deterministic.
                let mut per_worker: Vec<Vec<(usize, &MotionRecord, &mut [f64])>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (pos, item) in slices.into_iter().enumerate() {
                    per_worker[pos % workers].push(item);
                }
                let mut first_error: Option<(usize, KinemyoError)> = None;
                let mut worker_panicked = false;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = per_worker
                        .into_iter()
                        .map(|items| {
                            scope.spawn(|| {
                                // catch_unwind keeps one worker's panic from
                                // aborting the whole training call (scope
                                // re-raises joined panics otherwise); it
                                // surfaces as a typed Internal error below.
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let mut err = None;
                                    for (i, r, dst) in items {
                                        if let Err(e) = extract(r, dst) {
                                            err = Some((i, e));
                                            break;
                                        }
                                    }
                                    err
                                }))
                            })
                        })
                        .collect();
                    for handle in handles {
                        match handle.join() {
                            Ok(Ok(Some((i, e)))) => match &first_error {
                                Some((j, _)) if *j <= i => {}
                                _ => first_error = Some((i, e)),
                            },
                            Ok(Ok(None)) => {}
                            Ok(Err(_)) | Err(_) => worker_panicked = true,
                        }
                    }
                });
                if let Some((_, e)) = first_error {
                    return Err(e);
                }
                if worker_panicked {
                    return Err(KinemyoError::Internal {
                        reason: "a feature-extraction worker panicked".into(),
                    });
                }
            }
        }
        if total_windows < config.clusters {
            return Err(KinemyoError::InvalidTrainingData {
                reason: format!(
                    "{total_windows} windows cannot support {} clusters — use shorter windows or more data",
                    config.clusters
                ),
            });
        }

        // 2. Standardize so mV-scale EMG and mm-scale mocap features are
        //    commensurate (Sec. 1 lists the resolution mismatch).
        let scaler = if config.standardize {
            let z = ZScore::fit(&all_points)?;
            all_points = z.transform(&all_points)?;
            Some(z)
        } else {
            None
        };

        // 3. Fuzzy c-means over all window points (Eq. 4).
        let fcm_config = FcmConfig {
            clusters: config.clusters,
            fuzzifier: config.fuzzifier,
            max_iters: config.fcm_max_iters,
            tol: 1e-6,
            restarts: config.fcm_restarts,
            seed: config.seed,
            threads: config.threads,
        };
        let fcm = fcm_fit(&all_points, &fcm_config)?;

        // 4. Final per-motion feature vectors (Eqs. 5–8) into the database.
        let mut db = FeatureDb::new(2 * config.clusters);
        let mut offset = 0;
        for (r, &count) in records.iter().zip(&per_record_counts) {
            let memberships = fcm.memberships.slice_rows(offset, offset + count)?;
            offset += count;
            let fv = motion_feature_vector(&memberships)?;
            db.insert(
                r.id,
                RecordMeta {
                    record_id: r.id,
                    class: r.class,
                    participant: r.participant,
                    trial: r.trial,
                },
                fv.into_vec(),
            )?;
        }

        Ok(Self {
            config: config.clone(),
            limb,
            window,
            scaler,
            fcm,
            db: SharedDb::new(db),
            index: Mutex::new(None),
        })
    }

    /// The limb this model was trained for.
    pub fn limb(&self) -> Limb {
        self.limb
    }

    /// The training configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The fitted fuzzy model (centers + training memberships).
    pub fn fcm(&self) -> &FcmModel {
        &self.fcm
    }

    /// Read access to the stored motion database. The returned guard
    /// derefs to [`FeatureDb`]; `&model.db()` coerces to
    /// `&FeatureDb<RecordMeta>` wherever one is expected. Hold it briefly —
    /// a concurrent writer blocks until it is dropped.
    pub fn db(&self) -> DbReadGuard<'_, RecordMeta> {
        self.db.read()
    }

    /// The thread-safe handle to the stored motion database, for callers
    /// that append motions (streaming ingestion) or share it across
    /// threads themselves.
    pub fn shared_db(&self) -> &SharedDb<RecordMeta> {
        &self.db
    }

    /// The window segmentation used at train and query time.
    pub fn window(&self) -> &WindowSpec {
        &self.window
    }

    /// Per-window membership matrix of a query motion against the trained
    /// centers (Eq. 9 applied per window) — the data behind Fig. 3.
    pub fn window_memberships(&self, record: &MotionRecord) -> Result<Matrix> {
        let mut points = record_points(record, &self.window, self.config.modality)?;
        if let Some(z) = &self.scaler {
            points = z.transform(&points)?;
        }
        let c = self.fcm.num_clusters();
        let mut out = Matrix::zeros(points.rows(), c);
        let mut d2 = vec![0.0; c];
        for w in 0..points.rows() {
            // Eq. 9 straight into the output row: one scratch buffer for
            // the whole query instead of a Vec per window.
            self.fcm
                .memberships_into(points.row(w), out.row_mut(w), &mut d2)?;
        }
        Ok(out)
    }

    /// Per-window highest membership + cluster (Eqs. 5–6) for a query.
    pub fn window_assignments(&self, record: &MotionRecord) -> Result<Vec<WindowAssignment>> {
        Ok(window_assignments(&self.window_memberships(record)?)?)
    }

    /// The query's final `2c`-length feature vector (Sec. 4).
    pub fn query_feature_vector(&self, record: &MotionRecord) -> Result<Vector> {
        Ok(motion_feature_vector(&self.window_memberships(record)?)?)
    }

    /// The retrieval backend answering [`neighbors`](Self::neighbors)
    /// queries under this model's configuration (for health reporting
    /// and operator tooling).
    pub fn index_kind(&self) -> IndexBackend {
        self.config.index_kind()
    }

    /// k-nearest stored motions for an already-extracted feature vector
    /// — the single seam every query path (single, batch, streaming,
    /// served) routes through.
    ///
    /// `config.index_kind()` picks the backend: the paper's exact linear
    /// scan (the default), the exact cached [`HybridIndex`], or the
    /// approximate [`AnnIndex`] (graph over the stable prefix, exact
    /// linear tail, recall@k contract per DESIGN.md §15). Cached indexes
    /// rebuild once the tail of motions appended since the last build
    /// reaches `config.index_rebuild_appends`; the ANN backend with
    /// threshold 0 builds once at first query and then serves the
    /// growing tail exactly.
    pub(crate) fn neighbors(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor<RecordMeta>>> {
        let db = self.db.read();
        let kind = self.config.index_kind();
        if kind == IndexBackend::Linear {
            return Ok(knn(&db, query, k)?);
        }
        let mut cache = self.index.lock().unwrap_or_else(|p| p.into_inner());
        let rebuild = match cache.as_ref() {
            // A database shorter than the indexed prefix is not the
            // append-only db the index was built from; start over.
            Some(idx) => {
                db.len() < idx.covered()
                    || (self.config.index_rebuild_appends > 0
                        && idx.stale_appends(&db) >= self.config.index_rebuild_appends)
            }
            None => true,
        };
        if rebuild {
            *cache = Some(match kind {
                IndexBackend::Ann => CachedIndex::Ann(AnnIndex::build(
                    &db,
                    AnnParams::default().with_seed(self.config.seed),
                )),
                _ => CachedIndex::Hybrid(HybridIndex::build(&db)),
            });
        }
        match cache.as_ref() {
            Some(idx) => Ok(idx.knn(&db, query, k)?),
            None => Ok(knn(&db, query, k)?),
        }
    }

    /// Retrieves the `k` nearest stored motions for a query record.
    pub fn retrieve(&self, record: &MotionRecord, k: usize) -> Result<Vec<Neighbor<RecordMeta>>> {
        let fv = self.query_feature_vector(record)?;
        self.neighbors(fv.as_slice(), k)
    }

    /// Classifies a query motion by majority vote over `knn_k` neighbours.
    pub fn classify_record(&self, record: &MotionRecord) -> Result<Classification> {
        let fv = self.query_feature_vector(record)?;
        let neighbors = self.neighbors(fv.as_slice(), self.config.knn_k)?;
        let predicted =
            classify(&neighbors, |m| m.class).ok_or(KinemyoError::InvalidTrainingData {
                reason: "no neighbours retrieved".into(),
            })?;
        Ok(Classification {
            predicted,
            neighbors,
            feature_vector: fv,
        })
    }

    /// Classifies a batch of query motions, fanning the queries across
    /// worker threads per the config's thread policy (each worker reads
    /// the shared database concurrently).
    ///
    /// Results are in input order and identical to calling
    /// [`classify_record`](Self::classify_record) on each record; one
    /// failing query does not abort the rest of the batch.
    pub fn classify_batch(&self, records: &[&MotionRecord]) -> Vec<Result<Classification>> {
        let workers = self.config.threads.workers().min(records.len());
        if workers <= 1 {
            return records.iter().map(|r| self.classify_record(r)).collect();
        }
        let slots: Vec<Mutex<Option<Result<Classification>>>> =
            records.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= records.len() {
                        break;
                    }
                    // A panicking query must cost only its own slot, not
                    // the batch: scope would re-raise the panic on join.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.classify_record(records[i])
                    }))
                    .unwrap_or_else(|_| {
                        Err(KinemyoError::Internal {
                            reason: format!("query worker panicked on record index {i}"),
                        })
                    });
                    // A poisoned slot means a previous holder panicked
                    // after writing; the value is still ours to replace.
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .unwrap_or_else(|| {
                        Err(KinemyoError::Internal {
                            reason: format!("query index {i} was never claimed by a worker"),
                        })
                    })
            })
            .collect()
    }

    /// Standardizes a raw feature point with the training scaler (no-op
    /// when standardization is disabled). Used by the streaming path.
    pub(crate) fn scale_point(&self, point: &mut [f64]) -> Result<()> {
        if let Some(z) = &self.scaler {
            z.apply_mut(point)?;
        }
        Ok(())
    }

    /// Feature dimensionality of the window points.
    pub fn point_dim(&self) -> usize {
        self.fcm.dim()
    }

    /// Converts to the on-disk representation (see [`crate::persist`]).
    pub(crate) fn to_saved(&self) -> crate::persist::SavedModel {
        crate::persist::SavedModel {
            version: crate::persist::FORMAT_VERSION,
            config: self.config.clone(),
            limb: self.limb,
            window: self.window,
            scaler: self.scaler.clone(),
            fcm: self.fcm.clone(),
            db: self.db.snapshot(),
        }
    }

    /// Rebuilds a classifier from its on-disk representation.
    pub(crate) fn from_saved(saved: crate::persist::SavedModel) -> Result<Self> {
        if saved.version != crate::persist::FORMAT_VERSION {
            return Err(KinemyoError::ModelVersionMismatch {
                found: saved.version,
                expected: crate::persist::FORMAT_VERSION,
            });
        }
        saved.config.validate()?;
        Ok(Self {
            config: saved.config,
            limb: saved.limb,
            window: saved.window,
            scaler: saved.scaler,
            fcm: saved.fcm,
            db: SharedDb::new(saved.db),
            index: Mutex::new(None),
        })
    }
}

/// Window feature points for one record (the Sec. 3.3 combined points).
pub(crate) fn record_points(
    record: &MotionRecord,
    window: &WindowSpec,
    modality: Modality,
) -> Result<Matrix> {
    let pelvis = pelvis_matrix(&record.pelvis);
    Ok(window_feature_points(
        &record.mocap,
        &pelvis,
        &record.emg,
        window,
        modality,
    )?)
}

/// Maps a class to its stable index within the limb's class list.
pub fn class_index(limb: Limb, class: MotionClass) -> usize {
    MotionClass::all_for(limb)
        .iter()
        .position(|&c| c == class)
        .expect("class belongs to limb")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo_biosim::{Dataset, DatasetSpec};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap()
    }

    fn train(ds: &Dataset, cfg: &PipelineConfig) -> MotionClassifier {
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        MotionClassifier::train(&refs, ds.spec.limb, cfg).unwrap()
    }

    #[test]
    fn training_produces_expected_shapes() {
        let ds = tiny_dataset();
        let cfg = PipelineConfig::default().with_clusters(8);
        let model = train(&ds, &cfg);
        assert_eq!(model.db().len(), ds.len());
        assert_eq!(model.db().dim(), 16); // 2c
        assert_eq!(model.fcm().num_clusters(), 8);
        // Combined dim: 4 EMG + 12 mocap = 16.
        assert_eq!(model.point_dim(), 16);
        assert_eq!(model.limb(), Limb::RightHand);
    }

    #[test]
    fn training_vectors_are_valid_memberships() {
        let ds = tiny_dataset();
        let model = train(&ds, &PipelineConfig::default().with_clusters(6));
        for e in model.db().entries() {
            assert_eq!(e.vector.len(), 12);
            for pair in e.vector.chunks(2) {
                assert!(pair[0] >= 0.0 && pair[1] <= 1.0 + 1e-9);
                assert!(pair[0] <= pair[1] + 1e-12);
            }
        }
    }

    #[test]
    fn training_record_queries_close_to_itself() {
        // A training record queried back through Eq. 9 must retrieve itself
        // as the nearest neighbour (distance ~0).
        let ds = tiny_dataset();
        let model = train(&ds, &PipelineConfig::default().with_clusters(10));
        let r = &ds.records[0];
        let neighbors = model.retrieve(r, 1).unwrap();
        assert_eq!(neighbors[0].id, r.id);
        assert!(
            neighbors[0].distance < 1e-9,
            "self-distance {}",
            neighbors[0].distance
        );
    }

    #[test]
    fn classify_training_records_with_k1_is_perfect() {
        // With k = 1 every training record retrieves itself (distance 0),
        // so classification must be exact. (Quality on held-out queries
        // with the paper's k = 5 is covered by the integration tests on a
        // full-size dataset — with only 3 trials per class here, 5
        // neighbours cannot even contain a same-class majority.)
        let ds = tiny_dataset();
        let mut cfg = PipelineConfig::default().with_clusters(12);
        cfg.knn_k = 1;
        let model = train(&ds, &cfg);
        for r in &ds.records {
            let c = model.classify_record(r).unwrap();
            assert_eq!(c.predicted, r.class, "record {} misclassified", r.id);
            assert_eq!(c.neighbors[0].id, r.id);
        }
    }

    #[test]
    fn window_membership_rows_sum_to_one() {
        let ds = tiny_dataset();
        let model = train(&ds, &PipelineConfig::default().with_clusters(5));
        let m = model.window_memberships(&ds.records[0]).unwrap();
        assert_eq!(m.cols(), 5);
        assert!(m.rows() > 10);
        for w in 0..m.rows() {
            let s: f64 = m.row(w).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_wrong_limb_records() {
        let hand = tiny_dataset();
        let refs: Vec<&MotionRecord> = hand.records.iter().collect();
        let err = MotionClassifier::train(&refs, Limb::RightLeg, &PipelineConfig::default());
        assert!(matches!(err, Err(KinemyoError::InvalidTrainingData { .. })));
    }

    #[test]
    fn rejects_empty_training_set() {
        let err = MotionClassifier::train(&[], Limb::RightHand, &PipelineConfig::default());
        assert!(matches!(err, Err(KinemyoError::InvalidTrainingData { .. })));
    }

    #[test]
    fn rejects_more_clusters_than_windows() {
        let ds = tiny_dataset();
        let refs: Vec<&MotionRecord> = ds.records[..2].iter().collect();
        let cfg = PipelineConfig::default()
            .with_clusters(10_000)
            .with_window_ms(200.0);
        let err = MotionClassifier::train(&refs, Limb::RightHand, &cfg);
        assert!(matches!(err, Err(KinemyoError::InvalidTrainingData { .. })));
    }

    #[test]
    fn deterministic_training() {
        let ds = tiny_dataset();
        let cfg = PipelineConfig::default().with_clusters(6);
        let m1 = train(&ds, &cfg);
        let m2 = train(&ds, &cfg);
        for (a, b) in m1.db().entries().iter().zip(m2.db().entries()) {
            assert_eq!(a.vector, b.vector);
        }
    }

    #[test]
    fn modalities_produce_different_dims() {
        let ds = tiny_dataset();
        let emg_model = train(
            &ds,
            &PipelineConfig::default()
                .with_clusters(6)
                .with_modality(Modality::EmgOnly),
        );
        let mocap_model = train(
            &ds,
            &PipelineConfig::default()
                .with_clusters(6)
                .with_modality(Modality::MocapOnly),
        );
        assert_eq!(emg_model.point_dim(), 4);
        assert_eq!(mocap_model.point_dim(), 12);
    }

    #[test]
    fn class_index_is_stable() {
        assert_eq!(class_index(Limb::RightHand, MotionClass::RaiseArm), 0);
        assert_eq!(class_index(Limb::RightLeg, MotionClass::Walk), 0);
        assert_eq!(class_index(Limb::RightLeg, MotionClass::HeelRaise), 5);
    }

    #[test]
    fn classify_batch_matches_sequential_classify() {
        use kinemyo_fuzzy::ThreadPolicy;
        let ds = tiny_dataset();
        let cfg = PipelineConfig::default()
            .with_clusters(8)
            .with_threads(ThreadPolicy::Fixed(4));
        let model = train(&ds, &cfg);
        let refs: Vec<&MotionRecord> = ds.records.iter().collect();
        let batch = model.classify_batch(&refs);
        assert_eq!(batch.len(), refs.len());
        for (r, b) in refs.iter().zip(&batch) {
            let s = model.classify_record(r).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(b.predicted, s.predicted);
            assert_eq!(b.feature_vector.as_slice(), s.feature_vector.as_slice());
            let b_ids: Vec<usize> = b.neighbors.iter().map(|n| n.id).collect();
            let s_ids: Vec<usize> = s.neighbors.iter().map(|n| n.id).collect();
            assert_eq!(b_ids, s_ids);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let ds = tiny_dataset();
        let model = train(&ds, &PipelineConfig::default().with_clusters(6));
        assert!(model.classify_batch(&[]).is_empty());
    }

    #[test]
    fn training_is_thread_count_invariant() {
        use kinemyo_fuzzy::ThreadPolicy;
        let ds = tiny_dataset();
        let base = PipelineConfig::default().with_clusters(6);
        let seq = train(&ds, &base.clone().with_threads(ThreadPolicy::Sequential));
        let par = train(&ds, &base.with_threads(ThreadPolicy::Fixed(4)));
        assert!(seq.fcm().centers.approx_eq(&par.fcm().centers, 0.0));
        assert!(seq.fcm().memberships.approx_eq(&par.fcm().memberships, 0.0));
        for (a, b) in seq.db().entries().iter().zip(par.db().entries()) {
            assert_eq!(a.vector, b.vector);
        }
    }

    #[test]
    fn cloned_model_db_is_detached() {
        let ds = tiny_dataset();
        let model = train(&ds, &PipelineConfig::default().with_clusters(6));
        let cloned = model.clone();
        let dim = model.db().dim();
        model
            .shared_db()
            .insert(
                9999,
                RecordMeta {
                    record_id: 9999,
                    class: ds.records[0].class,
                    participant: 0,
                    trial: 0,
                },
                vec![0.5; dim],
            )
            .unwrap();
        assert_eq!(model.db().len(), ds.len() + 1);
        assert_eq!(cloned.db().len(), ds.len());
    }

    #[test]
    fn pelvis_matrix_layout() {
        let pelvis = vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        let m = pelvis_matrix(&pelvis);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn record_meta_codec_roundtrips_and_rejects_malformed() {
        let meta = RecordMeta {
            record_id: 42,
            class: MotionClass::Punch,
            participant: 3,
            trial: 17,
        };
        let mut bytes = Vec::new();
        meta.encode_meta(&mut bytes);
        assert_eq!(bytes.len(), META_WIRE_BYTES);
        assert_eq!(RecordMeta::decode_meta(&bytes), Some(meta));
        // Truncated, extended, and unknown-class payloads must all fail.
        assert_eq!(RecordMeta::decode_meta(&bytes[..bytes.len() - 1]), None);
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(RecordMeta::decode_meta(&longer), None);
        let mut bad_class = bytes.clone();
        bad_class[8] = 200;
        assert_eq!(RecordMeta::decode_meta(&bad_class), None);
        assert_eq!(RecordMeta::decode_meta(&[]), None);
    }

    #[test]
    fn record_meta_codec_covers_every_class() {
        for limb in [Limb::RightHand, Limb::RightLeg] {
            for &class in MotionClass::all_for(limb) {
                let meta = RecordMeta {
                    record_id: 1,
                    class,
                    participant: 0,
                    trial: 0,
                };
                let mut bytes = Vec::new();
                meta.encode_meta(&mut bytes);
                assert_eq!(RecordMeta::decode_meta(&bytes), Some(meta));
            }
        }
    }

    #[test]
    fn indexed_lookup_matches_linear_scan() {
        let ds = tiny_dataset();
        let linear_cfg = PipelineConfig::default().with_clusters(8);
        let indexed_cfg = linear_cfg.clone().with_index_rebuild_appends(1);
        let linear = train(&ds, &linear_cfg);
        let indexed = train(&ds, &indexed_cfg);
        for r in &ds.records {
            let a = linear.classify_record(r).unwrap();
            let b = indexed.classify_record(r).unwrap();
            assert_eq!(a.predicted, b.predicted);
            let a_ids: Vec<usize> = a.neighbors.iter().map(|n| n.id).collect();
            let b_ids: Vec<usize> = b.neighbors.iter().map(|n| n.id).collect();
            assert_eq!(a_ids, b_ids, "record {}", r.id);
        }
    }

    #[test]
    fn indexed_lookup_sees_appends_immediately() {
        // With a high rebuild threshold the tree goes stale, but the tail
        // scan must still surface motions appended after the index build.
        let ds = tiny_dataset();
        let cfg = PipelineConfig::default()
            .with_clusters(8)
            .with_index_rebuild_appends(1000);
        let model = train(&ds, &cfg);
        let r = &ds.records[0];
        // Build the index, then append an exact duplicate of r's vector.
        let fv = model.query_feature_vector(r).unwrap();
        let _ = model.retrieve(r, 1).unwrap();
        // Clone before inserting: a `db()` read guard alive inside the
        // insert statement would deadlock against its write lock.
        let duplicate = model.db().entries()[0].vector.clone();
        model
            .shared_db()
            .insert(
                9999,
                RecordMeta {
                    record_id: 9999,
                    class: r.class,
                    participant: 0,
                    trial: 0,
                },
                duplicate,
            )
            .unwrap();
        let neighbors = model.neighbors(fv.as_slice(), 2).unwrap();
        let ids: Vec<usize> = neighbors.iter().map(|n| n.id).collect();
        assert!(ids.contains(&9999), "appended motion missing: {ids:?}");
        assert!(ids.contains(&r.id), "original motion missing: {ids:?}");
    }
}
