//! Evaluation harness reproducing the paper's Sec. 6 methodology:
//! misclassification rate and kNN correct-retrieval percentage, swept over
//! window size (50–200 ms) and cluster count (5–40).

use crate::config::PipelineConfig;
use crate::error::{KinemyoError, Result};
use crate::pipeline::{class_index, MotionClassifier};
use kinemyo_biosim::{Limb, MotionRecord};
use kinemyo_modb::{knn_correct_pct, mean_pct, ConfusionMatrix};
use serde::{Deserialize, Serialize};

/// Outcome of evaluating one train/query split.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Percent of queries whose majority-vote class was wrong
    /// (Figs. 6–7 metric).
    pub misclassification_pct: f64,
    /// Mean percent of the k retrieved motions sharing the query's class
    /// (Figs. 8–9 metric).
    pub knn_correct_pct: f64,
    /// Full confusion matrix over the limb's classes.
    pub confusion: ConfusionMatrix,
    /// Number of queries evaluated.
    pub queries: usize,
}

/// Stratified train/query split: for every (participant, class) cell, the
/// last `queries_per_cell` trials become queries and the rest train — the
/// paper's "for certain amount of queries" protocol made deterministic.
pub fn stratified_split(
    records: &[MotionRecord],
    queries_per_cell: usize,
) -> (Vec<&MotionRecord>, Vec<&MotionRecord>) {
    // BTreeMap so the (participant, class) cells iterate in key order —
    // the split is byte-identical run to run.
    use std::collections::BTreeMap;
    let mut cells: BTreeMap<(usize, &'static str), Vec<&MotionRecord>> = BTreeMap::new();
    for r in records {
        cells
            .entry((r.participant, r.class.name()))
            .or_default()
            .push(r);
    }
    let mut train = Vec::new();
    let mut query = Vec::new();
    for (_, mut cell) in cells {
        cell.sort_by_key(|r| r.trial);
        let n = cell.len();
        let q = queries_per_cell.min(n.saturating_sub(1));
        for (i, r) in cell.into_iter().enumerate() {
            if i >= n - q {
                query.push(r);
            } else {
                train.push(r);
            }
        }
    }
    train.sort_by_key(|r| r.id);
    query.sort_by_key(|r| r.id);
    (train, query)
}

/// Trains on `train` and evaluates every record in `queries`.
pub fn evaluate(
    train: &[&MotionRecord],
    queries: &[&MotionRecord],
    limb: Limb,
    config: &PipelineConfig,
) -> Result<EvalOutcome> {
    if queries.is_empty() {
        return Err(KinemyoError::InvalidTrainingData {
            reason: "no query records".into(),
        });
    }
    let model = MotionClassifier::train(train, limb, config)?;
    evaluate_with_model(&model, queries)
}

/// Evaluates queries against an already-trained model. Queries run as one
/// [`MotionClassifier::classify_batch`] call, so they fan out across the
/// model's thread policy; the metrics are accumulated in input order.
pub fn evaluate_with_model(
    model: &MotionClassifier,
    queries: &[&MotionRecord],
) -> Result<EvalOutcome> {
    let limb = model.limb();
    let n_classes = kinemyo_biosim::MotionClass::all_for(limb).len();
    let mut confusion = ConfusionMatrix::new(n_classes);
    let mut knn_pcts = Vec::with_capacity(queries.len());
    for (q, result) in queries.iter().zip(model.classify_batch(queries)) {
        let c = result?;
        confusion
            .record(class_index(limb, q.class), class_index(limb, c.predicted))
            .map_err(KinemyoError::Db)?;
        let labels: Vec<_> = c.neighbors.iter().map(|n| n.meta.class).collect();
        knn_pcts.push(knn_correct_pct(&q.class, &labels));
    }
    Ok(EvalOutcome {
        misclassification_pct: confusion.misclassification_pct(),
        knn_correct_pct: mean_pct(&knn_pcts),
        confusion,
        queries: queries.len(),
    })
}

/// One point of the Figs. 6–9 parameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Window size in milliseconds.
    pub window_ms: f64,
    /// Cluster count.
    pub clusters: usize,
    /// Misclassification percentage.
    pub misclassification_pct: f64,
    /// Mean kNN correct percentage.
    pub knn_correct_pct: f64,
}

/// Sweeps window sizes × cluster counts, evaluating each cell on the same
/// stratified split. Cells run in parallel on a crossbeam scope (each cell
/// trains its own FCM — this is the expensive part of reproducing Figs.
/// 6–9). Each cell is averaged over `repeats` FCM seedings: the paper
/// reports *average* misclassification, and FCM initialization is the
/// dominant run-to-run variance source.
pub fn sweep(
    records: &[MotionRecord],
    limb: Limb,
    window_sizes_ms: &[f64],
    cluster_counts: &[usize],
    base: &PipelineConfig,
    queries_per_cell: usize,
    repeats: usize,
) -> Result<Vec<SweepPoint>> {
    if repeats == 0 {
        return Err(KinemyoError::InvalidConfig {
            reason: "sweep repeats must be >= 1".into(),
        });
    }
    if window_sizes_ms.is_empty() || cluster_counts.is_empty() {
        return Err(KinemyoError::InvalidConfig {
            reason: "sweep needs at least one window size and one cluster count".into(),
        });
    }
    let (train, queries) = stratified_split(records, queries_per_cell);
    if train.is_empty() || queries.is_empty() {
        return Err(KinemyoError::InvalidTrainingData {
            reason: format!(
                "split produced {} train / {} query records",
                train.len(),
                queries.len()
            ),
        });
    }

    let cells: Vec<(f64, usize)> = window_sizes_ms
        .iter()
        .flat_map(|&w| cluster_counts.iter().map(move |&c| (w, c)))
        .collect();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cells.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<std::result::Result<SweepPoint, String>>> =
        std::sync::Mutex::new(Vec::with_capacity(cells.len()));

    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let (window_ms, clusters) = cells[i];
                let point = (0..repeats)
                    .map(|rep| {
                        // The sweep already saturates the cores with one
                        // cell per thread; nested FCM parallelism would
                        // only oversubscribe (results are policy-invariant
                        // anyway).
                        let config = base
                            .clone()
                            .with_window_ms(window_ms)
                            .with_clusters(clusters)
                            .with_seed(base.seed.wrapping_add(rep as u64 * 0x9E37))
                            .with_threads(kinemyo_fuzzy::ThreadPolicy::Sequential);
                        evaluate(&train, &queries, limb, &config)
                    })
                    .try_fold((0.0, 0.0), |(mc, kn), outcome| {
                        outcome.map(|o| (mc + o.misclassification_pct, kn + o.knn_correct_pct))
                    })
                    .map(|(mc, kn)| SweepPoint {
                        window_ms,
                        clusters,
                        misclassification_pct: mc / repeats as f64,
                        knn_correct_pct: kn / repeats as f64,
                    })
                    .map_err(|e| e.to_string());
                // A poisoned collector still holds every point pushed so
                // far; recover it rather than cascading the panic.
                results
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(point);
            });
        }
    })
    .expect("sweep threads do not panic");

    let mut points = Vec::with_capacity(cells.len());
    for r in results.into_inner().unwrap_or_else(|p| p.into_inner()) {
        match r {
            Ok(p) => points.push(p),
            Err(e) => {
                return Err(KinemyoError::InvalidTrainingData {
                    reason: format!("sweep cell failed: {e}"),
                })
            }
        }
    }
    points.sort_by(|a, b| {
        a.window_ms
            .total_cmp(&b.window_ms)
            .then(a.clusters.cmp(&b.clusters))
    });
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo_biosim::{Dataset, DatasetSpec};

    fn dataset() -> Dataset {
        Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap()
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let ds = dataset();
        let (train, query) = stratified_split(&ds.records, 1);
        assert_eq!(train.len() + query.len(), ds.len());
        // One query per (participant, class) cell: 6 classes × 1.
        assert_eq!(query.len(), 6);
        // Disjoint ids.
        for q in &query {
            assert!(train.iter().all(|t| t.id != q.id));
        }
        // Every class appears in both sides.
        for &class in kinemyo_biosim::MotionClass::all_for(Limb::RightHand) {
            assert!(train.iter().any(|r| r.class == class));
            assert!(query.iter().any(|r| r.class == class));
        }
    }

    #[test]
    fn split_never_empties_a_cell() {
        let ds = dataset();
        // Asking for more queries than trials still leaves 1 training trial.
        let (train, query) = stratified_split(&ds.records, 100);
        assert_eq!(train.len(), 6);
        assert_eq!(query.len(), 12);
    }

    #[test]
    fn evaluation_produces_sane_metrics() {
        let ds = dataset();
        let (train, query) = stratified_split(&ds.records, 1);
        let config = PipelineConfig::default().with_clusters(10);
        let out = evaluate(&train, &query, Limb::RightHand, &config).unwrap();
        assert_eq!(out.queries, 6);
        assert!((0.0..=100.0).contains(&out.misclassification_pct));
        assert!((0.0..=100.0).contains(&out.knn_correct_pct));
        assert_eq!(out.confusion.total(), 6);
    }

    #[test]
    fn evaluate_twice_is_bit_identical() {
        // The determinism contract end to end: same records, same config,
        // two independent train+evaluate runs — metrics agree to the bit,
        // not within a tolerance. Guards the BTreeMap split and total_cmp
        // comparators against a nondeterminism regression.
        let ds = dataset();
        let config = PipelineConfig::default().with_clusters(8);
        let (train, query) = stratified_split(&ds.records, 1);
        let a = evaluate(&train, &query, Limb::RightHand, &config).unwrap();
        let (train2, query2) = stratified_split(&ds.records, 1);
        let b = evaluate(&train2, &query2, Limb::RightHand, &config).unwrap();
        assert_eq!(
            a.misclassification_pct.to_bits(),
            b.misclassification_pct.to_bits()
        );
        assert_eq!(a.knn_correct_pct.to_bits(), b.knn_correct_pct.to_bits());
        assert_eq!(a.confusion.classes(), b.confusion.classes());
        for t in 0..a.confusion.classes() {
            for p in 0..a.confusion.classes() {
                assert_eq!(a.confusion.get(t, p), b.confusion.get(t, p));
            }
        }
    }

    #[test]
    fn evaluate_rejects_empty_queries() {
        let ds = dataset();
        let train: Vec<&MotionRecord> = ds.records.iter().collect();
        let err = evaluate(&train, &[], Limb::RightHand, &PipelineConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn sweep_covers_grid_sorted() {
        let ds = dataset();
        let points = sweep(
            &ds.records,
            Limb::RightHand,
            &[100.0, 200.0],
            &[5, 8],
            &PipelineConfig::default(),
            1,
            1,
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        let grid: Vec<(f64, usize)> = points.iter().map(|p| (p.window_ms, p.clusters)).collect();
        assert_eq!(grid, vec![(100.0, 5), (100.0, 8), (200.0, 5), (200.0, 8)]);
    }

    #[test]
    fn sweep_validates_inputs() {
        let ds = dataset();
        assert!(sweep(
            &ds.records,
            Limb::RightHand,
            &[],
            &[5],
            &PipelineConfig::default(),
            1,
            1
        )
        .is_err());
        assert!(sweep(
            &ds.records,
            Limb::RightHand,
            &[100.0],
            &[],
            &PipelineConfig::default(),
            1,
            1
        )
        .is_err());
    }
}
