//! Pipeline configuration.

use crate::error::{KinemyoError, Result};
use kinemyo_features::Modality;
use kinemyo_fuzzy::ThreadPolicy;
use serde::{Deserialize, Serialize};

/// Which retrieval backend answers [`neighbors()`] queries.
///
/// Interacts with [`PipelineConfig::index_rebuild_appends`]:
///
/// * [`Linear`](Self::Linear) — always the paper's exact linear scan,
///   even when a rebuild threshold is configured;
/// * [`Hybrid`](Self::Hybrid) (default) — the exact
///   `HybridIndex` (VP-tree prefix + linear tail) once
///   `index_rebuild_appends > 0`, otherwise a pure linear scan. This is
///   exactly the pre-`index_backend` behaviour, so old configs and saved
///   models keep their semantics;
/// * [`Ann`](Self::Ann) — the approximate `kinemyo-ann` HNSW graph over
///   the stable prefix with an exact linear tail. With
///   `index_rebuild_appends == 0` the graph is built once at first query
///   and never rebuilt (the growing tail stays exact); with a threshold
///   it rebuilds like the hybrid. Reported distances are exact; the
///   approximation is a measured recall@k contract (see DESIGN.md §15).
///
/// [`neighbors()`]: crate::pipeline::MotionClassifier
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum IndexBackend {
    /// Exact linear scan over the whole database (the paper's search).
    Linear,
    /// Exact VP-tree stable prefix + linear tail.
    #[default]
    Hybrid,
    /// Approximate HNSW graph prefix + exact linear tail.
    Ann,
}

impl IndexBackend {
    /// Lower-case name, matching the CLI `--index` flag values.
    pub fn as_str(&self) -> &'static str {
        match self {
            IndexBackend::Linear => "linear",
            IndexBackend::Hybrid => "hybrid",
            IndexBackend::Ann => "ann",
        }
    }
}

impl std::fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for IndexBackend {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "linear" => Ok(IndexBackend::Linear),
            "hybrid" => Ok(IndexBackend::Hybrid),
            "ann" => Ok(IndexBackend::Ann),
            other => Err(format!(
                "unknown index backend '{other}' (expected linear, hybrid, or ann)"
            )),
        }
    }
}

/// Full configuration of the classification pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Window length in milliseconds (paper: 50–200 ms).
    pub window_ms: f64,
    /// Frame rate of the synchronized streams, Hz (paper: 120).
    pub mocap_fs: f64,
    /// Number of fuzzy clusters `c` (paper sweeps 5–40).
    pub clusters: usize,
    /// Fuzzifier `m` (paper: 2, "most widely used").
    pub fuzzifier: f64,
    /// Neighbours retrieved by the kNN classifier (paper: 5).
    pub knn_k: usize,
    /// RNG seed for FCM initialization.
    pub seed: u64,
    /// FCM restarts (best objective wins).
    pub fcm_restarts: usize,
    /// FCM iteration cap per restart.
    pub fcm_max_iters: usize,
    /// Which modality's features to use (the ablation switch; the paper's
    /// contribution is `Combined`).
    #[serde(default)]
    pub modality: Modality,
    /// Standardize feature dimensions (z-score) before clustering. The
    /// paper notes the EMG (mV) and mocap (mm) resolutions differ by
    /// orders of magnitude; standardization puts them on a common scale.
    pub standardize: bool,
    /// Worker-thread policy for training (feature extraction + FCM) and
    /// batched queries. Every policy produces the identical model — see
    /// [`ThreadPolicy`].
    #[serde(default)]
    pub threads: ThreadPolicy,
    /// Index-staleness policy for live ingestion: rebuild the metric
    /// index once this many motions have been appended since the last
    /// build, scanning the shorter tail linearly in the meantime. `0`
    /// (the default) disables indexing entirely — every query is a pure
    /// linear scan, the paper's stated search.
    #[serde(default)]
    pub index_rebuild_appends: usize,
    /// Retrieval backend for `neighbors()` queries — see [`IndexBackend`]
    /// for how each variant interacts with `index_rebuild_appends`. The
    /// default ([`IndexBackend::Hybrid`]) reproduces the historical
    /// behaviour bit for bit, so configs written before this field
    /// existed load unchanged.
    #[serde(default)]
    pub index_backend: IndexBackend,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            window_ms: 100.0,
            mocap_fs: 120.0,
            clusters: 15,
            fuzzifier: 2.0,
            knn_k: 5,
            seed: 0x1CDE_2007,
            fcm_restarts: 2,
            fcm_max_iters: 200,
            modality: Modality::Combined,
            standardize: true,
            threads: ThreadPolicy::default(),
            index_rebuild_appends: 0,
            index_backend: IndexBackend::default(),
        }
    }
}

impl PipelineConfig {
    /// Starts a [`PipelineConfigBuilder`] from the paper's defaults.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder::new()
    }
    /// Sets the window length (ms).
    pub fn with_window_ms(mut self, ms: f64) -> Self {
        self.window_ms = ms;
        self
    }

    /// Sets the cluster count.
    pub fn with_clusters(mut self, c: usize) -> Self {
        self.clusters = c;
        self
    }

    /// Sets the modality (ablation switch).
    pub fn with_modality(mut self, m: Modality) -> Self {
        self.modality = m;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread policy.
    pub fn with_threads(mut self, threads: ThreadPolicy) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the index-staleness threshold (appends between metric-index
    /// rebuilds; 0 keeps the pure linear scan).
    pub fn with_index_rebuild_appends(mut self, appends: usize) -> Self {
        self.index_rebuild_appends = appends;
        self
    }

    /// Sets the retrieval backend for `neighbors()` queries.
    pub fn with_index_backend(mut self, backend: IndexBackend) -> Self {
        self.index_backend = backend;
        self
    }

    /// The backend that will actually answer `neighbors()` queries under
    /// this configuration: [`IndexBackend::Hybrid`] degrades to
    /// [`IndexBackend::Linear`] while `index_rebuild_appends == 0` (no
    /// staleness policy → no index, the historical default), while
    /// [`IndexBackend::Ann`] always uses the graph.
    pub fn index_kind(&self) -> IndexBackend {
        match self.index_backend {
            IndexBackend::Hybrid if self.index_rebuild_appends == 0 => IndexBackend::Linear,
            other => other,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(self.window_ms > 0.0) || !self.window_ms.is_finite() {
            return Err(KinemyoError::InvalidConfig {
                reason: format!("window_ms must be positive, got {}", self.window_ms),
            });
        }
        if !(self.mocap_fs > 0.0) || !self.mocap_fs.is_finite() {
            return Err(KinemyoError::InvalidConfig {
                reason: format!("mocap_fs must be positive, got {}", self.mocap_fs),
            });
        }
        if self.clusters == 0 {
            return Err(KinemyoError::InvalidConfig {
                reason: "clusters must be >= 1".into(),
            });
        }
        if self.knn_k == 0 {
            return Err(KinemyoError::InvalidConfig {
                reason: "knn_k must be >= 1".into(),
            });
        }
        if !(self.fuzzifier > 1.0) {
            return Err(KinemyoError::InvalidConfig {
                reason: format!("fuzzifier must be > 1, got {}", self.fuzzifier),
            });
        }
        if self.fcm_restarts == 0 || self.fcm_max_iters == 0 {
            return Err(KinemyoError::InvalidConfig {
                reason: "fcm_restarts and fcm_max_iters must be >= 1".into(),
            });
        }
        if let Err(reason) = self.threads.validate() {
            return Err(KinemyoError::InvalidConfig { reason });
        }
        Ok(())
    }
}

/// Builder for [`PipelineConfig`] that validates once, at [`build`].
///
/// The plain struct-literal / `with_*` path on [`PipelineConfig`] keeps
/// working; the builder is for call sites that assemble a config in stages
/// and want the invalid states rejected in one place:
///
/// ```
/// use kinemyo::prelude::*;
///
/// let config = PipelineConfig::builder()
///     .clusters(20)
///     .window_ms(150.0)
///     .threads(ThreadPolicy::Fixed(2))
///     .build()
///     .unwrap();
/// assert_eq!(config.clusters, 20);
/// assert!(PipelineConfig::builder().clusters(0).build().is_err());
/// ```
///
/// [`build`]: PipelineConfigBuilder::build
#[derive(Debug, Clone, Default)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Starts from the paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Window length in milliseconds.
    pub fn window_ms(mut self, ms: f64) -> Self {
        self.config.window_ms = ms;
        self
    }

    /// Frame rate of the synchronized streams, Hz.
    pub fn mocap_fs(mut self, fs: f64) -> Self {
        self.config.mocap_fs = fs;
        self
    }

    /// Number of fuzzy clusters.
    pub fn clusters(mut self, c: usize) -> Self {
        self.config.clusters = c;
        self
    }

    /// Fuzzifier `m`.
    pub fn fuzzifier(mut self, m: f64) -> Self {
        self.config.fuzzifier = m;
        self
    }

    /// Neighbours retrieved by the kNN classifier.
    pub fn knn_k(mut self, k: usize) -> Self {
        self.config.knn_k = k;
        self
    }

    /// RNG seed for FCM initialization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// FCM restart count.
    pub fn fcm_restarts(mut self, restarts: usize) -> Self {
        self.config.fcm_restarts = restarts;
        self
    }

    /// FCM iteration cap per restart.
    pub fn fcm_max_iters(mut self, iters: usize) -> Self {
        self.config.fcm_max_iters = iters;
        self
    }

    /// Feature modality (ablation switch).
    pub fn modality(mut self, modality: Modality) -> Self {
        self.config.modality = modality;
        self
    }

    /// Whether to z-score feature dimensions before clustering.
    pub fn standardize(mut self, on: bool) -> Self {
        self.config.standardize = on;
        self
    }

    /// Worker-thread policy.
    pub fn threads(mut self, threads: ThreadPolicy) -> Self {
        self.config.threads = threads;
        self
    }

    /// Index-staleness threshold (appends between metric-index rebuilds;
    /// 0 keeps the pure linear scan).
    pub fn index_rebuild_appends(mut self, appends: usize) -> Self {
        self.config.index_rebuild_appends = appends;
        self
    }

    /// Retrieval backend for `neighbors()` queries.
    pub fn index_backend(mut self, backend: IndexBackend) -> Self {
        self.config.index_backend = backend;
        self
    }

    /// Validates the assembled configuration and returns it.
    pub fn build(self) -> Result<PipelineConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = PipelineConfig::default();
        assert_eq!(c.fuzzifier, 2.0);
        assert_eq!(c.knn_k, 5);
        assert!((50.0..=200.0).contains(&c.window_ms));
        assert!((5..=40).contains(&c.clusters));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders() {
        let c = PipelineConfig::default()
            .with_window_ms(150.0)
            .with_clusters(25)
            .with_seed(9)
            .with_modality(Modality::EmgOnly);
        assert_eq!(c.window_ms, 150.0);
        assert_eq!(c.clusters, 25);
        assert_eq!(c.seed, 9);
        assert_eq!(c.modality, Modality::EmgOnly);
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(PipelineConfig::default()
            .with_window_ms(0.0)
            .validate()
            .is_err());
        assert!(PipelineConfig::default()
            .with_clusters(0)
            .validate()
            .is_err());
        let c = PipelineConfig {
            knn_k: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PipelineConfig {
            fuzzifier: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PipelineConfig {
            fcm_restarts: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PipelineConfig {
            threads: ThreadPolicy::Fixed(0),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_validates_at_build() {
        let c = PipelineConfig::builder()
            .window_ms(150.0)
            .clusters(25)
            .seed(9)
            .modality(Modality::EmgOnly)
            .threads(ThreadPolicy::Fixed(2))
            .knn_k(3)
            .fcm_restarts(4)
            .fcm_max_iters(50)
            .fuzzifier(2.5)
            .mocap_fs(60.0)
            .standardize(false)
            .build()
            .unwrap();
        assert_eq!(c.window_ms, 150.0);
        assert_eq!(c.clusters, 25);
        assert_eq!(c.seed, 9);
        assert_eq!(c.modality, Modality::EmgOnly);
        assert_eq!(c.threads, ThreadPolicy::Fixed(2));
        assert_eq!(c.knn_k, 3);
        assert_eq!(c.fcm_restarts, 4);
        assert_eq!(c.fcm_max_iters, 50);
        assert_eq!(c.fuzzifier, 2.5);
        assert_eq!(c.mocap_fs, 60.0);
        assert!(!c.standardize);

        assert!(PipelineConfig::builder().clusters(0).build().is_err());
        assert!(PipelineConfig::builder().fuzzifier(1.0).build().is_err());
        assert!(PipelineConfig::builder()
            .threads(ThreadPolicy::Fixed(0))
            .build()
            .is_err());
        // Defaults build cleanly.
        assert_eq!(
            PipelineConfig::builder().build().unwrap(),
            PipelineConfig::default()
        );
    }

    #[test]
    fn index_rebuild_appends_knob() {
        assert_eq!(PipelineConfig::default().index_rebuild_appends, 0);
        let c = PipelineConfig::default().with_index_rebuild_appends(64);
        assert_eq!(c.index_rebuild_appends, 64);
        assert!(c.validate().is_ok());
        let b = PipelineConfig::builder()
            .index_rebuild_appends(8)
            .build()
            .unwrap();
        assert_eq!(b.index_rebuild_appends, 8);
    }

    #[test]
    fn old_config_json_without_index_field_loads() {
        if serde_json::to_string(&0u32).is_err() {
            return; // serde_json stub build
        }
        // A config file written before `index_rebuild_appends` (and later
        // `index_backend`) existed.
        let json = r#"{
            "window_ms": 100.0, "mocap_fs": 120.0, "clusters": 15,
            "fuzzifier": 2.0, "knn_k": 5, "seed": 1, "fcm_restarts": 2,
            "fcm_max_iters": 200, "standardize": true
        }"#;
        let back: PipelineConfig = serde_json::from_str(json).unwrap();
        assert_eq!(back.index_rebuild_appends, 0);
        assert_eq!(back.index_backend, IndexBackend::Hybrid);
        // ... and the effective search is still the pure linear scan.
        assert_eq!(back.index_kind(), IndexBackend::Linear);
    }

    #[test]
    fn index_backend_knob_and_effective_kind() {
        let c = PipelineConfig::default();
        assert_eq!(c.index_backend, IndexBackend::Hybrid);
        // Historical default: no staleness policy → pure linear scan.
        assert_eq!(c.index_kind(), IndexBackend::Linear);
        assert_eq!(
            c.clone().with_index_rebuild_appends(64).index_kind(),
            IndexBackend::Hybrid
        );
        // Ann is in force with or without a rebuild threshold.
        let ann = c.clone().with_index_backend(IndexBackend::Ann);
        assert_eq!(ann.index_kind(), IndexBackend::Ann);
        assert_eq!(
            ann.clone().with_index_rebuild_appends(64).index_kind(),
            IndexBackend::Ann
        );
        // Linear is an explicit opt-out even with a threshold.
        let lin = c
            .clone()
            .with_index_backend(IndexBackend::Linear)
            .with_index_rebuild_appends(64);
        assert_eq!(lin.index_kind(), IndexBackend::Linear);
        assert!(lin.validate().is_ok());
        let b = PipelineConfig::builder()
            .index_backend(IndexBackend::Ann)
            .build()
            .unwrap();
        assert_eq!(b.index_backend, IndexBackend::Ann);
    }

    #[test]
    fn index_backend_names_round_trip() {
        for b in [
            IndexBackend::Linear,
            IndexBackend::Hybrid,
            IndexBackend::Ann,
        ] {
            assert_eq!(b.as_str().parse::<IndexBackend>().unwrap(), b);
            assert_eq!(format!("{b}"), b.as_str());
        }
        assert!("vptree".parse::<IndexBackend>().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = PipelineConfig::default().with_clusters(30);
        let json = serde_json::to_string(&c).unwrap();
        let back: PipelineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.clusters, 30);
        assert_eq!(back.modality, Modality::Combined);
        // Non-default modalities now survive the roundtrip too.
        let c2 = PipelineConfig::default().with_modality(Modality::EmgOnly);
        let back2: PipelineConfig =
            serde_json::from_str(&serde_json::to_string(&c2).unwrap()).unwrap();
        assert_eq!(back2.modality, Modality::EmgOnly);
    }
}
