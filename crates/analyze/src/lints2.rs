//! The concurrency & durability lint additions that stay per-file:
//! `unbounded-channel`, `wire-length-trust`, and `fsync-before-rename`.
//! (Their workspace-level siblings `lock-order-cycle` and `io-under-lock`
//! live in `graph.rs`.) See DESIGN.md §16 for rationale and the known
//! false-negative envelope of each.

use crate::lexer::{Tok, TokKind};
use crate::lints::{FileCtx, RawDiag};
use crate::spans::{fn_spans, match_paren, test_mask};

/// Crates whose non-test code must not create unbounded channels.
const CHANNEL_SCOPED_CRATES: [&str; 2] = ["serve", "cluster"];

/// File-stem fragments marking wire/frame codec modules.
const WIRE_MODULE_STEMS: [&str; 5] = ["wire", "frame", "protocol", "record", "codec"];

/// Runs the three per-file lints added with the concurrency pass.
pub fn run_all(tokens: &[Tok], ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    let in_test = test_mask(tokens);
    unbounded_channel(tokens, &in_test, ctx, out);
    wire_length_trust(tokens, &in_test, ctx, out);
    fsync_before_rename(tokens, &in_test, ctx, out);
}

/// **unbounded-channel** — `mpsc::channel()` in the serving/replication
/// crates. The blessed idiom is `mpsc::sync_channel` with explicit
/// shedding (`try_send` + a typed overload answer): an unbounded queue
/// converts overload into unbounded memory growth and silent latency.
fn unbounded_channel(tokens: &[Tok], in_test: &[bool], ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    if !CHANNEL_SCOPED_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        if tokens[i].is_ident("mpsc")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("channel"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            out.push(RawDiag {
                line: tokens[i + 3].line,
                lint: "unbounded-channel",
                message: "mpsc::channel() is unbounded; serving paths use \
                          mpsc::sync_channel with explicit shedding so overload \
                          degrades into typed rejections, not memory growth"
                    .into(),
            });
        }
    }
}

/// **wire-length-trust** — in wire/frame codec modules, a length decoded
/// from untrusted bytes (`uNN::from_le_bytes` or a `.u16()`/`.u32()`/
/// `.u64()` reader helper) must pass a bound check against a named
/// `MAX_*` cap before reaching an allocation- or slice-sized sink
/// (`Vec::with_capacity`, `vec![_; n]`, `.take(n)`, or a slice index).
fn wire_length_trust(tokens: &[Tok], in_test: &[bool], ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    if !WIRE_MODULE_STEMS.iter().any(|s| ctx.file_stem.contains(s)) {
        return;
    }
    for &(start, end) in &fn_spans(tokens) {
        if in_test[start] {
            continue;
        }
        // Pass 1: taint variables `let [mut] v = … <wire-length source> …;`
        // and clears (a statement comparing the variable against a MAX_*
        // identifier). Positions are token indices within the fn span.
        let mut tainted: Vec<(String, usize, usize)> = Vec::new(); // (var, from, cleared_at)
        let mut i = start;
        while i <= end {
            if !tokens[i].is_ident("let") {
                i += 1;
                continue;
            }
            let mut v = i + 1;
            if tokens.get(v).is_some_and(|t| t.is_ident("mut")) {
                v += 1;
            }
            let (Some(var), Some(eq)) = (tokens.get(v), tokens.get(v + 1)) else {
                i += 1;
                continue;
            };
            if var.kind != TokKind::Ident || !eq.is_punct('=') {
                i += 1;
                continue;
            }
            // Scan the initializer to its `;` for a taint source.
            let mut j = v + 2;
            let mut is_tainted = false;
            while j <= end && !tokens[j].is_punct(';') {
                let t = &tokens[j];
                let from_le = matches!(t.text.as_str(), "u16" | "u32" | "u64")
                    && t.kind == TokKind::Ident
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(j + 2).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(j + 3).is_some_and(|n| {
                        n.is_ident("from_le_bytes") || n.is_ident("from_be_bytes")
                    });
                let reader_helper = matches!(t.text.as_str(), "u16" | "u32" | "u64")
                    && t.kind == TokKind::Ident
                    && j > 0
                    && tokens[j - 1].is_punct('.')
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct('('));
                if from_le || reader_helper {
                    is_tainted = true;
                }
                j += 1;
            }
            if is_tainted {
                tainted.push((var.text.clone(), j, usize::MAX));
            }
            i = j + 1;
        }
        if tainted.is_empty() {
            continue;
        }
        // Clears: any later mention of the tainted variable within a few
        // tokens of a MAX_*-named identifier (a comparison or `.min(MAX)`).
        for k in start..=end {
            for t in tainted.iter_mut() {
                if t.2 != usize::MAX || k < t.1 || !tokens[k].is_ident(&t.0) {
                    continue;
                }
                let lo = k.saturating_sub(8);
                let hi = (k + 8).min(end);
                if tokens[lo..=hi]
                    .iter()
                    .any(|n| n.kind == TokKind::Ident && n.text.starts_with("MAX_"))
                {
                    t.2 = k;
                }
            }
        }
        // Pass 2: sinks reached by a still-tainted variable.
        for k in start..=end {
            let t = &tokens[k];
            let still_tainted = |name: &str, at: usize| -> bool {
                tainted
                    .iter()
                    .any(|(v, from, cleared)| v == name && at > *from && at < *cleared)
            };
            let args_have_taint = |open: usize| -> Option<&Tok> {
                let close = match_paren(tokens, open);
                tokens[open + 1..close]
                    .iter()
                    .zip(open + 1..close)
                    .find(|(a, idx)| a.kind == TokKind::Ident && still_tainted(&a.text, *idx))
                    .map(|(a, _)| a)
            };
            let sink = if (t.is_ident("with_capacity") || t.is_ident("take"))
                && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
            {
                args_have_taint(k + 1).map(|v| (v.text.clone(), t.text.clone()))
            } else if t.is_ident("vec") && tokens.get(k + 1).is_some_and(|n| n.is_punct('!')) {
                // `vec![fill; n]` — the length expression after `;`.
                let open = k + 2;
                if tokens.get(open).is_some_and(|n| n.is_punct('[')) {
                    let close = crate::spans::match_bracket(tokens, open, '[', ']');
                    let semi = (open + 1..close).find(|&p| tokens[p].is_punct(';'));
                    semi.and_then(|s| {
                        tokens[s + 1..close]
                            .iter()
                            .zip(s + 1..close)
                            .find(|(a, idx)| {
                                a.kind == TokKind::Ident && still_tainted(&a.text, *idx)
                            })
                            .map(|(a, _)| (a.text.clone(), "vec![_; n]".to_string()))
                    })
                } else {
                    None
                }
            } else if t.is_punct('[')
                && k > 0
                && (tokens[k - 1].kind == TokKind::Ident
                    || tokens[k - 1].is_punct(')')
                    || tokens[k - 1].is_punct(']'))
                && !tokens[k - 1].is_ident("vec")
            {
                // Slice/array index: `buf[.. n]`, `buf[n]`.
                let close = crate::spans::match_bracket(tokens, k, '[', ']');
                tokens[k + 1..close]
                    .iter()
                    .zip(k + 1..close)
                    .find(|(a, idx)| a.kind == TokKind::Ident && still_tainted(&a.text, *idx))
                    .map(|(a, _)| (a.text.clone(), "slice index".to_string()))
            } else {
                None
            };
            if let Some((var, sink_name)) = sink {
                out.push(RawDiag {
                    line: t.line,
                    lint: "wire-length-trust",
                    message: format!(
                        "length `{var}` decoded from wire bytes reaches `{sink_name}` \
                         without a bound check against a named MAX_* cap; an attacker \
                         controls this value"
                    ),
                });
            }
        }
    }
}

/// **fsync-before-rename** — in `store` (and `core`'s persist module), a
/// `rename` call must be dominated by a `sync_all`/`sync_data` on the
/// temp file earlier in the same function: renaming an unsynced file
/// into place lets a crash publish a complete-looking name over
/// incomplete bytes, voiding the torn-tail recovery guarantee.
fn fsync_before_rename(tokens: &[Tok], in_test: &[bool], ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    let scoped = ctx.crate_name == "store"
        || (ctx.crate_name == "core" && ctx.file_stem.contains("persist"));
    if !scoped {
        return;
    }
    for &(start, end) in &fn_spans(tokens) {
        if in_test[start] {
            continue;
        }
        let mut synced = false;
        for i in start..=end {
            let t = &tokens[i];
            if t.is_ident("sync_all") || t.is_ident("sync_data") {
                synced = true;
            }
            if t.is_ident("rename") && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) && !synced
            {
                out.push(RawDiag {
                    line: t.line,
                    lint: "fsync-before-rename",
                    message: "fs::rename without a preceding sync_all/sync_data in this \
                              function: a crash can publish a complete-looking file name \
                              over incomplete bytes"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diags(src: &str, crate_name: &str, file_stem: &str) -> Vec<RawDiag> {
        let l = lex(src);
        let mut out = Vec::new();
        run_all(
            &l.tokens,
            &FileCtx {
                crate_name,
                file_stem,
            },
            &mut out,
        );
        out
    }

    #[test]
    fn unbounded_channel_flagged_in_serving_crates_only() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }";
        assert!(diags(src, "serve", "server")
            .iter()
            .any(|d| d.lint == "unbounded-channel"));
        assert!(diags(src, "core", "pipeline")
            .iter()
            .all(|d| d.lint != "unbounded-channel"));
        let bounded = "fn f() { let (tx, rx) = mpsc::sync_channel(8); }";
        assert!(diags(bounded, "serve", "server")
            .iter()
            .all(|d| d.lint != "unbounded-channel"));
    }

    #[test]
    fn wire_length_taint_flows_to_with_capacity() {
        let src = "fn decode(buf: &[u8]) {\n\
             let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;\n\
             let v: Vec<u8> = Vec::with_capacity(len);\n\
         }";
        let d = diags(src, "cluster", "wire");
        assert!(d.iter().any(|x| x.lint == "wire-length-trust"), "{d:?}");
    }

    #[test]
    fn max_cap_check_clears_the_taint() {
        let src = "fn decode(buf: &[u8]) -> Option<Vec<u8>> {\n\
             let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;\n\
             if len > MAX_FRAME_BYTES as usize { return None; }\n\
             Some(Vec::with_capacity(len))\n\
         }";
        let d = diags(src, "cluster", "wire");
        assert!(d.iter().all(|x| x.lint != "wire-length-trust"), "{d:?}");
    }

    #[test]
    fn reader_helper_taints_and_stem_scopes() {
        let src = "fn decode(r: &mut Reader) {\n\
             let n = r.u32()? as usize;\n\
             let v = vec![0u8; n];\n\
         }";
        assert!(diags(src, "store", "record")
            .iter()
            .any(|d| d.lint == "wire-length-trust"));
        assert!(diags(src, "core", "pipeline")
            .iter()
            .all(|d| d.lint != "wire-length-trust"));
    }

    #[test]
    fn rename_requires_prior_fsync_in_store() {
        let bad = "fn publish(tmp: &Path, dst: &Path) { std::fs::rename(tmp, dst); }";
        assert!(diags(bad, "store", "snapshot")
            .iter()
            .any(|d| d.lint == "fsync-before-rename"));
        let good = "fn publish(f: &File, tmp: &Path, dst: &Path) {\n\
             f.sync_all();\n\
             std::fs::rename(tmp, dst);\n\
         }";
        assert!(diags(good, "store", "snapshot")
            .iter()
            .all(|d| d.lint != "fsync-before-rename"));
        assert!(diags(bad, "serve", "server")
            .iter()
            .all(|d| d.lint != "fsync-before-rename"));
    }
}
