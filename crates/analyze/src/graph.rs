//! The workspace pass: stitches per-file [`FileSummary`]s into a lock
//! acquisition graph and a name-level call-graph approximation, and
//! emits the two cross-function lints:
//!
//! - **lock-order-cycle** — an edge `A -> B` means some thread acquires
//!   lock `B` while holding `A` (observed intra-function, or through one
//!   level of call-graph propagation). Any cycle in the graph is a
//!   potential deadlock.
//! - **io-under-lock** — a blocking call (socket, fsync, condvar wait on
//!   an unrelated lock) made while a lock guard is live, in the serving
//!   crates (`serve`, `cluster`, `store`). Besides direct sinks, a call
//!   to a function whose (transitive) summary performs blocking I/O is
//!   flagged at the call site.
//!
//! Call resolution is by *name and arity*, filtered by the crate
//! dependency DAG (a call in `modb` can never resolve to a function in
//! `store`, because `store` depends on `modb` and not vice versa). Locks
//! are identified as `crate::field`; an acquisition only counts when the
//! receiver identifier matches a lock harvested in the same crate, so
//! `stdout().lock()` or a local `.read(buf)` never enters the graph.

use crate::lints::RawDiag;
use crate::summaries::FileSummary;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Crates whose code is in scope for `io-under-lock`.
const IO_UNDER_LOCK_CRATES: [&str; 3] = ["serve", "cluster", "store"];

/// One file's summary plus the identity the graph pass needs.
pub struct FileInput<'a> {
    pub path: &'a str,
    pub crate_name: &'a str,
    pub summary: &'a FileSummary,
}

/// Transitive internal-dependency map, parsed from `crates/*/Cargo.toml`
/// (and top-level `tests/`): crate dir name -> every `kinemyo-*` crate it
/// can reach. Line-based on purpose — the analyzer stays dependency-free.
pub fn crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut manifest_dirs: Vec<(String, std::path::PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name().to_string_lossy().into_owned();
                manifest_dirs.push((name, path));
            }
        }
    }
    manifest_dirs.push(("tests".into(), root.join("tests")));
    for (name, dir) in manifest_dirs {
        let Ok(toml) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let deps = direct.entry(name.clone()).or_default();
        let mut in_deps = false;
        for line in toml.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line.starts_with("[dependencies")
                    || line.starts_with("[dev-dependencies")
                    || line.starts_with("[build-dependencies");
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(rest) = line.strip_prefix("kinemyo-") {
                let dep: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !dep.is_empty() && dep != name {
                    deps.insert(dep);
                }
            }
        }
    }
    // Transitive closure.
    loop {
        let mut grew = false;
        let names: Vec<String> = direct.keys().cloned().collect();
        for name in names {
            let reach: BTreeSet<String> = direct[&name]
                .iter()
                .flat_map(|d| direct.get(d).into_iter().flatten().cloned())
                .collect();
            let deps = direct.get_mut(&name).expect("key just listed");
            for r in reach {
                grew |= deps.insert(r);
            }
        }
        if !grew {
            return direct;
        }
    }
}

/// True when a call in `from` may resolve to a function in `to`. With an
/// empty dependency map (single-file analysis) only same-crate calls
/// resolve.
fn visible(deps: &BTreeMap<String, BTreeSet<String>>, from: &str, to: &str) -> bool {
    from == to || deps.get(from).is_some_and(|d| d.contains(to))
}

/// Identity of one function summary: (file index, fn index).
type FnId = (usize, usize);

/// Runs the workspace pass; returns raw diagnostics keyed by file index.
pub fn workspace_pass(
    files: &[FileInput],
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<(usize, RawDiag)> {
    // Harvested lock names, unioned per crate.
    let mut locks_of: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in files {
        let set = locks_of.entry(f.crate_name).or_default();
        for l in &f.summary.locks {
            set.insert(l.name.as_str());
        }
    }
    let is_lock =
        |krate: &str, name: &str| -> bool { locks_of.get(krate).is_some_and(|s| s.contains(name)) };
    let qualify = |krate: &str, name: &str| -> String { format!("{krate}::{name}") };

    // Function index: name -> summaries carrying it.
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.summary.fns.iter().enumerate() {
            by_name.entry(g.name.as_str()).or_default().push((fi, gi));
        }
    }
    let fn_of = |id: FnId| &files[id.0].summary.fns[id.1];

    // Token positions consumed as lock acquisitions: the matching
    // `lock`/`read`/`write` CallOut must not also resolve as a call.
    let mut acquired_pos: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.summary.fns.iter().enumerate() {
            for a in &g.acquires {
                if is_lock(f.crate_name, &a.lock) {
                    acquired_pos.insert((fi, gi, a.pos));
                }
            }
        }
    }

    // Transitive does-blocking-io, propagated over name+arity-resolved,
    // dependency-filtered calls.
    let mut does_io: BTreeSet<FnId> = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.summary.fns.iter().enumerate() {
            if g.does_io() {
                does_io.insert((fi, gi));
            }
        }
    }
    loop {
        let mut grew = false;
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.summary.fns.iter().enumerate() {
                if does_io.contains(&(fi, gi)) {
                    continue;
                }
                let spreads = g.calls.iter().any(|c| {
                    !acquired_pos.contains(&(fi, gi, c.pos))
                        && by_name.get(c.callee.as_str()).is_some_and(|cands| {
                            cands.iter().any(|&id| {
                                id != (fi, gi)
                                    && does_io.contains(&id)
                                    && fn_of(id).arity == c.arity
                                    && visible(deps, f.crate_name, files[id.0].crate_name)
                            })
                        })
                });
                if spreads {
                    does_io.insert((fi, gi));
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Lock graph: edge (held -> acquired), keeping the first site per
    // edge in (path, line) order for deterministic reporting.
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    let mut add_edge = |from: String, to: String, site: (usize, u32), files: &[FileInput]| {
        let key = (from, to);
        let better = |a: (usize, u32), b: (usize, u32)| -> (usize, u32) {
            if (files[a.0].path, a.1) <= (files[b.0].path, b.1) {
                a
            } else {
                b
            }
        };
        edges
            .entry(key)
            .and_modify(|s| *s = better(*s, site))
            .or_insert(site);
    };

    for (fi, f) in files.iter().enumerate() {
        for g in &f.summary.fns {
            // Intra-function: acquiring `lock` while `held` are live.
            for a in &g.acquires {
                if !is_lock(f.crate_name, &a.lock) {
                    continue;
                }
                for h in &a.held {
                    if is_lock(f.crate_name, h) {
                        add_edge(
                            qualify(f.crate_name, h),
                            qualify(f.crate_name, &a.lock),
                            (fi, a.line),
                            files,
                        );
                    }
                }
            }
        }
    }
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.summary.fns.iter().enumerate() {
            // One level of propagation: calling, while holding `held`, a
            // function that itself directly acquires locks.
            for c in &g.calls {
                if acquired_pos.contains(&(fi, gi, c.pos)) {
                    continue;
                }
                let held: Vec<&String> =
                    c.held.iter().filter(|h| is_lock(f.crate_name, h)).collect();
                if held.is_empty() {
                    continue;
                }
                let Some(cands) = by_name.get(c.callee.as_str()) else {
                    continue;
                };
                for &id in cands {
                    if id == (fi, gi)
                        || fn_of(id).arity != c.arity
                        || !visible(deps, f.crate_name, files[id.0].crate_name)
                    {
                        continue;
                    }
                    let callee_crate = files[id.0].crate_name;
                    for a in &fn_of(id).acquires {
                        if !is_lock(callee_crate, &a.lock) {
                            continue;
                        }
                        let to = qualify(callee_crate, &a.lock);
                        for h in &held {
                            let from = qualify(f.crate_name, h);
                            // Name-aliased callees make propagated
                            // self-edges pure noise; real re-entrancy is
                            // still caught by the intra-function edge.
                            if from != to {
                                add_edge(from, to.clone(), (fi, c.line), files);
                            }
                        }
                    }
                }
            }
        }
    }

    let mut out: Vec<(usize, RawDiag)> = Vec::new();

    // Cycle detection: strongly connected components of the edge set.
    let sccs = tarjan(&edges);
    let mut component: BTreeMap<&str, usize> = BTreeMap::new();
    for (ci, comp) in sccs.iter().enumerate() {
        for node in comp {
            component.insert(node, ci);
        }
    }
    for ((from, to), &(fi, line)) in &edges {
        let same = component.get(from.as_str()) == component.get(to.as_str());
        let cyclic = (same && sccs[component[from.as_str()]].len() > 1) || from == to;
        if !cyclic {
            continue;
        }
        let comp = &sccs[component[from.as_str()]];
        let members = comp.join(", ");
        out.push((
            fi,
            RawDiag {
                line,
                lint: "lock-order-cycle",
                message: format!(
                    "acquiring `{to}` while holding `{from}` completes a lock-order cycle \
                     among {{{members}}} — potential deadlock; acquire these locks in one \
                     global order"
                ),
            },
        ));
    }

    // io-under-lock: direct blocking sinks, then propagated ones.
    for (fi, f) in files.iter().enumerate() {
        if !IO_UNDER_LOCK_CRATES.contains(&f.crate_name) {
            continue;
        }
        for (gi, g) in f.summary.fns.iter().enumerate() {
            for io in &g.io {
                let held: Vec<String> = io
                    .held
                    .iter()
                    .filter(|h| is_lock(f.crate_name, h))
                    .map(|h| qualify(f.crate_name, h))
                    .collect();
                if held.is_empty() {
                    continue;
                }
                let what = if io.condvar {
                    format!("Condvar::{} parks while unrelated lock", io.callee)
                } else {
                    format!("blocking `{}` runs while lock", io.callee)
                };
                out.push((
                    fi,
                    RawDiag {
                        line: io.line,
                        lint: "io-under-lock",
                        message: format!(
                            "{what} `{}` is held; move the blocking call outside the \
                             critical section",
                            held.join("`, `")
                        ),
                    },
                ));
            }
            for c in &g.calls {
                if acquired_pos.contains(&(fi, gi, c.pos)) {
                    continue;
                }
                let held: Vec<String> = c
                    .held
                    .iter()
                    .filter(|h| is_lock(f.crate_name, h))
                    .map(|h| qualify(f.crate_name, h))
                    .collect();
                if held.is_empty() {
                    continue;
                }
                let blocking = by_name.get(c.callee.as_str()).is_some_and(|cands| {
                    cands.iter().any(|&id| {
                        id != (fi, gi)
                            && does_io.contains(&id)
                            && fn_of(id).arity == c.arity
                            && visible(deps, f.crate_name, files[id.0].crate_name)
                    })
                });
                if blocking {
                    out.push((
                        fi,
                        RawDiag {
                            line: c.line,
                            lint: "io-under-lock",
                            message: format!(
                                "call to `{}` performs blocking I/O (per its summary) while \
                                 lock `{}` is held; move it outside the critical section",
                                c.callee,
                                held.join("`, `")
                            ),
                        },
                    ));
                }
            }
        }
    }
    out
}

/// Iterative Tarjan SCC over the lock graph. Nodes and neighbors are
/// visited in sorted order, so component membership is deterministic.
fn tarjan(edges: &BTreeMap<(String, String), (usize, u32)>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        nodes.insert(from);
        nodes.insert(to);
        adj.entry(from).or_default().push(to);
    }

    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        low: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        out: Vec<Vec<String>>,
    }
    let mut st = State {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    // Explicit DFS stack: (node, neighbor cursor).
    for &root in &nodes {
        if st.index.contains_key(root) {
            continue;
        }
        let mut dfs: Vec<(&str, usize)> = vec![(root, 0)];
        st.index.insert(root, st.next);
        st.low.insert(root, st.next);
        st.next += 1;
        st.stack.push(root);
        st.on_stack.insert(root);
        while let Some(&(v, cursor)) = dfs.last() {
            let neighbors = adj.get(v).map(Vec::as_slice).unwrap_or(&[]);
            if cursor < neighbors.len() {
                if let Some(frame) = dfs.last_mut() {
                    frame.1 += 1;
                }
                let w = neighbors[cursor];
                if !st.index.contains_key(w) {
                    st.index.insert(w, st.next);
                    st.low.insert(w, st.next);
                    st.next += 1;
                    st.stack.push(w);
                    st.on_stack.insert(w);
                    dfs.push((w, 0));
                } else if st.on_stack.contains(w) {
                    let lw = st.index[w];
                    let lv = st.low.get_mut(v).expect("visited");
                    *lv = (*lv).min(lw);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let lv = st.low[v];
                    let lp = st.low.get_mut(parent).expect("visited");
                    *lp = (*lp).min(lv);
                }
                if st.low[v] == st.index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = st.stack.pop() {
                        st.on_stack.remove(w);
                        comp.push(w.to_string());
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    st.out.push(comp);
                }
            }
        }
    }
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::summaries::extract;

    fn pass(src: &str, crate_name: &str) -> Vec<RawDiag> {
        let lexed = lex(src);
        let summary = extract(&lexed.tokens);
        let files = [FileInput {
            path: "x.rs",
            crate_name,
            summary: &summary,
        }];
        workspace_pass(&files, &BTreeMap::new())
            .into_iter()
            .map(|(_, d)| d)
            .collect()
    }

    #[test]
    fn two_lock_cycle_across_fn_boundary_yields_two_edges() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn lhs(&self) { let g = self.a.lock(); self.grab_b(); }\n\
                 fn grab_b(&self) { let h = self.b.lock(); }\n\
                 fn rhs(&self) { let h = self.b.lock(); let g = self.a.lock(); }\n\
             }\n";
        let d: Vec<_> = pass(src, "serve")
            .into_iter()
            .filter(|d| d.lint == "lock-order-cycle")
            .collect();
        assert_eq!(d.len(), 2, "one diagnostic per cycle edge: {d:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                 fn two(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             }\n";
        assert!(pass(src, "serve")
            .iter()
            .all(|d| d.lint != "lock-order-cycle"));
    }

    #[test]
    fn propagated_io_flags_the_call_site() {
        let src = "struct S { inner: Mutex<u32> }\n\
             impl S {\n\
                 fn commit(&self) { let g = self.inner.lock(); self.append_frame(); }\n\
                 fn append_frame(&self) { self.file.sync_data(); }\n\
             }\n";
        let d: Vec<_> = pass(src, "store")
            .into_iter()
            .filter(|d| d.lint == "io-under-lock")
            .collect();
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("append_frame"));
    }

    #[test]
    fn io_under_lock_is_scoped_to_serving_crates() {
        let src = "struct S { inner: Mutex<u32> }\n\
             impl S { fn f(&self) { let g = self.inner.lock(); self.file.sync_all(); } }\n";
        assert!(pass(src, "linalg")
            .iter()
            .all(|d| d.lint != "io-under-lock"));
        assert!(pass(src, "serve").iter().any(|d| d.lint == "io-under-lock"));
    }
}
