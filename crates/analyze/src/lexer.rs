//! A minimal Rust lexer: just enough tokenization for pattern-level lints.
//!
//! The lints in this crate match on token *sequences* (method-call chains,
//! macro invocations, attribute contents), so the lexer's only obligations
//! are (a) never mistaking comment/string/char contents for code, (b) never
//! splitting a float literal like `1.0` into `1 . 0` (which would fake a
//! method call), and (c) accurate line numbers. Everything else — keywords
//! vs identifiers, compound operators — is left to the lint matchers.

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `partial_cmp`, `HashMap`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `::` arrives as two `:`).
    Punct,
    /// String/char/byte/numeric literal (contents are not inspected).
    Lit,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One lexed token with its starting line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (line or block) with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: code tokens plus comments (for `// analyze:` directives).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unrecognized bytes become single-char punctuation; the
/// lexer never fails (a file that does not parse as Rust will simply
/// produce garbage tokens that match no lint pattern).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let at = |i: usize| -> Option<char> { b.get(i).copied() };

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if at(i + 1) == Some('/') => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if at(i + 1) == Some('*') => {
                let start_line = line;
                let text_start = i + 2;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && at(j + 1) == Some('*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && at(j + 1) == Some('/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text_end = j.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    line: start_line,
                    text: b[text_start..text_end].iter().collect(),
                });
                i = j;
            }
            '"' => {
                let start_line = line;
                i = skip_string(&b, i + 1, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: "\"\"".into(),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime ('a, '_) vs char literal ('x', '\n', '\u{..}').
                let is_lifetime = match at(i + 1) {
                    Some(c1) if c1 == '_' || c1.is_alphabetic() => at(i + 2) != Some('\''),
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < n && (b[j] == '_' || b[j].is_alphanumeric()) {
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                } else {
                    let start_line = line;
                    let mut j = i + 1;
                    while j < n {
                        match b[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                j += 1;
                            }
                            _ => j += 1,
                        }
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lit,
                        text: "''".into(),
                        line: start_line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                let mut j = i;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    // Exponent sign: 1e-3 / 2.5E+7.
                    if (b[j] == 'e' || b[j] == 'E')
                        && matches!(at(j + 1), Some('+') | Some('-'))
                        && at(j + 2).is_some_and(|d| d.is_ascii_digit())
                    {
                        j += 2;
                    }
                    j += 1;
                }
                // Fractional part — but not a `..` range and not `1.method()`.
                if at(j) == Some('.') && at(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                    j += 1;
                    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                        if (b[j] == 'e' || b[j] == 'E')
                            && matches!(at(j + 1), Some('+') | Some('-'))
                            && at(j + 2).is_some_and(|d| d.is_ascii_digit())
                        {
                            j += 2;
                        }
                        j += 1;
                    }
                } else if at(j) == Some('.') && at(j + 1) != Some('.') {
                    // Trailing-dot float like `1.` (not a range start).
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lit,
                    text: b[i..j].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            c if c == '_' || c.is_alphabetic() => {
                // Possible raw-string / byte-string prefix.
                if let Some((end, start_line)) = try_prefixed_string(&b, i, &mut line) {
                    out.tokens.push(Tok {
                        kind: TokKind::Lit,
                        text: "\"\"".into(),
                        line: start_line,
                    });
                    i = end;
                    continue;
                }
                // Raw identifier r#foo.
                let mut j = i;
                if b[j] == 'r' && at(j + 1) == Some('#') && at(j + 2).is_some_and(is_ident_start) {
                    j += 2;
                }
                let word_start = j;
                while j < n && (b[j] == '_' || b[j].is_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: b[word_start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            other => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: other.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

/// Skips a (non-raw) string body starting just after the opening quote;
/// returns the index just past the closing quote.
fn skip_string(b: &[char], mut j: usize, line: &mut u32) -> usize {
    let n = b.len();
    while j < n {
        match b[j] {
            // An escaped newline (line continuation) still ends a source
            // line; losing it would shift every later line number.
            '\\' => {
                if b.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// If position `i` starts a raw/byte string (`r"…"`, `r#"…"#`, `b"…"`,
/// `br#"…"#`, `c"…"`) or byte char (`b'x'`), returns `(end_index,
/// start_line)`.
fn try_prefixed_string(b: &[char], i: usize, line: &mut u32) -> Option<(usize, u32)> {
    let n = b.len();
    let start_line = *line;
    let at = |k: usize| -> Option<char> { b.get(k).copied() };
    let mut j = i;
    let mut raw = false;
    match b[j] {
        'r' => {
            raw = true;
            j += 1;
        }
        'b' | 'c' => {
            j += 1;
            if at(j) == Some('r') {
                raw = true;
                j += 1;
            } else if at(j) == Some('\'') {
                // Byte char b'x'.
                let mut k = j + 1;
                while k < n {
                    match b[k] {
                        '\\' => k += 2,
                        '\'' => return Some((k + 1, start_line)),
                        _ => k += 1,
                    }
                }
                return Some((k, start_line));
            }
        }
        _ => return None,
    }
    if raw {
        let mut hashes = 0usize;
        while at(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        if at(j) != Some('"') {
            return None; // `r#ident` or plain identifier starting with r/b.
        }
        j += 1;
        // Scan for `"` followed by `hashes` hashes.
        while j < n {
            if b[j] == '\n' {
                *line += 1;
                j += 1;
                continue;
            }
            if b[j] == '"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && at(k) == Some('#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some((k, start_line));
                }
            }
            j += 1;
        }
        Some((j, start_line))
    } else {
        if at(j) != Some('"') {
            return None;
        }
        let end = skip_string(b, j + 1, line);
        Some((end, start_line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn floats_do_not_produce_dot_puncts() {
        let l = lex("let x = 1.0 + 2.5e-3;");
        assert!(!l.tokens.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn ranges_keep_their_dots() {
        let l = lex("for i in 0..n {}");
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let l = lex("// partial_cmp\nlet s = \"partial_cmp\"; /* unwrap() */");
        assert!(idents("").is_empty());
        assert!(!l.tokens.iter().any(|t| t.is_ident("partial_cmp")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let r = r#\"unwrap()\"#; }");
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let l = lex("let c = 'x'; let nl = '\\n';");
        assert!(!l.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let l = lex("let a = \"x\ny\";\nlet b = 1; /* c\nd */\nlet e = 2;");
        let e = l.tokens.iter().find(|t| t.is_ident("e")).unwrap();
        assert_eq!(e.line, 5);
    }

    #[test]
    fn string_line_continuation_counts_its_newline() {
        let l = lex("let a = \"x \\\n y\";\nlet e = 2;");
        let e = l.tokens.iter().find(|t| t.is_ident("e")).unwrap();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn method_chain_tokens() {
        let l = lex("v.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        let seq: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(seq.windows(2).any(|w| w == [".", "partial_cmp"]));
        assert!(seq.windows(2).any(|w| w == [".", "unwrap"]));
    }
}
