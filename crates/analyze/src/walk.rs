//! Workspace file discovery: every `.rs` file under the workspace root,
//! minus build output, VCS internals, and the analyzer's own deliberately
//! bad lint fixtures.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "results", "fixtures"];

/// Recursively collects `.rs` files under `root`, sorted for stable output.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    visit(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            visit(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Infers the crate directory name from a workspace-relative path:
/// `crates/linalg/src/svd.rs` → `linalg`; top-level `tests/` and
/// `examples/` map to their directory name.
pub fn crate_name_of(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut components = rel.components().map(|c| c.as_os_str().to_string_lossy());
    match components.next().as_deref() {
        Some("crates") => components
            .next()
            .map(|c| c.into_owned())
            .unwrap_or_else(|| "unknown".into()),
        Some(first) => first.to_string(),
        None => "unknown".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_name_resolution() {
        let root = Path::new("/ws");
        assert_eq!(
            crate_name_of(root, Path::new("/ws/crates/linalg/src/svd.rs")),
            "linalg"
        );
        assert_eq!(
            crate_name_of(root, Path::new("/ws/tests/tests/paper_invariants.rs")),
            "tests"
        );
        assert_eq!(
            crate_name_of(root, Path::new("/ws/examples/quickstart.rs")),
            "examples"
        );
    }
}
