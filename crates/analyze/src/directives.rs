//! The `// analyze: allow(LINT_ID) reason` escape hatch.
//!
//! A suppression must (a) name the lint it silences, (b) carry a non-empty
//! written reason, and (c) actually match a violation — a malformed or
//! unused directive is itself reported, so stale hatches cannot rot in
//! place. A directive applies to the line it shares with code, or — when
//! written on a line of its own — to the next line that has code.

use crate::lexer::{Comment, Tok};

/// One parsed (or malformed) suppression directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Line the comment appears on.
    pub line: u32,
    /// Line of code this directive suppresses.
    pub target_line: u32,
    /// Lint id inside `allow(…)`; empty when unparseable.
    pub lint: String,
    /// Justification text after the closing paren.
    pub reason: String,
    /// True when the directive is recognizably `analyze:` but broken
    /// (missing `allow(…)`, empty lint id, or empty reason).
    pub malformed: bool,
    /// Set during matching: a well-formed directive that suppressed
    /// at least one diagnostic.
    pub used: bool,
}

/// Extracts every `analyze:` directive from `comments`, resolving each to
/// its target line using the code-token line set.
pub fn collect(comments: &[Comment], tokens: &[Tok]) -> Vec<Directive> {
    let mut code_lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
    code_lines.sort_unstable();
    code_lines.dedup();

    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("analyze:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (lint, reason, malformed) = parse_allow(rest);
        let target_line = if code_lines.binary_search(&c.line).is_ok() {
            c.line
        } else {
            // Comment-only line: applies to the next code line.
            match code_lines.iter().find(|&&l| l > c.line) {
                Some(&l) => l,
                None => c.line,
            }
        };
        out.push(Directive {
            line: c.line,
            target_line,
            lint,
            reason,
            malformed,
            used: false,
        });
    }
    out
}

/// Parses `allow(lint-id) reason…`; returns `(lint, reason, malformed)`.
fn parse_allow(s: &str) -> (String, String, bool) {
    let Some(body) = s.strip_prefix("allow(") else {
        return (String::new(), String::new(), true);
    };
    let Some(close) = body.find(')') else {
        return (String::new(), String::new(), true);
    };
    let lint = body[..close].trim().to_string();
    let reason = body[close + 1..]
        .trim_start_matches([':', '-', '—'])
        .trim()
        .to_string();
    let malformed = lint.is_empty() || reason.is_empty();
    (lint, reason, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_well_formed_directive() {
        let l = lex("let x = 1; // analyze: allow(panic-free-libs) invariant: n >= 1");
        let d = collect(&l.comments, &l.tokens);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "panic-free-libs");
        assert_eq!(d[0].reason, "invariant: n >= 1");
        assert!(!d[0].malformed);
        assert_eq!(d[0].target_line, 1);
    }

    #[test]
    fn comment_only_line_targets_next_code_line() {
        let l = lex("// analyze: allow(unseeded-rng) fixture\nlet x = 1;");
        let d = collect(&l.comments, &l.tokens);
        assert_eq!(d[0].target_line, 2);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let l = lex("let x = 1; // analyze: allow(panic-free-libs)");
        let d = collect(&l.comments, &l.tokens);
        assert!(d[0].malformed);
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let l = lex("// plain comment\nlet x = 1;");
        assert!(collect(&l.comments, &l.tokens).is_empty());
    }
}
