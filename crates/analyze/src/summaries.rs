//! Function-level summaries for the workspace-aware lints.
//!
//! The per-file lints in `lints.rs` see one token stream at a time; the
//! concurrency lints (`lock-order-cycle`, `io-under-lock`) need to know
//! what *other* functions do. This module extracts, per file, a cheap
//! approximation of that knowledge:
//!
//! - every named lock declaration (`name: Mutex<…>` / `name: RwLock<…>`
//!   struct fields, statics, and parameters), and
//! - per non-test function: which locks it acquires (with the set of
//!   lock guards live at each acquisition), which blocking I/O calls it
//!   makes, and which functions it calls while holding a guard.
//!
//! Guard liveness is tracked lexically: a `let g = x.lock()` guard lives
//! to the end of its enclosing block (or an explicit `drop(g)`); an
//! unbound guard temporary lives to the end of its statement (extended
//! through an attached block, which covers `if let … = x.lock()` and
//! `match x.lock() { … }`). `graph.rs` stitches the summaries into a
//! workspace lock graph and call-graph approximation.

use crate::lexer::{Tok, TokKind};
use crate::spans::{fn_spans, match_paren, test_mask};

/// Methods that return a lock guard when called with no arguments.
pub const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Method names that block on the network, the disk, or a condvar.
/// `read`/`write` are deliberately absent: with arguments they collide
/// with `RwLock`, and the workspace's socket I/O goes through the
/// `*_all`/`*_exact` forms.
pub const BLOCKING_SINKS: [&str; 10] = [
    "connect",
    "connect_timeout",
    "accept",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "read_exact",
    "read_to_end",
    "read_to_string",
];

/// `Condvar` wait methods: blocking, but exempt for the lock whose guard
/// is handed to the wait (that one is released while parked).
pub const CONDVAR_WAITS: [&str; 4] = ["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Keywords that syntactically precede `(` without being calls.
const NON_CALL_IDENTS: [&str; 14] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "in", "move", "as", "let",
    "self", "Self",
];

/// A named lock declaration: `name: Mutex<…>` / `name: RwLock<…>`.
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub name: String,
    pub line: u32,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Receiver identifier of the `.lock()`/`.read()`/`.write()` call;
    /// only meaningful once filtered against the crate's harvested locks.
    pub lock: String,
    pub line: u32,
    /// Token index of the guard-method identifier (shared with the
    /// matching [`CallOut`], so the graph pass can drop the duplicate).
    pub pos: usize,
    /// Locks whose guards were live when this one was taken.
    pub held: Vec<String>,
}

/// One call made inside a function body.
#[derive(Debug, Clone)]
pub struct CallOut {
    pub callee: String,
    pub line: u32,
    pub pos: usize,
    /// Argument count at the call site (top-level commas + 1).
    pub arity: usize,
    /// Locks whose guards were live at the call.
    pub held: Vec<String>,
}

/// One direct blocking call inside a function body.
#[derive(Debug, Clone)]
pub struct IoCall {
    pub callee: String,
    pub line: u32,
    /// Locks held across the blocking call (condvar-exempt lock removed).
    pub held: Vec<String>,
    /// True for `Condvar` waits, which release their own guard and so
    /// never count as the function "doing blocking I/O" for callers.
    pub condvar: bool,
}

/// Summary of one non-test function.
#[derive(Debug, Clone)]
pub struct FnSummary {
    pub name: String,
    pub line: u32,
    /// Declared parameter count, excluding any `self` receiver.
    pub arity: usize,
    pub acquires: Vec<Acquire>,
    pub calls: Vec<CallOut>,
    pub io: Vec<IoCall>,
}

impl FnSummary {
    /// True when the function itself performs blocking I/O (condvar
    /// waits excluded: they release their guard while parked).
    pub fn does_io(&self) -> bool {
        self.io.iter().any(|c| !c.condvar)
    }
}

/// Everything `graph.rs` needs to know about one file.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    pub locks: Vec<LockDecl>,
    pub fns: Vec<FnSummary>,
}

/// Extracts lock declarations and function summaries from one file.
pub fn extract(tokens: &[Tok]) -> FileSummary {
    let in_test = test_mask(tokens);
    let mut out = FileSummary {
        locks: harvest_locks(tokens),
        ..Default::default()
    };
    for &(start, end) in &fn_spans(tokens) {
        if in_test[start] {
            continue;
        }
        if let Some(summary) = summarize_fn(tokens, start, end) {
            out.fns.push(summary);
        }
    }
    out
}

/// Type-position tokens allowed between a declared name and its
/// `Mutex`/`RwLock` when harvesting (`conns: Arc<Mutex<…>>`,
/// `m: &std::sync::Mutex<u32>`).
fn is_wrapper(t: &Tok) -> bool {
    t.is_punct('<')
        || t.is_punct('&')
        || t.is_punct(':')
        || t.kind == TokKind::Lifetime
        || (t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "Arc" | "Rc" | "Box" | "Vec" | "Option" | "std" | "sync" | "parking_lot" | "mut"
            ))
}

/// Finds every `name: …Mutex<…>` / `name: …RwLock<…>` declaration.
fn harvest_locks(tokens: &[Tok]) -> Vec<LockDecl> {
    let mut locks: Vec<LockDecl> = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !(t.is_ident("Mutex") || t.is_ident("RwLock")) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct('<')) {
            continue;
        }
        // Walk back over wrapper tokens to the declared name.
        let mut j = i;
        while j > 0 && is_wrapper(&tokens[j - 1]) {
            j -= 1;
        }
        if j == 0 || j == i {
            continue;
        }
        let name_tok = &tokens[j - 1];
        if name_tok.kind == TokKind::Ident
            && tokens[j].is_punct(':')
            && !locks.iter().any(|l| l.name == name_tok.text)
        {
            locks.push(LockDecl {
                name: name_tok.text.clone(),
                line: name_tok.line,
            });
        }
    }
    locks
}

/// A live lock guard during the body walk.
struct Guard {
    lock: String,
    /// Binding name for `let g = …`; `None` for statement temporaries.
    var: Option<String>,
    /// Brace depth at creation; the guard dies when the walk leaves it.
    depth: usize,
}

/// Declared arity of the fn whose `fn` keyword is at `start`; also
/// returns the index just past the parameter list.
fn fn_arity(tokens: &[Tok], start: usize, end: usize) -> Option<(usize, usize)> {
    let mut i = start + 2; // past `fn name`
    if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 1usize;
        i += 1;
        while i <= end && depth > 0 {
            if tokens[i].is_punct('<') {
                depth += 1;
            } else if tokens[i].is_punct('>') {
                depth -= 1;
            }
            i += 1;
        }
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let close = match_paren(tokens, i);
    let args = &tokens[i + 1..close];
    if args.is_empty() {
        return Some((0, close + 1));
    }
    // Count top-level commas; commas inside nested brackets or generic
    // angle brackets (`B<K, V>`) don't separate parameters. `->` inside
    // an `impl Fn(…) -> T` bound must not close an angle bracket.
    let mut depth = 0usize;
    let mut angle = 0usize;
    let mut commas = 0usize;
    let mut first_param_is_self = false;
    let mut seen_comma = false;
    for (k, t) in args.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(k > 0 && args[k - 1].is_punct('-')) {
            angle = angle.saturating_sub(1);
        } else if t.is_punct(',') && depth == 0 && angle == 0 {
            commas += 1;
            seen_comma = true;
        } else if !seen_comma && t.is_ident("self") {
            first_param_is_self = true;
        }
    }
    let params = commas + 1;
    Some((params - usize::from(first_param_is_self), close + 1))
}

/// Argument count of a call whose `(` is at `open`. Closure parameter
/// lists (`|a, b|`) are skipped so their commas don't inflate the count.
fn call_arity(tokens: &[Tok], open: usize, close: usize) -> usize {
    if close == open + 1 {
        return 0;
    }
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut k = open + 1;
    while k < close {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('|') && depth == 0 {
            // Skip the closure parameter list to its closing `|`.
            k += 1;
            while k < close && !tokens[k].is_punct('|') {
                k += 1;
            }
        } else if t.is_punct(',') && depth == 0 {
            commas += 1;
        }
        k += 1;
    }
    commas + 1
}

/// Walks one fn body tracking guard liveness; records acquisitions,
/// calls, and blocking I/O with the held-lock set at each site.
fn summarize_fn(tokens: &[Tok], start: usize, end: usize) -> Option<FnSummary> {
    let name_tok = tokens.get(start + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let (arity, body_from) = fn_arity(tokens, start, end)?;
    let mut summary = FnSummary {
        name: name_tok.text.clone(),
        line: name_tok.line,
        arity,
        acquires: Vec::new(),
        calls: Vec::new(),
        io: Vec::new(),
    };

    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let held = |guards: &[Guard]| -> Vec<String> {
        let mut h: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
        h.sort();
        h.dedup();
        h
    };

    let mut i = body_from;
    while i <= end {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
        } else if t.is_punct(';') {
            // Statement end: unbound guard temporaries die, unless the
            // `;` sits in a block nested deeper than the guard (which
            // keeps `if let … = x.lock() { … }` temporaries live across
            // the attached block, matching real temporary lifetimes).
            guards.retain(|g| g.var.is_some() || depth > g.depth);
        } else if t.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct(')'))
            && tokens.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let var = &tokens[i + 2].text;
            guards.retain(|g| g.var.as_deref() != Some(var));
        } else if t.kind == TokKind::Ident && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            let open = i + 1;
            let close = match_paren(tokens, open);
            let callee = &t.text;
            let is_method = i > 0 && tokens[i - 1].is_punct('.');
            // Guard acquisition: `recv.lock()` / `recv.read()` / `recv.write()`
            // with empty parens and an identifier receiver.
            let empty = close == open + 1;
            if is_method
                && empty
                && GUARD_METHODS.contains(&callee.as_str())
                && i >= 2
                && tokens[i - 2].kind == TokKind::Ident
            {
                let lock = tokens[i - 2].text.clone();
                summary.acquires.push(Acquire {
                    lock: lock.clone(),
                    line: t.line,
                    pos: i,
                    held: held(&guards),
                });
                guards.push(Guard {
                    lock,
                    var: let_binding_of(tokens, i - 2),
                    depth,
                });
            }
            if BLOCKING_SINKS.contains(&callee.as_str()) && is_method {
                summary.io.push(IoCall {
                    callee: callee.clone(),
                    line: t.line,
                    held: held(&guards),
                    condvar: false,
                });
            } else if CONDVAR_WAITS.contains(&callee.as_str()) && is_method {
                // Exempt locks whose guard variable is an argument of the
                // wait: that guard is released while parked.
                let args = &tokens[open + 1..close];
                let exempt: Vec<&str> = guards
                    .iter()
                    .filter(|g| {
                        g.var
                            .as_deref()
                            .is_some_and(|v| args.iter().any(|a| a.is_ident(v)))
                    })
                    .map(|g| g.lock.as_str())
                    .collect();
                let still_held: Vec<String> = held(&guards)
                    .into_iter()
                    .filter(|l| !exempt.contains(&l.as_str()))
                    .collect();
                if !still_held.is_empty() {
                    summary.io.push(IoCall {
                        callee: callee.clone(),
                        line: t.line,
                        held: still_held,
                        condvar: true,
                    });
                }
            }
            if !(NON_CALL_IDENTS.contains(&callee.as_str())
                || callee.starts_with(char::is_uppercase)
                || (i > 0 && tokens[i - 1].is_ident("fn")))
            {
                summary.calls.push(CallOut {
                    callee: callee.clone(),
                    line: t.line,
                    pos: i,
                    arity: call_arity(tokens, open, close),
                    held: held(&guards),
                });
            }
        }
        i += 1;
    }
    Some(summary)
}

/// If the guard produced by the chain ending at `recv_idx` (the receiver
/// identifier) is `let`-bound, returns the binding name.
fn let_binding_of(tokens: &[Tok], recv_idx: usize) -> Option<String> {
    // Walk back over the `a.b.c` receiver chain.
    let mut j = recv_idx;
    while j >= 2 && tokens[j - 1].is_punct('.') && tokens[j - 2].kind == TokKind::Ident {
        j -= 2;
    }
    if j == 0 || !tokens[j - 1].is_punct('=') {
        return None;
    }
    let mut k = j - 1; // at `=`
    if k == 0 || tokens[k - 1].kind != TokKind::Ident {
        return None;
    }
    let var = &tokens[k - 1];
    k -= 1; // at the binding ident
    if k == 0 {
        return None;
    }
    let before = &tokens[k - 1];
    if before.is_ident("let") || (before.is_ident("mut") && k >= 2 && tokens[k - 2].is_ident("let"))
    {
        Some(var.text.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn summarize(src: &str) -> FileSummary {
        extract(&lex(src).tokens)
    }

    #[test]
    fn harvests_fields_statics_and_params() {
        let s = summarize(
            "struct S { inner: Mutex<u32>, conns: Arc<Mutex<Vec<u8>>>, db: RwLock<V> }\n\
             static GLOBAL: Mutex<u64> = Mutex::new(0);\n\
             fn f(m: &std::sync::Mutex<u32>) {}\n",
        );
        let names: Vec<&str> = s.locks.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["inner", "conns", "db", "GLOBAL", "m"]);
    }

    #[test]
    fn let_guard_lives_to_block_end_and_drop_ends_it() {
        let s = summarize(
            "impl S { fn f(&self) {\n\
                 let g = self.a.lock();\n\
                 self.b.lock();\n\
                 drop(g);\n\
                 self.c.lock();\n\
             } }",
        );
        let f = &s.fns[0];
        let held_at = |lock: &str| -> Vec<String> {
            f.acquires
                .iter()
                .find(|a| a.lock == lock)
                .map(|a| a.held.clone())
                .unwrap_or_default()
        };
        assert_eq!(held_at("b"), ["a"]);
        assert!(held_at("c").is_empty(), "drop(g) must end the guard");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let s = summarize(
            "impl S { fn f(&self) {\n\
                 *self.a.lock() += 1;\n\
                 self.b.lock();\n\
             } }",
        );
        let f = &s.fns[0];
        let b = f.acquires.iter().find(|a| a.lock == "b").unwrap();
        assert!(
            b.held.is_empty(),
            "temporary `a` guard leaked: {:?}",
            b.held
        );
    }

    #[test]
    fn blocking_call_records_held_locks() {
        let s = summarize(
            "impl S { fn f(&self) {\n\
                 let g = self.inner.lock();\n\
                 self.file.sync_all();\n\
             } }",
        );
        let f = &s.fns[0];
        assert_eq!(f.io.len(), 1);
        assert_eq!(f.io[0].held, ["inner"]);
        assert!(f.does_io());
    }

    #[test]
    fn condvar_wait_exempts_its_own_guard() {
        let s = summarize(
            "impl S { fn f(&self) {\n\
                 let g = self.state.lock();\n\
                 let g = self.cv.wait(g);\n\
             } }",
        );
        assert!(s.fns[0].io.is_empty(), "own guard must be exempt");
        let s2 = summarize(
            "impl S { fn f(&self) {\n\
                 let other = self.a.lock();\n\
                 let g = self.state.lock();\n\
                 let g = self.cv.wait(g);\n\
             } }",
        );
        let io = &s2.fns[0].io;
        assert_eq!(io.len(), 1, "wait under an unrelated lock must record");
        assert_eq!(io[0].held, ["a"]);
        assert!(io[0].condvar);
    }

    #[test]
    fn arity_excludes_self_and_closure_commas() {
        let s = summarize(
            "impl S { fn three(&self, a: u32, b: B<K, V>, c: u8) {} }\n\
             fn free() { v.sort_by(|a, b| a.cmp(b)); take(x, y); }",
        );
        assert_eq!(s.fns[0].arity, 3);
        let free = &s.fns[1];
        let sort = free.calls.iter().find(|c| c.callee == "sort_by").unwrap();
        assert_eq!(sort.arity, 1, "closure commas must not count");
        let take = free.calls.iter().find(|c| c.callee == "take").unwrap();
        assert_eq!(take.arity, 2);
    }
}
