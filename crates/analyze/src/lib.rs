//! `kinemyo-analyze` — workspace-wide determinism & numeric-safety lints.
//!
//! The reproduction's core guarantee (bit-identical FCM memberships at any
//! thread count; served results bit-identical to offline) is enforced at
//! build time by this tool: it lexes every `.rs` file in the workspace,
//! reconstructs just enough structure (test spans, fn bodies, call chains)
//! to check kinemyo-specific invariants clippy cannot express, and fails
//! the build on violations. See DESIGN.md §11 for the lint catalog and
//! the escape-hatch policy.
//!
//! The crate is dependency-free on purpose: it runs as the first CI gate,
//! before the rest of the workspace compiles, and must work offline.

#![forbid(unsafe_code)]

pub mod directives;
pub mod lexer;
pub mod lints;
pub mod spans;
pub mod walk;

use std::fmt;
use std::path::Path;

/// One finding, after suppression directives were applied.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path as given to [`analyze_source`] (workspace-relative in CLI use).
    pub path: String,
    pub line: u32,
    pub lint: String,
    pub message: String,
    /// True when an `// analyze: allow` directive silenced this finding.
    pub suppressed: bool,
    /// The directive's written reason, when suppressed.
    pub reason: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Active violations (not suppressed), in line order.
    pub violations: Vec<Diagnostic>,
    /// Findings silenced by a well-formed directive, kept for reporting.
    pub suppressed: Vec<Diagnostic>,
}

/// Analyzes one file's source text. `crate_name` scopes the per-crate
/// lints (`panic-free-libs`, `unseeded-rng`).
pub fn analyze_source(path: &str, crate_name: &str, src: &str) -> FileReport {
    let lexed = lexer::lex(src);
    let raw = lints::run_all(&lexed.tokens, &lints::FileCtx { crate_name });
    let mut dirs = directives::collect(&lexed.comments, &lexed.tokens);

    let mut report = FileReport::default();
    for d in raw {
        let hit = dirs
            .iter_mut()
            .find(|dir| !dir.malformed && dir.target_line == d.line && dir.lint == d.lint);
        match hit {
            Some(dir) => {
                dir.used = true;
                report.suppressed.push(Diagnostic {
                    path: path.into(),
                    line: d.line,
                    lint: d.lint.into(),
                    message: d.message,
                    suppressed: true,
                    reason: Some(dir.reason.clone()),
                });
            }
            None => report.violations.push(Diagnostic {
                path: path.into(),
                line: d.line,
                lint: d.lint.into(),
                message: d.message,
                suppressed: false,
                reason: None,
            }),
        }
    }
    // Suppressions are themselves linted: broken or stale ones fail the
    // build so the escape hatch cannot silently rot.
    for dir in &dirs {
        if dir.malformed {
            report.violations.push(Diagnostic {
                path: path.into(),
                line: dir.line,
                lint: "malformed-suppression".into(),
                message: "expected `// analyze: allow(<lint-id>) <non-empty reason>`".into(),
                suppressed: false,
                reason: None,
            });
        } else if !dir.used {
            report.violations.push(Diagnostic {
                path: path.into(),
                line: dir.line,
                lint: "unused-suppression".into(),
                message: format!(
                    "allow({}) matches no violation on line {}; remove the stale directive",
                    dir.lint, dir.target_line
                ),
                suppressed: false,
                reason: None,
            });
        }
    }
    report.violations.sort_by_key(|a| (a.line, a.lint.clone()));
    report
}

/// Workspace-level summary.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub violations: Vec<Diagnostic>,
    pub suppressed: Vec<Diagnostic>,
    pub files_scanned: usize,
}

/// Walks the workspace at `root` and analyzes every `.rs` file.
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    for file in walk::rust_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .into_owned();
        let crate_name = walk::crate_name_of(root, &file);
        let fr = analyze_source(&rel, &crate_name, &src);
        report.violations.extend(fr.violations);
        report.suppressed.extend(fr.suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_matches_and_is_counted() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap() // analyze: allow(panic-free-libs) caller validated\n}\n";
        let r = analyze_source("a.rs", "linalg", src);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason.as_deref(), Some("caller validated"));
    }

    #[test]
    fn unused_suppression_is_a_violation() {
        let src = "// analyze: allow(panic-free-libs) nothing here\nfn f() {}\n";
        let r = analyze_source("a.rs", "linalg", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].lint, "unused-suppression");
    }

    #[test]
    fn malformed_suppression_is_a_violation() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap() // analyze: allow(panic-free-libs)\n}\n";
        let r = analyze_source("a.rs", "linalg", src);
        assert!(r
            .violations
            .iter()
            .any(|v| v.lint == "malformed-suppression"));
        // The unwrap itself stays un-suppressed.
        assert!(r.violations.iter().any(|v| v.lint == "panic-free-libs"));
    }

    #[test]
    fn display_format_is_greppable() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = analyze_source("crates/linalg/src/x.rs", "linalg", src);
        let line = r.violations[0].to_string();
        assert!(line.starts_with("crates/linalg/src/x.rs:1: [panic-free-libs]"));
    }
}
