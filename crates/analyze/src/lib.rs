//! `kinemyo-analyze` — workspace-wide determinism, concurrency, and
//! durability lints.
//!
//! The reproduction's core guarantee (bit-identical FCM memberships at any
//! thread count; served results bit-identical to offline) is enforced at
//! build time by this tool: it lexes every `.rs` file in the workspace,
//! reconstructs just enough structure (test spans, fn bodies, call chains,
//! lock-guard liveness, a call-graph approximation) to check kinemyo-
//! specific invariants clippy cannot express, and fails the build on
//! violations. See DESIGN.md §11 for the per-file lint catalog and §16
//! for the workspace concurrency/durability pass.
//!
//! The crate is dependency-free on purpose: it runs as the first CI gate,
//! before the rest of the workspace compiles, and must work offline.
//!
//! Analysis runs in two phases. Phase 1 is per-file: token lints plus a
//! function summary (locks declared, locks acquired while others are
//! held, outgoing calls, blocking I/O under guards). Phase 2 stitches
//! the summaries into a workspace lock graph and call-graph
//! approximation, then reports lock-order cycles and I/O under locks.
//! Suppression directives are applied after both phases, so the same
//! `// analyze: allow(<lint>) <reason>` escape hatch covers every lint.

#![forbid(unsafe_code)]

pub mod directives;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod lints2;
pub mod spans;
pub mod summaries;
pub mod walk;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

/// One finding, after suppression directives were applied.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path as given to [`analyze_source`] (workspace-relative in CLI use).
    pub path: String,
    pub line: u32,
    pub lint: String,
    pub message: String,
    /// True when an `// analyze: allow` directive silenced this finding.
    pub suppressed: bool,
    /// The directive's written reason, when suppressed.
    pub reason: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Active violations (not suppressed), in line order.
    pub violations: Vec<Diagnostic>,
    /// Findings silenced by a well-formed directive, kept for reporting.
    pub suppressed: Vec<Diagnostic>,
}

/// One input file for [`analyze_sources`].
pub struct SourceFile {
    /// Display path (workspace-relative in CLI use).
    pub path: String,
    /// Crate directory name, as [`walk::crate_name_of`] derives it.
    pub crate_name: String,
    pub src: String,
}

/// Workspace-level summary.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub violations: Vec<Diagnostic>,
    pub suppressed: Vec<Diagnostic>,
    pub files_scanned: usize,
}

fn file_stem_of(path: &str) -> &str {
    let base = path.rsplit(['/', '\\']).next().unwrap_or(path);
    base.strip_suffix(".rs").unwrap_or(base)
}

/// Analyzes a set of files together: per-file lints, then the workspace
/// lock-graph/I/O pass over the extracted function summaries, then
/// suppression directives over the merged findings. `deps` is the crate
/// dependency relation used to bound call resolution (empty map: calls
/// resolve within one crate only).
pub fn analyze_sources(
    files: &[SourceFile],
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> WorkspaceReport {
    // Phase 1: per-file lints, directives, and function summaries.
    let mut raw_per_file: Vec<Vec<lints::RawDiag>> = Vec::with_capacity(files.len());
    let mut dirs_per_file = Vec::with_capacity(files.len());
    let mut summaries_per_file = Vec::with_capacity(files.len());
    for f in files {
        let lexed = lexer::lex(&f.src);
        let ctx = lints::FileCtx {
            crate_name: &f.crate_name,
            file_stem: file_stem_of(&f.path),
        };
        raw_per_file.push(lints::run_all(&lexed.tokens, &ctx));
        dirs_per_file.push(directives::collect(&lexed.comments, &lexed.tokens));
        summaries_per_file.push(summaries::extract(&lexed.tokens));
    }

    // Phase 2: the workspace concurrency pass over function summaries.
    let inputs: Vec<graph::FileInput> = files
        .iter()
        .zip(&summaries_per_file)
        .map(|(f, s)| graph::FileInput {
            path: &f.path,
            crate_name: &f.crate_name,
            summary: s,
        })
        .collect();
    for (idx, diag) in graph::workspace_pass(&inputs, deps) {
        raw_per_file[idx].push(diag);
    }

    // Phase 3: apply suppression directives to the merged findings.
    let mut report = WorkspaceReport {
        files_scanned: files.len(),
        ..WorkspaceReport::default()
    };
    for ((f, mut raw), mut dirs) in files.iter().zip(raw_per_file).zip(dirs_per_file) {
        raw.sort_by(|a, b| (a.line, a.lint, &a.message).cmp(&(b.line, b.lint, &b.message)));
        raw.dedup_by(|a, b| a.line == b.line && a.lint == b.lint && a.message == b.message);
        for d in raw {
            let hit = dirs
                .iter_mut()
                .find(|dir| !dir.malformed && dir.target_line == d.line && dir.lint == d.lint);
            match hit {
                Some(dir) => {
                    dir.used = true;
                    report.suppressed.push(Diagnostic {
                        path: f.path.clone(),
                        line: d.line,
                        lint: d.lint.into(),
                        message: d.message,
                        suppressed: true,
                        reason: Some(dir.reason.clone()),
                    });
                }
                None => report.violations.push(Diagnostic {
                    path: f.path.clone(),
                    line: d.line,
                    lint: d.lint.into(),
                    message: d.message,
                    suppressed: false,
                    reason: None,
                }),
            }
        }
        // Suppressions are themselves linted: broken or stale ones fail
        // the build so the escape hatch cannot silently rot.
        for dir in &dirs {
            if dir.malformed {
                report.violations.push(Diagnostic {
                    path: f.path.clone(),
                    line: dir.line,
                    lint: "malformed-suppression".into(),
                    message: "expected `// analyze: allow(<lint-id>) <non-empty reason>`".into(),
                    suppressed: false,
                    reason: None,
                });
            } else if !dir.used {
                report.violations.push(Diagnostic {
                    path: f.path.clone(),
                    line: dir.line,
                    lint: "unused-suppression".into(),
                    message: format!(
                        "allow({}) matches no violation on line {}; remove the stale directive",
                        dir.lint, dir.target_line
                    ),
                    suppressed: false,
                    reason: None,
                });
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, &a.lint).cmp(&(&b.path, b.line, &b.lint)));
    report
}

/// Analyzes one file's source text in isolation. `crate_name` scopes the
/// per-crate lints; workspace lints still run, with call resolution
/// restricted to this one file.
pub fn analyze_source(path: &str, crate_name: &str, src: &str) -> FileReport {
    let files = [SourceFile {
        path: path.into(),
        crate_name: crate_name.into(),
        src: src.into(),
    }];
    let ws = analyze_sources(&files, &BTreeMap::new());
    FileReport {
        violations: ws.violations,
        suppressed: ws.suppressed,
    }
}

/// Walks the workspace at `root` and analyzes every `.rs` file, with call
/// resolution bounded by the crate dependency graph from the Cargo
/// manifests.
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for file in walk::rust_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .into_owned();
        let crate_name = walk::crate_name_of(root, &file);
        files.push(SourceFile {
            path: rel,
            crate_name,
            src,
        });
    }
    let deps = graph::crate_deps(root);
    Ok(analyze_sources(&files, &deps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_matches_and_is_counted() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap() // analyze: allow(panic-free-libs) caller validated\n}\n";
        let r = analyze_source("a.rs", "linalg", src);
        assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason.as_deref(), Some("caller validated"));
    }

    #[test]
    fn unused_suppression_is_a_violation() {
        let src = "// analyze: allow(panic-free-libs) nothing here\nfn f() {}\n";
        let r = analyze_source("a.rs", "linalg", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].lint, "unused-suppression");
    }

    #[test]
    fn malformed_suppression_is_a_violation() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap() // analyze: allow(panic-free-libs)\n}\n";
        let r = analyze_source("a.rs", "linalg", src);
        assert!(r
            .violations
            .iter()
            .any(|v| v.lint == "malformed-suppression"));
        // The unwrap itself stays un-suppressed.
        assert!(r.violations.iter().any(|v| v.lint == "panic-free-libs"));
    }

    #[test]
    fn display_format_is_greppable() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = analyze_source("crates/linalg/src/x.rs", "linalg", src);
        let line = r.violations[0].to_string();
        assert!(line.starts_with("crates/linalg/src/x.rs:1: [panic-free-libs]"));
    }

    #[test]
    fn workspace_lints_run_through_analyze_source() {
        // io-under-lock fires via the single-file path too: the graph
        // pass runs with same-crate resolution.
        let src = "use std::sync::Mutex;\n\
             struct S { m: Mutex<u32> }\n\
             impl S {\n\
                 fn f(&self, s: &mut std::net::TcpStream) {\n\
                     let g = self.m.lock().unwrap_or_else(|p| p.into_inner());\n\
                     s.write_all(b\"x\").ok();\n\
                     drop(g);\n\
                 }\n\
             }\n";
        let r = analyze_source("crates/serve/src/server.rs", "serve", src);
        assert!(
            r.violations.iter().any(|v| v.lint == "io-under-lock"),
            "{:?}",
            r.violations
        );
    }
}
