//! Structural span analysis over the token stream: which tokens live in
//! `#[cfg(test)]` / `#[test]` code, and where each `fn` body begins/ends.
//!
//! Brace matching is exact because the lexer already removed comments,
//! strings and char literals — every `{`/`}` token is real code structure.

use crate::lexer::{Tok, TokKind};

/// Marks every token that belongs to test-only code: an item annotated with
/// `#[test]`, `#[cfg(test)]` (including `cfg(all(test, …))`), or any
/// attribute mentioning `test`.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let n = tokens.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if tokens[i].is_punct('#') && i + 1 < n && tokens[i + 1].is_punct('[') {
            let attr_end = match_bracket(tokens, i + 1, '[', ']');
            let is_test = tokens[i + 2..attr_end]
                .iter()
                .any(|t| t.is_ident("test") || t.is_ident("tests"));
            if is_test {
                // Skip any further attributes between this one and the item.
                let mut k = attr_end + 1;
                while k + 1 < n && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
                    k = match_bracket(tokens, k + 1, '[', ']') + 1;
                }
                // Find the item body (`{ … }`) or terminator (`;`).
                let mut m = k;
                while m < n && !tokens[m].is_punct('{') && !tokens[m].is_punct(';') {
                    m += 1;
                }
                let end = if m < n && tokens[m].is_punct('{') {
                    match_bracket(tokens, m, '{', '}')
                } else {
                    m.min(n.saturating_sub(1))
                };
                for slot in mask.iter_mut().take(end + 1).skip(i) {
                    *slot = true;
                }
                i = attr_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Token-index ranges `(start, end)` (inclusive) of every `fn` item from
/// the `fn` keyword through its closing body brace. Nested fns produce
/// their own (inner) spans as well.
pub fn fn_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let n = tokens.len();
    let mut spans = Vec::new();
    for i in 0..n {
        if tokens[i].is_ident("fn") {
            let mut m = i + 1;
            while m < n && !tokens[m].is_punct('{') && !tokens[m].is_punct(';') {
                m += 1;
            }
            if m < n && tokens[m].is_punct('{') {
                spans.push((i, match_bracket(tokens, m, '{', '}')));
            }
        }
    }
    spans
}

/// Index of the token closing the bracket opened at `open_idx`; saturates
/// at the last token on unbalanced input.
pub fn match_bracket(tokens: &[Tok], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index of the token closing the parenthesized argument list that starts
/// at `open_idx` (which must be a `(`).
pub fn match_paren(tokens: &[Tok], open_idx: usize) -> usize {
    match_bracket(tokens, open_idx, '(', ')')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let l = lex(src);
        let mask = test_mask(&l.tokens);
        let unwraps: Vec<bool> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| mask[i])
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn lib() { x.unwrap(); }";
        let l = lex(src);
        let mask = test_mask(&l.tokens);
        let unwraps: Vec<bool> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| mask[i])
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() { 1 } fn b() { { 2 } }";
        let l = lex(src);
        let spans = fn_spans(&l.tokens);
        assert_eq!(spans.len(), 2);
        for (s, e) in spans {
            assert!(l.tokens[s].is_ident("fn"));
            assert!(l.tokens[e].is_punct('}'));
        }
    }
}
