//! The kinemyo lint catalog: determinism and numeric-safety invariants
//! that clippy cannot express. Each lint is a pure function over the
//! lexed token stream plus file context; see DESIGN.md §11 for the
//! catalog rationale and the policy for adding new lints.

use crate::lexer::{Tok, TokKind};
use crate::spans::{fn_spans, match_paren, test_mask};

/// Crates whose non-test library code must not contain panicking calls.
pub const PANIC_FREE_CRATES: [&str; 8] = [
    "linalg", "dsp", "features", "fuzzy", "modb", "ann", "store", "session",
];

/// Individual `(crate, file-stem)` pairs under the panic-free discipline
/// beyond [`PANIC_FREE_CRATES`]: the protocol-facing modules that parse
/// untrusted bytes. A panic while decoding a hostile frame is a remote
/// denial-of-service, so these hold to the same standard as the numeric
/// kernels even though their crates as a whole do not.
pub const PANIC_FREE_FILES: [(&str, &str); 4] = [
    ("cluster", "wire"),
    ("cluster", "log"),
    ("serve", "protocol"),
    ("serve", "session"),
];

/// Crate exempt from `unseeded-rng` (it owns entropy-based simulation).
pub const RNG_EXEMPT_CRATE: &str = "biosim";

/// All lint ids, for `--list` and directive validation.
pub const LINT_IDS: [&str; 12] = [
    "float-total-order",
    "hash-iter-numeric",
    "panic-free-libs",
    "lock-poison-policy",
    "unseeded-rng",
    "lock-order-cycle",
    "io-under-lock",
    "unbounded-channel",
    "wire-length-trust",
    "fsync-before-rename",
    "malformed-suppression",
    "unused-suppression",
];

/// One raw finding, before suppression directives are applied.
#[derive(Debug, Clone)]
pub struct RawDiag {
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
}

/// Per-file lint context.
pub struct FileCtx<'a> {
    /// Crate directory name (`linalg`, `core`, …) or `tests` / `examples`.
    pub crate_name: &'a str,
    /// File name without the `.rs` extension (`wire`, `server`, …); lets
    /// lints scope to codec/persist modules without parsing module trees.
    pub file_stem: &'a str,
}

/// Runs every lint over one file's token stream.
pub fn run_all(tokens: &[Tok], ctx: &FileCtx) -> Vec<RawDiag> {
    let in_test = test_mask(tokens);
    let mut diags = Vec::new();
    float_total_order(tokens, &mut diags);
    hash_iter_numeric(tokens, &in_test, &mut diags);
    panic_free_libs(tokens, &in_test, ctx, &mut diags);
    lock_poison_policy(tokens, &in_test, &mut diags);
    unseeded_rng(tokens, ctx, &mut diags);
    crate::lints2::run_all(tokens, ctx, &mut diags);
    // Identical duplicates only: the same pattern found twice at one site.
    // Distinct findings of one lint on one line (two comparators in a
    // chained expression) must both survive, so the message is part of
    // the identity.
    diags.sort_by(|a, b| (a.line, a.lint, &a.message).cmp(&(b.line, b.lint, &b.message)));
    diags.dedup_by(|a, b| a.line == b.line && a.lint == b.lint && a.message == b.message);
    diags
}

/// Comparator callees whose closure argument must yield a *total* order.
const ORDER_SINKS: [&str; 6] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
    "partition_point",
];

/// **float-total-order** — `partial_cmp` inside an ordering comparator, or
/// an `unwrap_or(Ordering::Equal)` NaN-masking comparator, anywhere in the
/// workspace (tests included: a NaN-reordered test vector hides real
/// regressions). The fix is `f64::total_cmp`.
fn float_total_order(tokens: &[Tok], out: &mut Vec<RawDiag>) {
    let n = tokens.len();
    for i in 0..n {
        if tokens[i].kind == TokKind::Ident
            && ORDER_SINKS.contains(&tokens[i].text.as_str())
            && i + 1 < n
            && tokens[i + 1].is_punct('(')
        {
            let end = match_paren(tokens, i + 1);
            for t in &tokens[i + 2..end] {
                if t.is_ident("partial_cmp") {
                    out.push(RawDiag {
                        line: t.line,
                        lint: "float-total-order",
                        message: format!(
                            "partial_cmp inside {}: panics or silently reorders on NaN; \
                             use f64::total_cmp",
                            tokens[i].text
                        ),
                    });
                }
            }
        }
        // unwrap_or(Ordering::Equal) — masks NaN as equality anywhere.
        if tokens[i].is_ident("unwrap_or") && i + 1 < n && tokens[i + 1].is_punct('(') {
            let end = match_paren(tokens, i + 1);
            let args = &tokens[i + 2..end];
            let masks_nan = args.iter().any(|t| t.is_ident("Ordering"))
                && args.iter().any(|t| t.is_ident("Equal"));
            if masks_nan {
                out.push(RawDiag {
                    line: tokens[i].line,
                    lint: "float-total-order",
                    message: "unwrap_or(Ordering::Equal) silently treats NaN as equal and \
                              reorders nondeterministically; use f64::total_cmp"
                        .into(),
                });
            }
        }
    }
}

/// Iteration-signal idents for `hash-iter-numeric`.
const ITER_SIGNALS: [&str; 6] = ["iter", "into_iter", "keys", "values", "values_mut", "drain"];
/// Float-accumulation-signal idents for `hash-iter-numeric`.
const FLOAT_SIGNALS: [&str; 7] = ["f64", "f32", "sum", "fold", "max_by", "min_by", "product"];

/// **hash-iter-numeric** — a function that iterates a `HashMap`/`HashSet`
/// *and* accumulates floats: the iteration order is randomized per process,
/// so any float reduction over it is nondeterministic. Require `BTreeMap`/
/// `BTreeSet` or an explicit sort of the keys. Test code is exempt (tests
/// assert on outcomes, not reduction order).
fn hash_iter_numeric(tokens: &[Tok], in_test: &[bool], out: &mut Vec<RawDiag>) {
    for &(start, end) in &fn_spans(tokens) {
        if in_test[start] {
            continue;
        }
        let body = &tokens[start..=end];
        let hash_tok = body
            .iter()
            .find(|t| t.is_ident("HashMap") || t.is_ident("HashSet"));
        let Some(hash_tok) = hash_tok else { continue };
        let iterates = body
            .iter()
            .any(|t| t.is_ident("for") || ITER_SIGNALS.contains(&t.text.as_str()));
        let accumulates = body.iter().enumerate().any(|(j, t)| {
            (t.kind == TokKind::Ident && FLOAT_SIGNALS.contains(&t.text.as_str()))
                || (t.is_punct('+') && body.get(j + 1).is_some_and(|u| u.is_punct('=')))
        });
        if iterates && accumulates {
            out.push(RawDiag {
                line: hash_tok.line,
                lint: "hash-iter-numeric",
                message: "HashMap/HashSet iteration feeds a float reduction; iteration order \
                          is nondeterministic — use BTreeMap/BTreeSet or sort keys first"
                    .into(),
            });
        }
    }
}

/// Macros that unconditionally panic.
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// **panic-free-libs** — `.unwrap()` / `.expect(…)` / panicking macros in
/// the non-test library code of the numeric crates. Slice indexing is
/// deliberately out of scope: `Matrix`/`Vector` indexing is the kernels'
/// core idiom and its bounds are invariant-checked at construction.
fn panic_free_libs(tokens: &[Tok], in_test: &[bool], ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    let scoped = PANIC_FREE_CRATES.contains(&ctx.crate_name)
        || PANIC_FREE_FILES.contains(&(ctx.crate_name, ctx.file_stem));
    if !scoped {
        return;
    }
    let n = tokens.len();
    for i in 0..n {
        if in_test[i] {
            continue;
        }
        let t = &tokens[i];
        // `.unwrap()` / `.expect(` as method calls only.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct('.')
            && i + 1 < n
            && tokens[i + 1].is_punct('(')
        {
            out.push(RawDiag {
                line: t.line,
                lint: "panic-free-libs",
                message: format!(
                    ".{}() in panic-free crate `{}`; return a typed error, or justify with \
                     `// analyze: allow(panic-free-libs) <reason>`",
                    t.text, ctx.crate_name
                ),
            });
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && i + 1 < n
            && tokens[i + 1].is_punct('!')
        {
            out.push(RawDiag {
                line: t.line,
                lint: "panic-free-libs",
                message: format!(
                    "{}! in panic-free crate `{}`; return a typed error, or justify with \
                     `// analyze: allow(panic-free-libs) <reason>`",
                    t.text, ctx.crate_name
                ),
            });
        }
    }
}

/// Lock methods whose `Result<Guard, PoisonError>` must use the blessed
/// recovery idiom.
const LOCK_METHODS: [&str; 4] = ["lock", "read", "write", "into_inner"];
/// Forbidden immediate consumers of a std lock result.
const LOCK_SINKS: [&str; 3] = ["unwrap", "expect", "unwrap_or"];

/// **lock-poison-policy** — every `std::sync` lock acquisition must recover
/// from poisoning the same way: `.unwrap_or_else(|p| p.into_inner())`. A
/// poisoned slot's value is still ours to overwrite or read; panicking on
/// poison turns one worker's panic into a cascade (and `expect` messages
/// had drifted into three different idioms across the workspace). Files
/// that never touch `std::sync::{Mutex, RwLock}` are exempt, so
/// `parking_lot` users and io `read`/`write` calls are not flagged.
fn lock_poison_policy(tokens: &[Tok], in_test: &[bool], out: &mut Vec<RawDiag>) {
    let uses_std_sync = tokens.windows(5).any(|w| {
        w[0].is_ident("std")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].is_ident("sync")
            && w[4].is_punct(':')
    });
    let has_lock_type = tokens
        .iter()
        .any(|t| t.is_ident("Mutex") || t.is_ident("RwLock"));
    if !uses_std_sync || !has_lock_type {
        return;
    }
    let n = tokens.len();
    for i in 0..n {
        if in_test[i] {
            continue;
        }
        // Pattern: `.` lock_method `(` `)` `.` sink `(`
        if tokens[i].is_punct('.')
            && i + 5 < n
            && tokens[i + 1].kind == TokKind::Ident
            && LOCK_METHODS.contains(&tokens[i + 1].text.as_str())
            && tokens[i + 2].is_punct('(')
            && tokens[i + 3].is_punct(')')
            && tokens[i + 4].is_punct('.')
            && tokens[i + 5].kind == TokKind::Ident
            && LOCK_SINKS.contains(&tokens[i + 5].text.as_str())
        {
            out.push(RawDiag {
                line: tokens[i + 5].line,
                lint: "lock-poison-policy",
                message: format!(
                    ".{}().{}(…) on a std::sync lock: use the one blessed recovery idiom \
                     `.unwrap_or_else(|p| p.into_inner())`",
                    tokens[i + 1].text,
                    tokens[i + 5].text
                ),
            });
        }
    }
}

/// Identifiers that construct nondeterministically-seeded RNGs.
const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// **unseeded-rng** — constructing an RNG from ambient entropy outside
/// `biosim`. Every pipeline stage must be replayable from a config seed;
/// entropy is only allowed in the simulator crate that explicitly owns it.
fn unseeded_rng(tokens: &[Tok], ctx: &FileCtx, out: &mut Vec<RawDiag>) {
    if ctx.crate_name == RNG_EXEMPT_CRATE {
        return;
    }
    let n = tokens.len();
    for i in 0..n {
        let t = &tokens[i];
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(RawDiag {
                line: t.line,
                lint: "unseeded-rng",
                message: format!(
                    "`{}` constructs an unseeded RNG outside `biosim`; derive the generator \
                     from an explicit config seed (e.g. ChaCha8Rng::seed_from_u64)",
                    t.text
                ),
            });
        }
        // `rand::rng()` / `rand::random(...)` free functions.
        if t.is_ident("rand")
            && i + 3 < n
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && (tokens[i + 3].is_ident("rng") || tokens[i + 3].is_ident("random"))
        {
            out.push(RawDiag {
                line: t.line,
                lint: "unseeded-rng",
                message: format!(
                    "`rand::{}` uses the ambient thread RNG outside `biosim`; derive the \
                     generator from an explicit config seed",
                    tokens[i + 3].text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diags(src: &str, crate_name: &str) -> Vec<RawDiag> {
        let l = lex(src);
        run_all(
            &l.tokens,
            &FileCtx {
                crate_name,
                file_stem: "lib",
            },
        )
    }

    #[test]
    fn flags_partial_cmp_in_sort_by() {
        let d = diags(
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
            "core",
        );
        assert!(d.iter().any(|x| x.lint == "float-total-order"));
    }

    #[test]
    fn total_cmp_is_clean() {
        let d = diags(
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }",
            "core",
        );
        assert!(d.iter().all(|x| x.lint != "float-total-order"));
    }

    #[test]
    fn flags_hash_iteration_with_float_accumulation() {
        let src = "fn f() { let m: HashMap<u32, f64> = HashMap::new(); \
                   let mut s = 0.0; for (_, v) in m.iter() { s += v; } }";
        let d = diags(src, "core");
        assert!(d.iter().any(|x| x.lint == "hash-iter-numeric"));
    }

    #[test]
    fn btreemap_is_clean() {
        let src = "fn f() { let m: BTreeMap<u32, f64> = BTreeMap::new(); \
                   let mut s = 0.0; for (_, v) in m.iter() { s += v; } }";
        let d = diags(src, "core");
        assert!(d.iter().all(|x| x.lint != "hash-iter-numeric"));
    }

    #[test]
    fn unwrap_flagged_only_in_panic_free_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(diags(src, "linalg")
            .iter()
            .any(|x| x.lint == "panic-free-libs"));
        assert!(diags(src, "serve")
            .iter()
            .all(|x| x.lint != "panic-free-libs"));
    }

    #[test]
    fn unwrap_not_flagged_in_test_code() {
        let src = "#[cfg(test)] mod tests { fn t(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(diags(src, "linalg")
            .iter()
            .all(|x| x.lint != "panic-free-libs"));
    }

    #[test]
    fn lock_expect_flagged_with_std_sync() {
        let src = "use std::sync::Mutex;\nfn f(m: &Mutex<u32>) { *m.lock().expect(\"p\") += 1; }";
        let d = diags(src, "core");
        assert!(d.iter().any(|x| x.lint == "lock-poison-policy"));
    }

    #[test]
    fn blessed_idiom_is_clean_and_parking_lot_exempt() {
        let blessed = "use std::sync::Mutex;\nfn f(m: &Mutex<u32>) { \
                       *m.lock().unwrap_or_else(|p| p.into_inner()) += 1; }";
        assert!(diags(blessed, "core")
            .iter()
            .all(|x| x.lint != "lock-poison-policy"));
        let pl = "use parking_lot::Mutex;\nfn f(m: &Mutex<u32>) { *m.lock() += 1; }";
        assert!(diags(pl, "core")
            .iter()
            .all(|x| x.lint != "lock-poison-policy"));
    }

    #[test]
    fn distinct_findings_on_one_line_both_survive() {
        // Two comparators in one chained expression: the sort_by closure
        // uses partial_cmp AND masks NaN with unwrap_or(Ordering::Equal).
        // Before the message-aware dedup these collapsed to one finding.
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| \
                   a.partial_cmp(b).unwrap_or(Ordering::Equal)); }";
        let d = diags(src, "core");
        let n = d.iter().filter(|x| x.lint == "float-total-order").count();
        assert_eq!(n, 2, "expected both distinct findings, got {d:?}");
    }

    #[test]
    fn identical_duplicates_still_collapse() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let d = diags(src, "core");
        let n = d.iter().filter(|x| x.lint == "float-total-order").count();
        assert_eq!(n, 1, "{d:?}");
    }

    #[test]
    fn panic_free_extends_to_protocol_files() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let l = lex(src);
        let wire = run_all(
            &l.tokens,
            &FileCtx {
                crate_name: "cluster",
                file_stem: "wire",
            },
        );
        assert!(wire.iter().any(|x| x.lint == "panic-free-libs"));
        let other = run_all(
            &l.tokens,
            &FileCtx {
                crate_name: "cluster",
                file_stem: "replica",
            },
        );
        assert!(other.iter().all(|x| x.lint != "panic-free-libs"));
    }

    #[test]
    fn entropy_rng_flagged_outside_biosim() {
        let src = "fn f() { let r = rand::rng(); }";
        assert!(diags(src, "fuzzy").iter().any(|x| x.lint == "unseeded-rng"));
        assert!(diags(src, "biosim")
            .iter()
            .all(|x| x.lint != "unseeded-rng"));
    }
}
