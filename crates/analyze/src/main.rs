//! CLI driver: `kinemyo-analyze [--root <path>] [--list] [--verbose]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut verbose = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "--list" => list = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list {
        for id in kinemyo_analyze::lints::LINT_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "kinemyo-analyze: {} does not look like a workspace root (no Cargo.toml); \
             pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = match kinemyo_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kinemyo-analyze: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    if verbose {
        for s in &report.suppressed {
            println!(
                "{}:{}: [{}] suppressed — {}",
                s.path,
                s.line,
                s.lint,
                s.reason.as_deref().unwrap_or("")
            );
        }
    }
    println!(
        "kinemyo-analyze: {} violation{}, {} suppressed, {} files scanned",
        report.violations.len(),
        if report.violations.len() == 1 {
            ""
        } else {
            "s"
        },
        report.suppressed.len(),
        report.files_scanned
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Workspace root: two levels above this crate's manifest when built by
/// cargo, the current directory otherwise.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(PathBuf::from).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("kinemyo-analyze: {msg}");
    print_help();
    ExitCode::from(2)
}

fn print_help() {
    eprintln!(
        "usage: kinemyo-analyze [--root <workspace-root>] [--list] [--verbose]\n\
         \n\
         Lints every .rs file in the workspace for determinism and\n\
         numeric-safety invariants. Suppress one finding with\n\
         `// analyze: allow(<lint-id>) <reason>` on (or directly above)\n\
         the offending line."
    );
}
