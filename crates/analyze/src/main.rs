//! CLI driver: `kinemyo-analyze [--root <path>] [--list] [--verbose]
//! [--format human|json]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use kinemyo_analyze::Diagnostic;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut verbose = false;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root requires a path"),
            },
            "--list" => list = true,
            "--verbose" | "-v" => verbose = true,
            "--format" => match args.next().as_deref() {
                Some("human") => json = false,
                Some("json") => json = true,
                Some(other) => {
                    return usage(&format!("unknown format `{other}` (human|json)"));
                }
                None => return usage("--format requires `human` or `json`"),
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list {
        for id in kinemyo_analyze::lints::LINT_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "kinemyo-analyze: {} does not look like a workspace root (no Cargo.toml); \
             pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = match kinemyo_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kinemyo-analyze: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print_json(&report.violations, &report.suppressed);
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        if verbose {
            for s in &report.suppressed {
                println!(
                    "{}:{}: [{}] suppressed — {}",
                    s.path,
                    s.line,
                    s.lint,
                    s.reason.as_deref().unwrap_or("")
                );
            }
        }
        // Per-lint counts (violations + suppressed), so CI logs show at a
        // glance where findings move between runs.
        for id in kinemyo_analyze::lints::LINT_IDS {
            let active = report.violations.iter().filter(|v| v.lint == id).count();
            let supp = report.suppressed.iter().filter(|s| s.lint == id).count();
            if active + supp > 0 {
                println!("kinemyo-analyze: [{id}] {active} active, {supp} suppressed");
            }
        }
        println!(
            "kinemyo-analyze: {} violation{}, {} suppressed, {} files scanned",
            report.violations.len(),
            if report.violations.len() == 1 {
                ""
            } else {
                "s"
            },
            report.suppressed.len(),
            report.files_scanned
        );
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Emits every finding (active first, then suppressed) as a JSON array
/// with the stable schema `{file, line, lint, message, suppressed}`.
/// Hand-rolled on purpose: this crate is dependency-free.
fn print_json(violations: &[Diagnostic], suppressed: &[Diagnostic]) {
    let mut out = String::from("[");
    let mut first = true;
    for d in violations.iter().chain(suppressed) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \
             \"message\": \"{}\", \"suppressed\": {}}}",
            json_escape(&d.path),
            d.line,
            json_escape(&d.lint),
            json_escape(&d.message),
            d.suppressed
        ));
    }
    out.push_str(if first { "]" } else { "\n]" });
    println!("{out}");
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Workspace root: two levels above this crate's manifest when built by
/// cargo, the current directory otherwise.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(PathBuf::from).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("kinemyo-analyze: {msg}");
    print_help();
    ExitCode::from(2)
}

fn print_help() {
    eprintln!(
        "usage: kinemyo-analyze [--root <workspace-root>] [--list] [--verbose]\n\
         \x20                      [--format human|json]\n\
         \n\
         Lints every .rs file in the workspace for determinism, numeric-\n\
         safety, concurrency, and durability invariants. Suppress one\n\
         finding with `// analyze: allow(<lint-id>) <reason>` on (or\n\
         directly above) the offending line.\n\
         \n\
         --format json prints every finding (active and suppressed) as a\n\
         JSON array of {{file, line, lint, message, suppressed}}."
    );
}
