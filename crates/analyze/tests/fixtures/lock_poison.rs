//! Known-bad: panicking on a poisoned `std::sync` lock cascades one
//! worker's panic into every thread that touches the lock afterwards.
//! Fix: the blessed idiom `.unwrap_or_else(|p| p.into_inner())`.

use std::sync::Mutex;

fn bump(counter: &Mutex<u64>) {
    *counter.lock().unwrap() += 1;
}
