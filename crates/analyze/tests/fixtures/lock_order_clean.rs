//! Known-good: both paths take the same two locks in one global order
//! (`a` before `b`), including through the call graph — no cycle.

struct Hub {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Hub {
    fn forward(&self) {
        let g = self.a.lock();
        self.grab_b();
        drop(g);
    }

    fn grab_b(&self) {
        let _g = self.b.lock();
    }

    fn also_forward(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        drop(h);
        drop(g);
    }
}
