//! Known-good: the guard is dropped before the blocking socket write,
//! so slow peers never extend the critical section.

struct Conn {
    state: Mutex<u32>,
}

impl Conn {
    fn pump(&self, stream: &mut std::net::TcpStream) {
        let g = self.state.lock();
        let _snapshot = *g;
        drop(g);
        stream.write_all(b"ready").ok();
    }
}
