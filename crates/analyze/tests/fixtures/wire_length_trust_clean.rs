//! Known-good: the decoded length is checked against the frame cap
//! before it sizes anything, so hostile bytes cannot pick the
//! allocation size.

const MAX_FRAME_BYTES: u32 = 64 << 20;

fn decode_frame(buf: &[u8]) -> Vec<u8> {
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_BYTES as usize {
        return Vec::new();
    }
    Vec::with_capacity(len)
}
