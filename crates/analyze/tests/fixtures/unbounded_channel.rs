//! Known-bad: an unbounded channel on a serving path — overload becomes
//! unbounded memory growth and silent queue latency instead of a typed
//! rejection. Fix: `mpsc::sync_channel(n)` plus `try_send` shedding.

fn spawn_pipeline() {
    let (tx, rx) = mpsc::channel();
    drop((tx, rx));
}
