//! Known-bad: a length decoded straight off the wire sizes an
//! allocation with no cap — four attacker bytes pick the allocation
//! size. Fix: bound it against a named `MAX_*` constant first.

fn decode_frame(buf: &[u8]) -> Vec<u8> {
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    Vec::with_capacity(len)
}
