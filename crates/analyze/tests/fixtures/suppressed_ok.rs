//! The escape hatch: the same defect as `panic_free_libs.rs`, but carrying
//! a well-formed `// analyze: allow` directive with a reason — the finding
//! is recorded as suppressed, not as a violation.

fn head(values: &[f64]) -> f64 {
    // analyze: allow(panic-free-libs) fixture demonstrating the escape hatch
    *values.first().unwrap()
}
