//! Known-bad: `partial_cmp` inside a sort comparator panics (or silently
//! reorders) the moment a NaN reaches it. Fix: `f64::total_cmp`.

fn sort_scores(scores: &mut Vec<f64>) {
    scores.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
}
