//! Known-bad: `.unwrap()` in the non-test code of a numeric library crate.
//! Fix: return the crate's typed error, or justify with an allow directive.

fn head(values: &[f64]) -> f64 {
    *values.first().unwrap()
}
