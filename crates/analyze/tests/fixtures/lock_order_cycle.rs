//! Known-bad: two locks acquired in opposite orders on two paths — a
//! classic AB/BA deadlock. The `a -> b` edge only exists through the
//! call graph (`forward` holds `a` while calling `grab_b`), so this
//! fixture also proves the lint fires across a function boundary.
//! Fix: pick one global acquisition order and hold to it everywhere.

struct Hub {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Hub {
    fn forward(&self) {
        let g = self.a.lock();
        self.grab_b();
        drop(g);
    }

    fn grab_b(&self) {
        let _g = self.b.lock();
    }

    fn backward(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
        drop(h);
        drop(g);
    }
}
