//! Known-bad: a float reduction over `HashMap` iteration order — the order
//! is randomized per process, so the sum's rounding differs run to run.
//! Fix: `BTreeMap`, or sort the keys before reducing.

use std::collections::HashMap;

fn total_energy(channels: &HashMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    for v in channels.values() {
        sum += v;
    }
    sum
}
