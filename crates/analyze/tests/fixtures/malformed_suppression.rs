//! Known-bad: an allow directive without a reason is malformed — it does
//! NOT silence the finding, and is itself reported.

fn head(values: &[f64]) -> f64 {
    // analyze: allow(panic-free-libs)
    *values.first().unwrap()
}
