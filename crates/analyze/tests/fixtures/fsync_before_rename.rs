//! Known-bad: renaming a freshly written file into place without
//! syncing it first — a crash can publish a complete-looking name over
//! incomplete bytes. Fix: `sync_all` (or `sync_data`) on the temp file
//! before the rename.

use std::path::Path;

fn publish(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::rename(tmp, dst)
}
