//! Known-good: the temp file is synced before the rename publishes its
//! name, so a crash leaves either the old file or the complete new one.

use std::fs::File;
use std::path::Path;

fn publish(file: &File, tmp: &Path, dst: &Path) -> std::io::Result<()> {
    file.sync_all()?;
    std::fs::rename(tmp, dst)
}
