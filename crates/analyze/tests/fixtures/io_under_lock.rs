//! Known-bad: a socket write while a lock guard is live — every other
//! thread wanting `state` now waits on this peer's TCP window.
//! Fix: copy what the write needs, drop the guard, then do the I/O.

struct Conn {
    state: Mutex<u32>,
}

impl Conn {
    fn pump(&self, stream: &mut std::net::TcpStream) {
        let g = self.state.lock();
        stream.write_all(b"ready").ok();
        drop(g);
    }
}
