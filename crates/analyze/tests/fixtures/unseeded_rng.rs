//! Known-bad: an ambient-entropy RNG outside `biosim` makes the pipeline
//! unreplayable. Fix: derive the generator from an explicit config seed.

fn jitter() -> f64 {
    let mut g = rand::rng();
    g.random()
}
