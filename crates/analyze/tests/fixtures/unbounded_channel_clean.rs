//! Known-good: a bounded channel — senders shed with `try_send` when the
//! consumer falls behind, so overload degrades into typed rejections.

fn spawn_pipeline() {
    let (tx, rx) = mpsc::sync_channel(64);
    drop((tx, rx));
}
