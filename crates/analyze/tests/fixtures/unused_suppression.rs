//! Known-bad: a stale allow directive matching no violation — reported so
//! the escape hatch cannot silently rot as the code under it changes.

// analyze: allow(float-total-order) nothing to silence here
fn noop() {}
