//! Fixture-driven end-to-end checks for the analyzer: every lint fires
//! exactly once on its known-bad snippet (`tests/fixtures/`), the allow
//! escape hatch suppresses without hiding, and the workspace itself scans
//! clean. The fixtures live under a `fixtures/` directory precisely so the
//! workspace walk skips them.

use kinemyo_analyze::{analyze_source, analyze_workspace, FileReport};
use std::path::Path;

fn analyze_fixture(name: &str, crate_name: &str) -> FileReport {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    analyze_source(name, crate_name, &src)
}

/// The fixture must produce exactly one violation, of the expected lint.
fn assert_fires_once(name: &str, crate_name: &str, lint: &str) {
    let r = analyze_fixture(name, crate_name);
    assert_eq!(
        r.violations.len(),
        1,
        "{name}: expected exactly one violation, got {:?}",
        r.violations
    );
    assert_eq!(r.violations[0].lint, lint, "{name}: wrong lint");
    assert!(
        r.suppressed.is_empty(),
        "{name}: nothing should be suppressed"
    );
}

#[test]
fn float_total_order_fires_once() {
    assert_fires_once("float_total_order.rs", "core", "float-total-order");
}

#[test]
fn hash_iter_numeric_fires_once() {
    assert_fires_once("hash_iter_numeric.rs", "core", "hash-iter-numeric");
}

#[test]
fn panic_free_libs_fires_once() {
    assert_fires_once("panic_free_libs.rs", "linalg", "panic-free-libs");
}

#[test]
fn panic_free_fixture_is_clean_outside_scoped_crates() {
    let r = analyze_fixture("panic_free_libs.rs", "serve");
    assert!(r.violations.is_empty(), "got {:?}", r.violations);
}

#[test]
fn lock_poison_fires_once() {
    assert_fires_once("lock_poison.rs", "core", "lock-poison-policy");
}

#[test]
fn unseeded_rng_fires_once() {
    assert_fires_once("unseeded_rng.rs", "fuzzy", "unseeded-rng");
}

#[test]
fn unseeded_rng_fixture_is_clean_in_biosim() {
    let r = analyze_fixture("unseeded_rng.rs", "biosim");
    assert!(r.violations.is_empty(), "got {:?}", r.violations);
}

#[test]
fn allow_directive_suppresses_and_is_reported() {
    let r = analyze_fixture("suppressed_ok.rs", "linalg");
    assert!(r.violations.is_empty(), "got {:?}", r.violations);
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].lint, "panic-free-libs");
    assert_eq!(
        r.suppressed[0].reason.as_deref(),
        Some("fixture demonstrating the escape hatch")
    );
}

#[test]
fn malformed_directive_does_not_suppress() {
    let r = analyze_fixture("malformed_suppression.rs", "linalg");
    let lints: Vec<&str> = r.violations.iter().map(|v| v.lint.as_str()).collect();
    assert!(lints.contains(&"malformed-suppression"), "got {lints:?}");
    // The defect under the broken directive stays a violation.
    assert!(lints.contains(&"panic-free-libs"), "got {lints:?}");
    assert!(r.suppressed.is_empty());
}

#[test]
fn stale_directive_fires_once() {
    assert_fires_once("unused_suppression.rs", "core", "unused-suppression");
}

/// The AB/BA fixture must yield exactly two cycle diagnostics — one per
/// edge of the cycle — and one of them can only come from call-graph
/// propagation (`forward` holds `a` while `grab_b` takes `b`).
#[test]
fn lock_order_cycle_fires_across_fn_boundary() {
    let r = analyze_fixture("lock_order_cycle.rs", "serve");
    let cycles: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.lint == "lock-order-cycle")
        .collect();
    assert_eq!(
        cycles.len(),
        2,
        "expected one diagnostic per cycle edge, got {:?}",
        r.violations
    );
    assert_eq!(
        r.violations.len(),
        2,
        "no other lint may fire: {:?}",
        r.violations
    );
    assert!(
        cycles
            .iter()
            .any(|v| v.message.contains("`serve::b`") && v.message.contains("`serve::a`")),
        "cycle messages must name both locks: {cycles:?}"
    );
}

#[test]
fn lock_order_clean_fixture_is_clean() {
    let r = analyze_fixture("lock_order_clean.rs", "serve");
    assert!(r.violations.is_empty(), "got {:?}", r.violations);
}

#[test]
fn io_under_lock_fires_once() {
    assert_fires_once("io_under_lock.rs", "serve", "io-under-lock");
}

#[test]
fn io_under_lock_clean_fixture_is_clean() {
    let r = analyze_fixture("io_under_lock_clean.rs", "serve");
    assert!(r.violations.is_empty(), "got {:?}", r.violations);
}

#[test]
fn io_under_lock_is_scoped_to_serving_crates() {
    // Same source, numeric crate: the lint stays quiet outside
    // serve/cluster/store.
    let r = analyze_fixture("io_under_lock.rs", "linalg");
    assert!(
        r.violations.iter().all(|v| v.lint != "io-under-lock"),
        "got {:?}",
        r.violations
    );
}

#[test]
fn unbounded_channel_fires_once() {
    assert_fires_once("unbounded_channel.rs", "serve", "unbounded-channel");
}

#[test]
fn unbounded_channel_clean_fixture_is_clean() {
    let r = analyze_fixture("unbounded_channel_clean.rs", "serve");
    assert!(r.violations.is_empty(), "got {:?}", r.violations);
}

#[test]
fn wire_length_trust_fires_once() {
    assert_fires_once("wire_length_trust.rs", "cluster", "wire-length-trust");
}

#[test]
fn wire_length_trust_clean_fixture_is_clean() {
    let r = analyze_fixture("wire_length_trust_clean.rs", "cluster");
    assert!(r.violations.is_empty(), "got {:?}", r.violations);
}

#[test]
fn fsync_before_rename_fires_once() {
    assert_fires_once("fsync_before_rename.rs", "store", "fsync-before-rename");
}

#[test]
fn fsync_before_rename_clean_fixture_is_clean() {
    let r = analyze_fixture("fsync_before_rename_clean.rs", "store");
    assert!(r.violations.is_empty(), "got {:?}", r.violations);
}

/// The gate itself: the workspace must scan clean, and every surviving
/// suppression must carry a written reason.
#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let report = analyze_workspace(root).expect("workspace walk");
    assert!(report.files_scanned > 50, "walk looks broken");
    // Zero unsuppressed findings, asserted per lint so a failure names
    // the regressing lint directly.
    for id in kinemyo_analyze::lints::LINT_IDS {
        let hits: Vec<String> = report
            .violations
            .iter()
            .filter(|v| v.lint == id)
            .map(|v| v.to_string())
            .collect();
        assert!(
            hits.is_empty(),
            "workspace has unsuppressed [{id}] findings:\n{}",
            hits.join("\n")
        );
    }
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "workspace has violations of unknown lints:\n{}",
        rendered.join("\n")
    );
    for s in &report.suppressed {
        assert!(
            s.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "suppression without reason: {s}"
        );
    }
}
