//! Body segments, muscles, limbs and motion classes.
//!
//! The paper analyzes one limb at a time (Sec. 5): the right hand uses four
//! motion-capture segments (clavicle, humerus, radius, hand) and four EMG
//! channels (biceps, triceps, upper forearm, lower forearm); the right leg
//! uses three segments (tibia, foot, toe) and two EMG channels (front shin,
//! back shin).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tracked body segment (a retro-reflective marker location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Clavicle marker (shoulder girdle).
    Clavicle,
    /// Humerus marker (distal upper arm / elbow).
    Humerus,
    /// Radius marker (distal forearm / wrist).
    Radius,
    /// Hand marker (knuckles).
    Hand,
    /// Tibia marker (distal shank / ankle).
    Tibia,
    /// Foot marker (mid-foot).
    Foot,
    /// Toe marker (toe tip).
    Toe,
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Segment::Clavicle => "clavicle",
            Segment::Humerus => "humerus",
            Segment::Radius => "radius",
            Segment::Hand => "hand",
            Segment::Tibia => "tibia",
            Segment::Foot => "foot",
            Segment::Toe => "toe",
        };
        f.write_str(name)
    }
}

/// A surface-EMG electrode site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Muscle {
    /// Biceps brachii (elbow flexor).
    Biceps,
    /// Triceps brachii (elbow extensor).
    Triceps,
    /// Upper forearm (wrist/finger extensor group).
    UpperForearm,
    /// Lower forearm (wrist/finger flexor group).
    LowerForearm,
    /// Front of shin (tibialis anterior, dorsiflexor).
    FrontShin,
    /// Back of shin (gastrocnemius/soleus, plantarflexor).
    BackShin,
}

impl fmt::Display for Muscle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Muscle::Biceps => "biceps",
            Muscle::Triceps => "triceps",
            Muscle::UpperForearm => "upper-forearm",
            Muscle::LowerForearm => "lower-forearm",
            Muscle::FrontShin => "front-shin",
            Muscle::BackShin => "back-shin",
        };
        f.write_str(name)
    }
}

/// The limb under analysis (the paper treats hands and legs separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Limb {
    /// Right arm/hand: 4 mocap segments + 4 EMG channels.
    RightHand,
    /// Right leg: 3 mocap segments + 2 EMG channels.
    RightLeg,
    /// Whole right side: all 7 segments + all 6 EMG channels. The paper
    /// analyzes one limb at a time but notes "our approach is flexible
    /// enough to classify the human motions for whole human body"
    /// (Sec. 5) — this variant exercises that claim.
    WholeBody,
}

impl Limb {
    /// The tracked segments of this limb, in mocap column order.
    pub fn segments(&self) -> &'static [Segment] {
        match self {
            Limb::RightHand => &[
                Segment::Clavicle,
                Segment::Humerus,
                Segment::Radius,
                Segment::Hand,
            ],
            Limb::RightLeg => &[Segment::Tibia, Segment::Foot, Segment::Toe],
            Limb::WholeBody => &[
                Segment::Clavicle,
                Segment::Humerus,
                Segment::Radius,
                Segment::Hand,
                Segment::Tibia,
                Segment::Foot,
                Segment::Toe,
            ],
        }
    }

    /// The EMG electrode sites of this limb, in channel order.
    pub fn muscles(&self) -> &'static [Muscle] {
        match self {
            Limb::RightHand => &[
                Muscle::Biceps,
                Muscle::Triceps,
                Muscle::UpperForearm,
                Muscle::LowerForearm,
            ],
            Limb::RightLeg => &[Muscle::FrontShin, Muscle::BackShin],
            Limb::WholeBody => &[
                Muscle::Biceps,
                Muscle::Triceps,
                Muscle::UpperForearm,
                Muscle::LowerForearm,
                Muscle::FrontShin,
                Muscle::BackShin,
            ],
        }
    }

    /// Number of motion-capture columns (3 per segment).
    pub fn mocap_cols(&self) -> usize {
        self.segments().len() * 3
    }

    /// Number of EMG channels.
    pub fn emg_channels(&self) -> usize {
        self.muscles().len()
    }
}

impl fmt::Display for Limb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Limb::RightHand => "right-hand",
            Limb::RightLeg => "right-leg",
            Limb::WholeBody => "whole-body",
        })
    }
}

/// Semantic motion classes the simulator can perform.
///
/// The paper's examples are "raise arm" and "throw ball" (Figs. 2–4); the
/// remaining classes populate the test bed of "different human motions
/// performed by different participants" (Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MotionClass {
    // ---- right-hand classes ----
    /// Raise the arm forward overhead and lower it (paper Fig. 2).
    RaiseArm,
    /// Wind up and throw a ball (paper Figs. 3–4).
    ThrowBall,
    /// Wave the raised hand side to side several times.
    WaveHand,
    /// A straight punch: fast elbow extension forward.
    Punch,
    /// Bring a cup to the mouth and back (slow elbow flexion with hold).
    DrinkCup,
    /// Continuous circular stirring motion of the forearm.
    ArmCircle,
    // ---- right-leg classes ----
    /// Walking strides (in place).
    Walk,
    /// Kick: wind-up then rapid knee extension.
    Kick,
    /// Squat down and stand back up.
    Squat,
    /// Step up onto a platform (single slow flexion–extension).
    StepUp,
    /// Rhythmic toe tapping (ankle dorsiflexion oscillation).
    ToeTap,
    /// Heel raise: sustained plantar flexion.
    HeelRaise,
}

impl MotionClass {
    /// The limb this class belongs to.
    pub fn limb(&self) -> Limb {
        match self {
            MotionClass::RaiseArm
            | MotionClass::ThrowBall
            | MotionClass::WaveHand
            | MotionClass::Punch
            | MotionClass::DrinkCup
            | MotionClass::ArmCircle => Limb::RightHand,
            MotionClass::Walk
            | MotionClass::Kick
            | MotionClass::Squat
            | MotionClass::StepUp
            | MotionClass::ToeTap
            | MotionClass::HeelRaise => Limb::RightLeg,
        }
    }

    /// All classes defined for a limb. For [`Limb::WholeBody`] this is
    /// every class: whole-body capture sees arm motions with quiet leg
    /// channels and vice versa.
    pub fn all_for(limb: Limb) -> &'static [MotionClass] {
        match limb {
            Limb::RightHand => &[
                MotionClass::RaiseArm,
                MotionClass::ThrowBall,
                MotionClass::WaveHand,
                MotionClass::Punch,
                MotionClass::DrinkCup,
                MotionClass::ArmCircle,
            ],
            Limb::RightLeg => &[
                MotionClass::Walk,
                MotionClass::Kick,
                MotionClass::Squat,
                MotionClass::StepUp,
                MotionClass::ToeTap,
                MotionClass::HeelRaise,
            ],
            Limb::WholeBody => &[
                MotionClass::RaiseArm,
                MotionClass::ThrowBall,
                MotionClass::WaveHand,
                MotionClass::Punch,
                MotionClass::DrinkCup,
                MotionClass::ArmCircle,
                MotionClass::Walk,
                MotionClass::Kick,
                MotionClass::Squat,
                MotionClass::StepUp,
                MotionClass::ToeTap,
                MotionClass::HeelRaise,
            ],
        }
    }

    /// Stable human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            MotionClass::RaiseArm => "raise-arm",
            MotionClass::ThrowBall => "throw-ball",
            MotionClass::WaveHand => "wave-hand",
            MotionClass::Punch => "punch",
            MotionClass::DrinkCup => "drink-cup",
            MotionClass::ArmCircle => "arm-circle",
            MotionClass::Walk => "walk",
            MotionClass::Kick => "kick",
            MotionClass::Squat => "squat",
            MotionClass::StepUp => "step-up",
            MotionClass::ToeTap => "toe-tap",
            MotionClass::HeelRaise => "heel-raise",
        }
    }
}

impl fmt::Display for MotionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_channel_counts() {
        // Sec. 5: hand has 4 segments + 4 EMG; leg has 3 segments + 2 EMG.
        assert_eq!(Limb::RightHand.segments().len(), 4);
        assert_eq!(Limb::RightHand.muscles().len(), 4);
        assert_eq!(Limb::RightLeg.segments().len(), 3);
        assert_eq!(Limb::RightLeg.muscles().len(), 2);
        assert_eq!(Limb::RightHand.mocap_cols(), 12);
        assert_eq!(Limb::RightLeg.mocap_cols(), 9);
        assert_eq!(Limb::RightHand.emg_channels(), 4);
        assert_eq!(Limb::RightLeg.emg_channels(), 2);
    }

    #[test]
    fn classes_map_to_their_limb() {
        for &c in MotionClass::all_for(Limb::RightHand) {
            assert_eq!(c.limb(), Limb::RightHand);
        }
        for &c in MotionClass::all_for(Limb::RightLeg) {
            assert_eq!(c.limb(), Limb::RightLeg);
        }
    }

    #[test]
    fn class_lists_are_disjoint_and_nonempty() {
        let hand = MotionClass::all_for(Limb::RightHand);
        let leg = MotionClass::all_for(Limb::RightLeg);
        assert!(hand.len() >= 6);
        assert!(leg.len() >= 6);
        for h in hand {
            assert!(!leg.contains(h));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = MotionClass::all_for(Limb::RightHand)
            .iter()
            .chain(MotionClass::all_for(Limb::RightLeg))
            .map(|c| c.name())
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MotionClass::RaiseArm.to_string(), "raise-arm");
        assert_eq!(Limb::RightLeg.to_string(), "right-leg");
        assert_eq!(Segment::Clavicle.to_string(), "clavicle");
        assert_eq!(Muscle::UpperForearm.to_string(), "upper-forearm");
    }

    #[test]
    fn serde_roundtrip() {
        let c = MotionClass::ThrowBall;
        let json = serde_json::to_string(&c).unwrap();
        let back: MotionClass = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
