//! Forward kinematics: joint angles → 3-D marker positions.
//!
//! Reproduces what the 16-camera Vicon rig measures (paper Sec. 1, Fig. 1):
//! the global 3-D position of each retro-reflective marker per frame. The
//! skeleton is pelvis-rooted — the paper's local transformation step (Sec.
//! 3.2) later re-expresses every marker relative to the pelvis "because it
//! is the root of all body segments".
//!
//! Coordinate convention: +X lateral (participant's right), +Y up,
//! +Z forward; units are millimetres.

use crate::anthropometry::Anthropometry;
use crate::limb::{Limb, Segment};
use crate::motion::{AngleTrack, LimbAngles};
use crate::noise::{randn, SmoothNoise};
use crate::vec3::Vec3;
use kinemyo_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// Where in the capture volume (and facing which way) a trial is performed.
///
/// Trials happen "at different locations and in different directions"
/// (paper Sec. 3.2) — this is exactly what the pelvis-local transform must
/// normalize away.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Translation of the pelvis origin in the capture volume, mm.
    pub offset: Vec3,
    /// Heading rotation about the vertical axis, radians.
    pub facing_rad: f64,
}

impl Placement {
    /// Identity placement (origin, facing +Z).
    pub fn identity() -> Self {
        Self {
            offset: Vec3::ZERO,
            facing_rad: 0.0,
        }
    }

    /// Samples a placement: uniform offset within ±`max_offset_mm` in the
    /// horizontal plane, heading within ±`facing_spread_rad`.
    pub fn sample<R: Rng>(rng: &mut R, max_offset_mm: f64, facing_spread_rad: f64) -> Self {
        Self {
            offset: Vec3::new(
                (rng.random::<f64>() - 0.5) * 2.0 * max_offset_mm,
                0.0,
                (rng.random::<f64>() - 0.5) * 2.0 * max_offset_mm,
            ),
            facing_rad: (rng.random::<f64>() - 0.5) * 2.0 * facing_spread_rad,
        }
    }

    /// Maps a body-local point into the capture volume.
    pub fn apply(&self, p: Vec3) -> Vec3 {
        p.rotate_about(Vec3::Y, self.facing_rad) + self.offset
    }
}

/// A participant's skeleton (segment lengths + joint offsets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Skeleton {
    /// Body dimensions.
    pub anthro: Anthropometry,
}

impl Skeleton {
    /// Builds a skeleton from anthropometry.
    pub fn new(anthro: Anthropometry) -> Self {
        Self { anthro }
    }

    /// Body-local marker positions for the given limb and joint angles.
    /// `pelvis` is the body-local pelvis position (normally
    /// `(0, pelvis_height, 0)` plus sway). Markers are returned in the
    /// limb's [`Limb::segments`] order.
    pub fn marker_positions(&self, limb: Limb, a: &LimbAngles, pelvis: Vec3) -> Vec<Vec3> {
        match limb {
            Limb::RightHand => self.arm_markers(a, pelvis),
            Limb::RightLeg => self.leg_markers(a, pelvis),
            Limb::WholeBody => {
                let mut m = self.arm_markers(a, pelvis);
                m.extend(self.leg_markers(a, pelvis));
                m
            }
        }
    }

    fn arm_markers(&self, a: &LimbAngles, pelvis: Vec3) -> Vec<Vec3> {
        let anth = &self.anthro;
        let shoulder = pelvis + anth.shoulder_offset;
        // Upper-arm direction: hangs down at rest, elevation raises it
        // forward (+Z), azimuth swings it about the vertical axis.
        let down = -Vec3::Y;
        let d_upper = down
            .rotate_about(Vec3::X, -a.shoulder_elevation)
            .rotate_about(Vec3::Y, a.shoulder_azimuth);
        let elbow = shoulder + d_upper * anth.upper_arm_mm;
        // Elbow flexion happens about the (azimuth-rotated) lateral axis.
        let flex_axis = Vec3::X.rotate_about(Vec3::Y, a.shoulder_azimuth);
        let d_fore = d_upper.rotate_about(flex_axis, -a.elbow_flexion);
        let wrist = elbow + d_fore * anth.forearm_mm;
        let hand = wrist + d_fore * anth.hand_mm;
        // The clavicle marker rides the shoulder girdle: mostly static
        // relative to the pelvis with a small elevation coupling (shrug).
        let clavicle =
            pelvis + anth.clavicle_marker_offset + Vec3::Y * (12.0 * a.shoulder_elevation.sin());
        // Segment order: clavicle, humerus (elbow), radius (wrist), hand.
        vec![clavicle, elbow, wrist, hand]
    }

    fn leg_markers(&self, a: &LimbAngles, pelvis: Vec3) -> Vec<Vec3> {
        let anth = &self.anthro;
        let hip = pelvis + anth.hip_offset;
        let down = -Vec3::Y;
        // Hip flexion raises the thigh forward.
        let d_thigh = down.rotate_about(Vec3::X, -a.hip_flexion);
        let knee = hip + d_thigh * anth.thigh_mm;
        // Knee flexion folds the shank backwards relative to the thigh.
        let d_shank = d_thigh.rotate_about(Vec3::X, a.knee_flexion);
        let ankle = knee + d_shank * anth.shank_mm;
        // Foot: perpendicular to the shank; dorsiflexion lifts the toes.
        let d_foot = d_shank.rotate_about(Vec3::X, FRAC_PI_2 + a.ankle_flexion);
        let toe = ankle + d_foot * anth.foot_mm;
        let foot = ankle + d_foot * (anth.foot_mm * 0.45) + Vec3::new(0.0, -20.0, 0.0);
        // Segment order: tibia (ankle), foot (mid-foot), toe.
        vec![ankle, foot, toe]
    }
}

/// Per-marker measurement noise of the optical system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MocapNoise {
    /// Gaussian jitter per coordinate, mm (Vicon-class systems: ~0.3–1 mm).
    pub jitter_mm: f64,
    /// Std of slow postural sway added to the pelvis, mm.
    pub sway_mm: f64,
    /// Probability per frame that a marker drops out (occlusion). Real
    /// pipelines gap-fill these; the renderer does the same with linear
    /// interpolation across the gap.
    #[serde(default)]
    pub dropout_rate: f64,
    /// Mean occlusion length in frames once a dropout starts.
    #[serde(default = "default_dropout_frames")]
    pub dropout_mean_frames: f64,
}

fn default_dropout_frames() -> f64 {
    6.0
}

impl MocapNoise {
    /// Typical lab-quality noise.
    pub fn lab() -> Self {
        Self {
            jitter_mm: 0.6,
            sway_mm: 8.0,
            dropout_rate: 0.0,
            dropout_mean_frames: 6.0,
        }
    }

    /// Lab-quality noise plus occasional marker occlusions.
    pub fn lab_with_dropouts(rate: f64) -> Self {
        Self {
            dropout_rate: rate,
            ..Self::lab()
        }
    }

    /// Perfectly clean capture (for unit-testing geometry).
    pub fn none() -> Self {
        Self {
            jitter_mm: 0.0,
            sway_mm: 0.0,
            dropout_rate: 0.0,
            dropout_mean_frames: 6.0,
        }
    }
}

/// Output of rendering a trial's motion capture: the joint matrix plus the
/// per-frame pelvis trajectory (needed later for the local transform).
#[derive(Debug, Clone)]
pub struct MocapRender {
    /// Joint matrix, `frames × (3 × segments)` — 3 columns per segment in
    /// [`Limb::segments`] order (the paper's "motion matrix", Sec. 1).
    pub joint_matrix: Matrix,
    /// Global pelvis position per frame.
    pub pelvis: Vec<Vec3>,
}

/// Renders the global marker trajectories for one trial.
pub fn render_mocap<R: Rng>(
    limb: Limb,
    track: &AngleTrack,
    skeleton: &Skeleton,
    placement: &Placement,
    noise: &MocapNoise,
    rng: &mut R,
) -> MocapRender {
    let segments: &[Segment] = limb.segments();
    let n = track.frames.len();
    let mut joint_matrix = Matrix::zeros(n, segments.len() * 3);
    let mut pelvis_out = Vec::with_capacity(n);

    let base_pelvis = Vec3::new(0.0, skeleton.anthro.pelvis_height_mm, 0.0);
    let mut sway_x = SmoothNoise::new(0.02, noise.sway_mm);
    let mut sway_y = SmoothNoise::new(0.02, noise.sway_mm * 0.4);
    let mut sway_z = SmoothNoise::new(0.02, noise.sway_mm);

    for (i, angles) in track.frames.iter().enumerate() {
        let sway = Vec3::new(sway_x.step(rng), sway_y.step(rng), sway_z.step(rng));
        let pelvis_local = base_pelvis + sway;
        let markers = skeleton.marker_positions(limb, angles, pelvis_local);
        let pelvis_global = placement.apply(pelvis_local);
        pelvis_out.push(pelvis_global);
        let row = joint_matrix.row_mut(i);
        for (s, m) in markers.iter().enumerate() {
            let mut p = placement.apply(*m);
            if noise.jitter_mm > 0.0 {
                p = p + Vec3::new(
                    randn(rng) * noise.jitter_mm,
                    randn(rng) * noise.jitter_mm,
                    randn(rng) * noise.jitter_mm,
                );
            }
            row[s * 3] = p.x;
            row[s * 3 + 1] = p.y;
            row[s * 3 + 2] = p.z;
        }
    }

    if noise.dropout_rate > 0.0 {
        apply_dropouts(&mut joint_matrix, noise, rng);
    }

    MocapRender {
        joint_matrix,
        pelvis: pelvis_out,
    }
}

/// Simulates marker occlusions: random gaps per marker, gap-filled by
/// linear interpolation (what Vicon iQ's pipeline does before export).
fn apply_dropouts<R: Rng>(joint_matrix: &mut Matrix, noise: &MocapNoise, rng: &mut R) {
    let frames = joint_matrix.rows();
    let markers = joint_matrix.cols() / 3;
    if frames < 3 {
        return;
    }
    for m in 0..markers {
        let mut f = 1usize;
        while f < frames - 1 {
            if rng.random::<f64>() < noise.dropout_rate {
                // Geometric-ish gap length with the configured mean.
                let mut len = 1usize;
                let p_continue = 1.0 - 1.0 / noise.dropout_mean_frames.max(1.0);
                while rng.random::<f64>() < p_continue && f + len < frames - 1 {
                    len += 1;
                }
                let start = f - 1; // last valid frame before the gap
                let end = f + len; // first valid frame after the gap
                for c in 0..3 {
                    let col = m * 3 + c;
                    let a = joint_matrix[(start, col)];
                    let b = joint_matrix[(end, col)];
                    for (step, frame) in (f..f + len).enumerate() {
                        let t = (step + 1) as f64 / (len + 1) as f64;
                        joint_matrix[(frame, col)] = a * (1.0 - t) + b * t;
                    }
                }
                f += len + 1;
            } else {
                f += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limb::MotionClass;
    use crate::motion::{generate_angles, TrialStyle};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::PI;

    fn skeleton() -> Skeleton {
        Skeleton::new(Anthropometry::nominal())
    }

    fn rest_angles() -> LimbAngles {
        LimbAngles::default()
    }

    #[test]
    fn rest_pose_arm_hangs_down() {
        let sk = skeleton();
        let pelvis = Vec3::new(0.0, 1000.0, 0.0);
        let m = sk.marker_positions(Limb::RightHand, &rest_angles(), pelvis);
        let [_clav, elbow, wrist, hand] = [m[0], m[1], m[2], m[3]];
        // Elbow below the shoulder, wrist below the elbow.
        let shoulder = pelvis + sk.anthro.shoulder_offset;
        assert!(elbow.y < shoulder.y);
        assert!(wrist.y < elbow.y);
        assert!(hand.y < wrist.y + 1.0);
        // All on the participant's right side (x > 0).
        assert!(elbow.x > 0.0 && wrist.x > 0.0);
    }

    #[test]
    fn segment_lengths_are_preserved() {
        let sk = skeleton();
        let pelvis = Vec3::new(0.0, 1000.0, 0.0);
        // Try a few arbitrary poses; bone lengths must be invariant.
        for (e, az, f) in [(0.3, 0.2, 0.9), (1.4, -0.5, 0.1), (0.0, 0.0, 2.0)] {
            let a = LimbAngles {
                shoulder_elevation: e,
                shoulder_azimuth: az,
                elbow_flexion: f,
                ..Default::default()
            };
            let m = sk.marker_positions(Limb::RightHand, &a, pelvis);
            let shoulder = pelvis + sk.anthro.shoulder_offset;
            assert!((m[1].distance(shoulder) - sk.anthro.upper_arm_mm).abs() < 1e-9);
            assert!((m[2].distance(m[1]) - sk.anthro.forearm_mm).abs() < 1e-9);
            assert!((m[3].distance(m[2]) - sk.anthro.hand_mm).abs() < 1e-9);
        }
        for (h, k, an) in [(0.5, 0.8, 0.2), (0.0, 1.4, -0.4), (1.0, 0.0, 0.0)] {
            let a = LimbAngles {
                hip_flexion: h,
                knee_flexion: k,
                ankle_flexion: an,
                ..Default::default()
            };
            let m = sk.marker_positions(Limb::RightLeg, &a, pelvis);
            let hip = pelvis + sk.anthro.hip_offset;
            assert!(
                (m[0].distance(hip) - (sk.anthro.thigh_mm + sk.anthro.shank_mm)).abs() < 400.0,
                "ankle should be within leg reach of the hip"
            );
            assert!((m[2].distance(m[0]) - sk.anthro.foot_mm).abs() < 1e-9);
        }
    }

    #[test]
    fn raising_the_arm_raises_the_wrist() {
        let sk = skeleton();
        let pelvis = Vec3::new(0.0, 1000.0, 0.0);
        let raised = LimbAngles {
            shoulder_elevation: PI / 2.0,
            ..Default::default()
        };
        let rest = sk.marker_positions(Limb::RightHand, &rest_angles(), pelvis);
        let up = sk.marker_positions(Limb::RightHand, &raised, pelvis);
        assert!(up[2].y > rest[2].y + 200.0, "wrist must rise substantially");
        assert!(
            up[2].z > rest[2].z + 200.0,
            "forward elevation moves wrist forward"
        );
    }

    #[test]
    fn knee_flexion_moves_ankle_backward() {
        let sk = skeleton();
        let pelvis = Vec3::new(0.0, 1000.0, 0.0);
        let rest = sk.marker_positions(Limb::RightLeg, &rest_angles(), pelvis);
        let flexed = LimbAngles {
            knee_flexion: PI / 2.0,
            ..Default::default()
        };
        let f = sk.marker_positions(Limb::RightLeg, &flexed, pelvis);
        assert!(
            f[0].z < rest[0].z - 200.0,
            "ankle goes behind when knee flexes"
        );
        assert!(f[0].y > rest[0].y + 100.0, "ankle rises when knee flexes");
    }

    #[test]
    fn dorsiflexion_lifts_the_toe() {
        let sk = skeleton();
        let pelvis = Vec3::new(0.0, 1000.0, 0.0);
        let dorsi = LimbAngles {
            ankle_flexion: 0.4,
            ..Default::default()
        };
        let plantar = LimbAngles {
            ankle_flexion: -0.4,
            ..Default::default()
        };
        let up = sk.marker_positions(Limb::RightLeg, &dorsi, pelvis);
        let down = sk.marker_positions(Limb::RightLeg, &plantar, pelvis);
        assert!(up[2].y > down[2].y + 100.0);
    }

    #[test]
    fn placement_rotates_and_translates() {
        let p = Placement {
            offset: Vec3::new(100.0, 0.0, -50.0),
            facing_rad: PI / 2.0,
        };
        let v = p.apply(Vec3::Z * 10.0);
        // Facing +90° about Y sends +Z to +X.
        assert!((v - Vec3::new(110.0, 0.0, -50.0)).norm() < 1e-9);
        let id = Placement::identity();
        assert_eq!(id.apply(Vec3::new(1.0, 2.0, 3.0)), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn placement_sampling_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let p = Placement::sample(&mut rng, 2000.0, 0.4);
            assert!(p.offset.x.abs() <= 2000.0);
            assert!(p.offset.z.abs() <= 2000.0);
            assert_eq!(p.offset.y, 0.0);
            assert!(p.facing_rad.abs() <= 0.4);
        }
    }

    #[test]
    fn render_shapes_match_limb() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sk = skeleton();
        let track = generate_angles(
            MotionClass::RaiseArm,
            &TrialStyle::nominal(),
            120.0,
            &mut rng,
        );
        let r = render_mocap(
            Limb::RightHand,
            &track,
            &sk,
            &Placement::identity(),
            &MocapNoise::lab(),
            &mut rng,
        );
        assert_eq!(r.joint_matrix.rows(), track.frames.len());
        assert_eq!(r.joint_matrix.cols(), 12);
        assert_eq!(r.pelvis.len(), track.frames.len());
        assert!(!r.joint_matrix.has_non_finite());
    }

    #[test]
    fn noiseless_render_is_deterministic_geometry() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sk = skeleton();
        let track = generate_angles(MotionClass::Squat, &TrialStyle::nominal(), 120.0, &mut rng);
        let r1 = render_mocap(
            Limb::RightLeg,
            &track,
            &sk,
            &Placement::identity(),
            &MocapNoise::none(),
            &mut ChaCha8Rng::seed_from_u64(7),
        );
        let r2 = render_mocap(
            Limb::RightLeg,
            &track,
            &sk,
            &Placement::identity(),
            &MocapNoise::none(),
            &mut ChaCha8Rng::seed_from_u64(99),
        );
        assert!(r1.joint_matrix.approx_eq(&r2.joint_matrix, 0.0));
    }

    #[test]
    fn dropouts_are_gap_filled_smoothly() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sk = skeleton();
        let track = generate_angles(
            MotionClass::WaveHand,
            &TrialStyle::nominal(),
            120.0,
            &mut rng,
        );
        let clean = render_mocap(
            Limb::RightHand,
            &track,
            &sk,
            &Placement::identity(),
            &MocapNoise::none(),
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        let noisy = render_mocap(
            Limb::RightHand,
            &track,
            &sk,
            &Placement::identity(),
            &MocapNoise {
                jitter_mm: 0.0,
                sway_mm: 0.0,
                dropout_rate: 0.02,
                dropout_mean_frames: 5.0,
            },
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        // Dropouts change some frames...
        assert!(!noisy.joint_matrix.approx_eq(&clean.joint_matrix, 1e-9));
        // ...but interpolation keeps values finite and close to truth
        // (bounded by the marker's local excursion over the short gap).
        assert!(!noisy.joint_matrix.has_non_finite());
        let mut max_err = 0.0f64;
        for f in 0..clean.joint_matrix.rows() {
            for c in 0..clean.joint_matrix.cols() {
                max_err =
                    max_err.max((noisy.joint_matrix[(f, c)] - clean.joint_matrix[(f, c)]).abs());
            }
        }
        assert!(max_err < 150.0, "gap-fill error {max_err} mm too large");
        assert!(max_err > 0.0);
    }

    #[test]
    fn placement_offset_shifts_all_markers() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sk = skeleton();
        let track = generate_angles(MotionClass::Punch, &TrialStyle::nominal(), 120.0, &mut rng);
        let off = Placement {
            offset: Vec3::new(500.0, 0.0, 0.0),
            facing_rad: 0.0,
        };
        let a = render_mocap(
            Limb::RightHand,
            &track,
            &sk,
            &Placement::identity(),
            &MocapNoise::none(),
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        let b = render_mocap(
            Limb::RightHand,
            &track,
            &sk,
            &off,
            &MocapNoise::none(),
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        for i in 0..a.joint_matrix.rows() {
            for c in (0..12).step_by(3) {
                assert!((b.joint_matrix[(i, c)] - a.joint_matrix[(i, c)] - 500.0).abs() < 1e-9);
            }
        }
        // Pelvis-relative positions are placement-invariant (x component).
        for i in 0..a.pelvis.len() {
            assert!((b.pelvis[i].x - a.pelvis[i].x - 500.0).abs() < 1e-9);
        }
    }
}
