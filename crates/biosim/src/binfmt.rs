//! Compact binary dataset format.
//!
//! A full-size test bed serialized as JSON runs to tens of MiB because
//! every f64 is printed as text. This module provides a little-endian
//! binary container (~2.5× smaller, ~10× faster to parse) for archiving
//! generated datasets: a magic/version header, the generating spec as a
//! length-prefixed JSON blob (so the format never chases spec evolution),
//! then tightly packed records.

use crate::dataset::{Dataset, DatasetSpec, MotionRecord};
use crate::error::{BiosimError, Result};
use crate::limb::MotionClass;
use crate::vec3::Vec3;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use kinemyo_linalg::Matrix;
use std::path::Path;

/// File magic: "KMYO".
const MAGIC: u32 = 0x4B4D_594F;
/// Current format version.
const VERSION: u16 = 1;

/// Stable wire code for each motion class, shared by every kinemyo
/// on-disk format (dataset files here, store entry metadata upstream).
pub fn class_code(class: MotionClass) -> u8 {
    match class {
        MotionClass::RaiseArm => 0,
        MotionClass::ThrowBall => 1,
        MotionClass::WaveHand => 2,
        MotionClass::Punch => 3,
        MotionClass::DrinkCup => 4,
        MotionClass::ArmCircle => 5,
        MotionClass::Walk => 6,
        MotionClass::Kick => 7,
        MotionClass::Squat => 8,
        MotionClass::StepUp => 9,
        MotionClass::ToeTap => 10,
        MotionClass::HeelRaise => 11,
    }
}

/// Inverse of [`class_code`]; `None` for codes no class maps to.
pub fn class_from_code(code: u8) -> Option<MotionClass> {
    Some(match code {
        0 => MotionClass::RaiseArm,
        1 => MotionClass::ThrowBall,
        2 => MotionClass::WaveHand,
        3 => MotionClass::Punch,
        4 => MotionClass::DrinkCup,
        5 => MotionClass::ArmCircle,
        6 => MotionClass::Walk,
        7 => MotionClass::Kick,
        8 => MotionClass::Squat,
        9 => MotionClass::StepUp,
        10 => MotionClass::ToeTap,
        11 => MotionClass::HeelRaise,
        _ => return None,
    })
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &v in m.as_slice() {
        buf.put_f64_le(v);
    }
}

fn corrupt(reason: impl Into<String>) -> BiosimError {
    BiosimError::Serialization(reason.into())
}

fn take_matrix(buf: &mut Bytes) -> Result<Matrix> {
    if buf.remaining() < 8 {
        return Err(corrupt("truncated matrix header"));
    }
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| corrupt("matrix dimensions overflow"))?;
    if buf.remaining() < n * 8 {
        return Err(corrupt(format!(
            "truncated matrix body: need {} bytes, have {}",
            n * 8,
            buf.remaining()
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f64_le());
    }
    Matrix::from_vec(rows, cols, data).map_err(BiosimError::Linalg)
}

/// Encodes a dataset into a binary buffer.
pub fn encode(dataset: &Dataset) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    let spec_json = serde_json::to_vec(&dataset.spec)?;
    buf.put_u32_le(spec_json.len() as u32);
    buf.put_slice(&spec_json);
    buf.put_u32_le(dataset.records.len() as u32);
    for r in &dataset.records {
        buf.put_u64_le(r.id as u64);
        buf.put_u8(class_code(r.class));
        buf.put_u32_le(r.participant as u32);
        buf.put_u32_le(r.trial as u32);
        buf.put_f64_le(r.heading_rad);
        put_matrix(&mut buf, &r.mocap);
        put_matrix(&mut buf, &r.emg);
        buf.put_u32_le(r.pelvis.len() as u32);
        for p in &r.pelvis {
            buf.put_f64_le(p.x);
            buf.put_f64_le(p.y);
            buf.put_f64_le(p.z);
        }
    }
    Ok(buf.freeze())
}

/// Decodes a dataset from a binary buffer.
pub fn decode(mut buf: Bytes) -> Result<Dataset> {
    if buf.remaining() < 10 {
        return Err(corrupt("file too short for header"));
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic 0x{magic:08X}")));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} (expected {VERSION})"
        )));
    }
    let spec_len = buf.get_u32_le() as usize;
    if buf.remaining() < spec_len {
        return Err(corrupt("truncated spec blob"));
    }
    let spec_bytes = buf.copy_to_bytes(spec_len);
    let spec: DatasetSpec = serde_json::from_slice(&spec_bytes)?;
    if buf.remaining() < 4 {
        return Err(corrupt("missing record count"));
    }
    let count = buf.get_u32_le() as usize;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        if buf.remaining() < 8 + 1 + 4 + 4 + 8 {
            return Err(corrupt(format!("truncated record {i} header")));
        }
        let id = buf.get_u64_le() as usize;
        let class = class_from_code(buf.get_u8())
            .ok_or_else(|| corrupt(format!("record {i}: unknown class code")))?;
        let participant = buf.get_u32_le() as usize;
        let trial = buf.get_u32_le() as usize;
        let heading_rad = buf.get_f64_le();
        let mocap = take_matrix(&mut buf)?;
        let emg = take_matrix(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(corrupt(format!("record {i}: missing pelvis count")));
        }
        let n_pelvis = buf.get_u32_le() as usize;
        if buf.remaining() < n_pelvis * 24 {
            return Err(corrupt(format!("record {i}: truncated pelvis data")));
        }
        let mut pelvis = Vec::with_capacity(n_pelvis);
        for _ in 0..n_pelvis {
            pelvis.push(Vec3::new(
                buf.get_f64_le(),
                buf.get_f64_le(),
                buf.get_f64_le(),
            ));
        }
        records.push(MotionRecord {
            id,
            class,
            participant,
            trial,
            mocap,
            emg,
            pelvis,
            heading_rad,
        });
    }
    Ok(Dataset { spec, records })
}

impl Dataset {
    /// Saves the dataset in the compact binary format.
    pub fn save_binary(&self, path: &Path) -> Result<()> {
        let bytes = encode(self)?;
        std::fs::write(path, &bytes)?;
        Ok(())
    }

    /// Loads a dataset written by [`Dataset::save_binary`].
    pub fn load_binary(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        decode(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::limb::Limb;

    fn tiny() -> Dataset {
        Dataset::generate(DatasetSpec::hand_default().with_size(1, 1)).unwrap()
    }

    #[test]
    fn class_codes_roundtrip() {
        for limb in [Limb::RightHand, Limb::RightLeg] {
            for &c in MotionClass::all_for(limb) {
                assert_eq!(class_from_code(class_code(c)), Some(c));
            }
        }
        assert_eq!(class_from_code(200), None);
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let ds = tiny();
        let bytes = encode(&ds).unwrap();
        let back = decode(bytes).unwrap();
        assert_eq!(back.records.len(), ds.records.len());
        for (a, b) in ds.records.iter().zip(&back.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.class, b.class);
            assert_eq!(a.participant, b.participant);
            assert_eq!(a.trial, b.trial);
            assert_eq!(a.heading_rad, b.heading_rad);
            assert!(a.mocap.approx_eq(&b.mocap, 0.0));
            assert!(a.emg.approx_eq(&b.emg, 0.0));
            assert_eq!(a.pelvis, b.pelvis);
        }
        assert_eq!(back.spec.limb, ds.spec.limb);
        assert_eq!(back.spec.seed, ds.spec.seed);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let ds = tiny();
        let bin = encode(&ds).unwrap().len();
        let json = serde_json::to_string(&ds).unwrap().len();
        assert!(
            bin * 2 < json,
            "binary {bin} bytes should be well under half of JSON {json}"
        );
    }

    #[test]
    fn file_roundtrip() {
        let ds = tiny();
        let path = std::env::temp_dir().join("kinemyo_binfmt_test.kmyo");
        ds.save_binary(&path).unwrap();
        let back = Dataset::load_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), ds.len());
        assert!(back.records[0].emg.approx_eq(&ds.records[0].emg, 0.0));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let ds = tiny();
        let good = encode(&ds).unwrap();
        let mut bad_magic = good.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(decode(Bytes::from(bad_magic)).is_err());
        let mut bad_version = good.to_vec();
        bad_version[4] = 0xFF;
        assert!(decode(Bytes::from(bad_version)).is_err());
        assert!(decode(Bytes::from_static(b"tiny")).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let ds = tiny();
        let good = encode(&ds).unwrap();
        // Truncate at a sweep of offsets: must error, never panic.
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let cut = (good.len() as f64 * frac) as usize;
            let trunc = good.slice(..cut);
            assert!(decode(trunc).is_err(), "truncation at {cut} must fail");
        }
    }
}
