//! Parametric joint-angle trajectory generators for each motion class.
//!
//! Every motion class is a family of smooth joint-angle profiles with
//! per-trial randomized amplitude, speed, phase and tremor — this is what
//! creates realistic *intra-class* variation (the paper: "semantically
//! similar motions such as walking can have large variations").

use crate::limb::MotionClass;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Joint angles of one frame (radians). A single struct covers both limbs;
/// the irrelevant limb's fields stay zero.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LimbAngles {
    /// Shoulder elevation: 0 = arm hanging down, π/2 = horizontal forward.
    pub shoulder_elevation: f64,
    /// Shoulder azimuth about the vertical axis (positive = outward).
    pub shoulder_azimuth: f64,
    /// Elbow flexion: 0 = straight, π/2 = right angle.
    pub elbow_flexion: f64,
    /// Grip effort in `[0, 1]` (drives forearm muscle activity, not FK).
    pub grip: f64,
    /// Hip flexion: 0 = standing, positive = thigh raised forward.
    pub hip_flexion: f64,
    /// Knee flexion: 0 = straight, positive = heel toward buttocks.
    pub knee_flexion: f64,
    /// Ankle angle: positive = dorsiflexion (toes up), negative = plantar.
    pub ankle_flexion: f64,
}

/// A joint-angle trajectory sampled at `fs` Hz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AngleTrack {
    /// Sample rate, Hz (the motion-capture rate, 120 Hz).
    pub fs: f64,
    /// Per-frame joint angles.
    pub frames: Vec<LimbAngles>,
}

impl AngleTrack {
    /// Duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.frames.len() as f64 / self.fs
    }

    /// Finite-difference angular velocities (rad/s); same length as
    /// `frames` (first entry repeats the second to keep alignment).
    pub fn velocities(&self) -> Vec<LimbAngles> {
        let n = self.frames.len();
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let dt = 1.0 / self.fs;
        for i in 0..n {
            let (a, b) = if i == 0 {
                (self.frames[0], self.frames[1.min(n - 1)])
            } else {
                (self.frames[i - 1], self.frames[i])
            };
            out.push(LimbAngles {
                shoulder_elevation: (b.shoulder_elevation - a.shoulder_elevation) / dt,
                shoulder_azimuth: (b.shoulder_azimuth - a.shoulder_azimuth) / dt,
                elbow_flexion: (b.elbow_flexion - a.elbow_flexion) / dt,
                grip: (b.grip - a.grip) / dt,
                hip_flexion: (b.hip_flexion - a.hip_flexion) / dt,
                knee_flexion: (b.knee_flexion - a.knee_flexion) / dt,
                ankle_flexion: (b.ankle_flexion - a.ankle_flexion) / dt,
            });
        }
        out
    }
}

/// Per-trial style parameters: the randomized "way" a participant performs
/// the motion this time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialStyle {
    /// Amplitude multiplier (how big the motion is), ~0.85–1.15.
    pub amplitude: f64,
    /// Speed multiplier (inverse duration scale), ~0.85–1.15.
    pub speed: f64,
    /// Phase offset for oscillatory classes, radians.
    pub phase: f64,
    /// Tremor intensity multiplier, ~0.5–1.5.
    pub tremor: f64,
    /// Normalized-time shift of the whole profile, ~±0.06 (people start
    /// earlier or later within the capture window).
    pub shift: f64,
    /// Nonlinear time-warp exponent, ~0.85–1.18 (the paper: two similar
    /// motions need not share local speed).
    pub warp: f64,
}

impl TrialStyle {
    /// Samples a natural style variation.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        Self {
            amplitude: 1.0 + (rng.random::<f64>() - 0.5) * 0.3,
            speed: 1.0 + (rng.random::<f64>() - 0.5) * 0.3,
            phase: rng.random::<f64>() * 2.0 * PI,
            tremor: 0.5 + rng.random::<f64>(),
            shift: (rng.random::<f64>() - 0.5) * 0.12,
            warp: 0.85 + rng.random::<f64>() * 0.33,
        }
    }

    /// The exact nominal style (useful for deterministic fixtures).
    pub fn nominal() -> Self {
        Self {
            amplitude: 1.0,
            speed: 1.0,
            phase: 0.0,
            tremor: 1.0,
            shift: 0.0,
            warp: 1.0,
        }
    }
}

/// Degrees to radians.
#[inline]
fn deg(d: f64) -> f64 {
    d * PI / 180.0
}

/// Cubic smoothstep clamped to `[0, 1]`.
fn smoothstep(x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    x * x * (3.0 - 2.0 * x)
}

/// Smooth pulse: rises around `t0`, falls around `t1`, transition width `w`.
fn pulse(s: f64, t0: f64, t1: f64, w: f64) -> f64 {
    smoothstep((s - t0) / w) * (1.0 - smoothstep((s - t1) / w))
}

/// Base duration (seconds) of one performance of `class` at nominal speed.
///
/// Durations match the paper's trials (Fig. 2 shows ≈1200 frames at
/// 120 Hz, i.e. ≈10 s per instructed performance): deliberate motions
/// with rest margins before and after. Ballistic classes keep their fast
/// strike segments (narrow normalized transition widths) inside the
/// longer trial.
pub fn base_duration_s(class: MotionClass) -> f64 {
    match class {
        MotionClass::RaiseArm => 8.0,
        MotionClass::ThrowBall => 5.0,
        MotionClass::WaveHand => 9.0,
        MotionClass::Punch => 5.0,
        MotionClass::DrinkCup => 9.0,
        MotionClass::ArmCircle => 9.0,
        MotionClass::Walk => 10.0,
        MotionClass::Kick => 6.0,
        MotionClass::Squat => 9.0,
        MotionClass::StepUp => 8.0,
        MotionClass::ToeTap => 8.0,
        MotionClass::HeelRaise => 8.0,
    }
}

/// Generates the joint-angle trajectory for one trial of `class`.
///
/// `fs` is the motion-capture frame rate (120 Hz in the paper). Tremor is a
/// smoothed random walk added to each active degree of freedom.
pub fn generate_angles<R: Rng>(
    class: MotionClass,
    style: &TrialStyle,
    fs: f64,
    rng: &mut R,
) -> AngleTrack {
    let duration = base_duration_s(class) / style.speed;
    let n = (duration * fs).round().max(2.0) as usize;
    let amp = style.amplitude;
    let mut frames = Vec::with_capacity(n);

    // Smoothed tremor state per DOF (one-pole filtered white noise).
    let mut tremor_state = [0.0f64; 7];
    let tremor_sigma = deg(1.2) * style.tremor;
    let alpha = 0.08;

    // Per-DOF amplitude jitter: trial-to-trial variation in how much each
    // joint contributes (e.g. squatting more from the knees this time).
    // Distal-limb motions vary more, which is what makes the leg classes
    // genuinely confusable from below-knee markers alone.
    let dof_spread = if class.limb() == crate::limb::Limb::RightLeg {
        0.55
    } else {
        0.15
    };
    let dof_jitter: [f64; 7] =
        std::array::from_fn(|_| 1.0 + (rng.random::<f64>() - 0.5) * dof_spread);

    for i in 0..n {
        let t = i as f64 / fs;
        // Leg motions get a wider amplitude spread: below-knee markers see
        // less of the body, so natural performance variation dominates
        // more of what the sensors record.
        let leg_amp = 1.0 + (amp - 1.0) * 2.2;
        // Normalized time with per-trial nonlinear warp and shift: two
        // performances of the same motion differ in when each sub-movement
        // happens, not just in amplitude.
        let s_raw = i as f64 / (n - 1) as f64;
        let s = (s_raw.powf(style.warp) + style.shift).clamp(0.0, 1.0);
        let mut a = LimbAngles::default();

        match class {
            MotionClass::RaiseArm => {
                a.shoulder_elevation = deg(150.0) * amp * pulse(s, 0.15, 0.70, 0.10);
                a.elbow_flexion = deg(15.0) * pulse(s, 0.15, 0.70, 0.10);
                a.grip = 0.08;
            }
            MotionClass::ThrowBall => {
                // Wind-up: arm back and elbow cocked; release: fast forward.
                let windup = pulse(s, 0.15, 0.42, 0.06);
                let throw = smoothstep((s - 0.45) / 0.045);
                let follow = 1.0 - smoothstep((s - 0.72) / 0.12);
                a.shoulder_azimuth = deg(-45.0) * amp * windup + deg(35.0) * amp * throw * follow;
                a.shoulder_elevation = deg(70.0) * amp * pulse(s, 0.18, 0.75, 0.08);
                a.elbow_flexion =
                    deg(100.0) * amp * windup * (1.0 - throw) + deg(15.0) * throw * follow;
                a.grip = 0.8 * pulse(s, 0.08, 0.50, 0.05);
            }
            MotionClass::WaveHand => {
                let hold = pulse(s, 0.10, 0.90, 0.07);
                let f_wave = 1.4 * style.speed;
                let osc = (2.0 * PI * f_wave * t + style.phase).sin();
                a.shoulder_elevation = deg(125.0) * amp * hold;
                a.shoulder_azimuth = deg(22.0) * amp * hold * osc;
                a.elbow_flexion = deg(40.0) * hold + deg(18.0) * hold * osc;
                a.grip = 0.1;
            }
            MotionClass::Punch => {
                let guard = 1.0 - smoothstep((s - 0.36) / 0.05);
                let strike = pulse(s, 0.40, 0.60, 0.035);
                a.elbow_flexion = deg(95.0) * guard + deg(8.0) * strike;
                a.shoulder_elevation = deg(62.0) * amp * pulse(s, 0.10, 0.82, 0.08);
                a.shoulder_azimuth = deg(10.0) * strike;
                a.grip = 0.85 * pulse(s, 0.06, 0.86, 0.06);
            }
            MotionClass::DrinkCup => {
                // Deliberately slow transitions: drinking is the smooth,
                // low-velocity contrast to the ballistic throw/punch.
                a.elbow_flexion = deg(135.0) * amp * pulse(s, 0.12, 0.62, 0.18);
                a.shoulder_elevation = deg(28.0) * pulse(s, 0.12, 0.62, 0.18);
                a.grip = 0.55 * pulse(s, 0.05, 0.92, 0.06);
            }
            MotionClass::ArmCircle => {
                let f_c = 0.8 * style.speed;
                let ph = 2.0 * PI * f_c * t + style.phase;
                let engaged = pulse(s, 0.06, 0.94, 0.06);
                a.shoulder_elevation = (deg(85.0) + deg(20.0) * amp * ph.sin()) * engaged;
                a.shoulder_azimuth = deg(28.0) * amp * ph.cos() * engaged;
                a.elbow_flexion = deg(25.0) * engaged;
                a.grip = 0.15;
            }
            MotionClass::Walk => {
                let f_g = 0.95 * style.speed;
                let ph = 2.0 * PI * f_g * t + style.phase;
                let engaged = pulse(s, 0.04, 0.96, 0.05);
                let amp = leg_amp;
                a.hip_flexion = deg(26.0) * amp * ph.sin() * engaged;
                // Knee flexes strongly during swing (when hip swings forward).
                let swing = (ph + 0.9).sin().max(0.0);
                a.knee_flexion = deg(42.0) * amp * swing * swing * engaged;
                a.ankle_flexion = deg(12.0) * (ph + PI / 2.0).sin() * engaged;
            }
            MotionClass::Kick => {
                // Wind-up shares the squat's hip+knee co-flexion signature;
                // only the ballistic strike separates them.
                let amp = leg_amp;
                let windup = pulse(s, 0.20, 0.44, 0.05);
                let strike = pulse(s, 0.47, 0.64, 0.028);
                a.knee_flexion = deg(85.0) * amp * windup + deg(6.0) * strike;
                a.hip_flexion = deg(30.0) * amp * windup + deg(55.0) * amp * strike;
                a.ankle_flexion = deg(8.0) * windup - deg(14.0) * strike; // plantar at impact
            }
            MotionClass::Squat => {
                let amp = leg_amp;
                let down = pulse(s, 0.18, 0.62, 0.12);
                a.knee_flexion = deg(92.0) * amp * down;
                a.hip_flexion = deg(78.0) * amp * down;
                a.ankle_flexion = deg(16.0) * down; // dorsiflexion
            }
            MotionClass::StepUp => {
                // Deliberately close to the squat (hip+knee co-flexion of
                // similar magnitude); differs mainly in the asymmetric
                // lift-then-push timing and the plantar push-off.
                let amp = leg_amp;
                let lift = pulse(s, 0.15, 0.42, 0.08);
                let push = pulse(s, 0.46, 0.72, 0.08);
                a.hip_flexion = deg(70.0) * amp * lift + deg(8.0) * push;
                a.knee_flexion = deg(84.0) * amp * lift + deg(5.0) * push;
                a.ankle_flexion = deg(12.0) * lift - deg(18.0) * push; // push-off
            }
            MotionClass::ToeTap => {
                // Knee bounce in phase with the taps overlaps the walking
                // pattern seen from below-knee markers.
                let amp = leg_amp;
                let f_t = 2.0 * style.speed;
                let engaged = pulse(s, 0.06, 0.94, 0.05);
                let osc = (2.0 * PI * f_t * t + style.phase).sin().max(0.0);
                a.ankle_flexion = deg(22.0) * amp * osc * engaged;
                a.knee_flexion = (deg(6.0) + deg(14.0) * osc) * engaged;
                a.hip_flexion = deg(5.0) * osc * engaged;
            }
            MotionClass::HeelRaise => {
                let amp = leg_amp;
                let hold = pulse(s, 0.18, 0.72, 0.10);
                a.ankle_flexion = -deg(26.0) * amp * hold;
                a.knee_flexion = deg(8.0) * hold;
                a.hip_flexion = deg(6.0) * hold; // slight balance lean
            }
        }

        // Tremor: smoothed white noise on every DOF that is in use.
        let fields: [&mut f64; 7] = [
            &mut a.shoulder_elevation,
            &mut a.shoulder_azimuth,
            &mut a.elbow_flexion,
            &mut a.grip,
            &mut a.hip_flexion,
            &mut a.knee_flexion,
            &mut a.ankle_flexion,
        ];
        for (state, field) in tremor_state.iter_mut().zip(fields) {
            let white: f64 = rng.random::<f64>() - 0.5;
            *state += alpha * (white * tremor_sigma * 6.0 - *state);
            if field.abs() > 1e-12 || *state != 0.0 {
                *field += *state;
            }
        }
        a.shoulder_elevation *= dof_jitter[0];
        a.shoulder_azimuth *= dof_jitter[1];
        a.elbow_flexion *= dof_jitter[2];
        a.hip_flexion *= dof_jitter[4];
        a.knee_flexion *= dof_jitter[5];
        a.ankle_flexion *= dof_jitter[6];
        // Physical joint limits (no human shoulder elevates past ~175°,
        // no knee hyperextends) — also keeps extreme style samples sane.
        a.shoulder_elevation = a.shoulder_elevation.clamp(deg(-30.0), deg(175.0));
        a.shoulder_azimuth = a.shoulder_azimuth.clamp(deg(-90.0), deg(90.0));
        a.elbow_flexion = a.elbow_flexion.clamp(deg(-5.0), deg(150.0));
        a.hip_flexion = a.hip_flexion.clamp(deg(-30.0), deg(120.0));
        a.knee_flexion = a.knee_flexion.clamp(deg(-5.0), deg(140.0));
        a.ankle_flexion = a.ankle_flexion.clamp(deg(-50.0), deg(35.0));
        // Grip is an effort in [0,1].
        a.grip = a.grip.clamp(0.0, 1.0);
        frames.push(a);
    }

    AngleTrack { fs, frames }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limb::Limb;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn track(class: MotionClass, seed: u64) -> AngleTrack {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let style = TrialStyle::sample(&mut rng);
        generate_angles(class, &style, 120.0, &mut rng)
    }

    #[test]
    fn durations_scale_with_speed() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let fast = TrialStyle {
            speed: 1.2,
            ..TrialStyle::nominal()
        };
        let slow = TrialStyle {
            speed: 0.8,
            ..TrialStyle::nominal()
        };
        let t_fast = generate_angles(MotionClass::RaiseArm, &fast, 120.0, &mut rng);
        let t_slow = generate_angles(MotionClass::RaiseArm, &slow, 120.0, &mut rng);
        assert!(t_slow.frames.len() > t_fast.frames.len());
        assert!((t_fast.duration_s() - 8.0 / 1.2).abs() < 0.02);
    }

    #[test]
    fn raise_arm_raises_the_arm() {
        let t = track(MotionClass::RaiseArm, 1);
        let peak = t
            .frames
            .iter()
            .map(|f| f.shoulder_elevation)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(peak > deg(100.0), "peak elevation {peak}");
        // Starts and ends near rest.
        assert!(t.frames[0].shoulder_elevation.abs() < deg(10.0));
        assert!(t.frames.last().unwrap().shoulder_elevation.abs() < deg(15.0));
    }

    #[test]
    fn squat_bends_the_knee_not_the_elbow() {
        let t = track(MotionClass::Squat, 2);
        let knee_peak = t.frames.iter().map(|f| f.knee_flexion).fold(0.0, f64::max);
        let elbow_peak = t
            .frames
            .iter()
            .map(|f| f.elbow_flexion.abs())
            .fold(0.0, f64::max);
        assert!(knee_peak > deg(60.0));
        assert!(elbow_peak < deg(6.0), "leg motion must not move the arm");
    }

    #[test]
    fn wave_hand_oscillates() {
        let t = track(MotionClass::WaveHand, 3);
        // Azimuth must cross zero several times mid-motion.
        let mid = &t.frames[t.frames.len() / 4..3 * t.frames.len() / 4];
        let crossings = mid
            .windows(2)
            .filter(|w| (w[0].shoulder_azimuth <= 0.0) != (w[1].shoulder_azimuth <= 0.0))
            .count();
        assert!(crossings >= 3, "only {crossings} azimuth crossings");
    }

    #[test]
    fn throw_has_fast_elbow_extension() {
        let t = track(MotionClass::ThrowBall, 4);
        let v = t.velocities();
        let min_elbow_vel = v
            .iter()
            .map(|f| f.elbow_flexion)
            .fold(f64::INFINITY, f64::min);
        // Rapid extension = strongly negative flexion velocity.
        assert!(
            min_elbow_vel < -3.0,
            "elbow extension velocity {min_elbow_vel}"
        );
        // Much faster than the drink-cup motion's extension.
        let td = track(MotionClass::DrinkCup, 4);
        let vd = td.velocities();
        let min_drink = vd
            .iter()
            .map(|f| f.elbow_flexion)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_elbow_vel < 2.0 * min_drink,
            "{min_elbow_vel} vs {min_drink}"
        );
    }

    #[test]
    fn heel_raise_is_plantar_flexion() {
        let t = track(MotionClass::HeelRaise, 5);
        let min_ankle = t
            .frames
            .iter()
            .map(|f| f.ankle_flexion)
            .fold(f64::INFINITY, f64::min);
        assert!(min_ankle < -deg(15.0));
        let max_ankle = t.frames.iter().map(|f| f.ankle_flexion).fold(0.0, f64::max);
        assert!(max_ankle < deg(8.0), "heel raise should not dorsiflex");
    }

    #[test]
    fn toe_tap_repeats() {
        let t = track(MotionClass::ToeTap, 6);
        let mid = &t.frames[t.frames.len() / 5..4 * t.frames.len() / 5];
        let taps = mid
            .windows(2)
            .filter(|w| w[0].ankle_flexion < deg(3.0) && w[1].ankle_flexion >= deg(3.0))
            .count();
        assert!(taps >= 3, "only {taps} taps");
    }

    #[test]
    fn all_classes_generate_finite_tracks() {
        for limb in [Limb::RightHand, Limb::RightLeg] {
            for &class in MotionClass::all_for(limb) {
                let t = track(class, 42);
                assert!(t.frames.len() > 100, "{class}: too short");
                for f in &t.frames {
                    for v in [
                        f.shoulder_elevation,
                        f.shoulder_azimuth,
                        f.elbow_flexion,
                        f.grip,
                        f.hip_flexion,
                        f.knee_flexion,
                        f.ankle_flexion,
                    ] {
                        assert!(v.is_finite());
                        assert!(v.abs() < PI, "angle out of plausible range: {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn trials_of_same_class_differ() {
        let t1 = track(MotionClass::Walk, 10);
        let t2 = track(MotionClass::Walk, 11);
        // Different seeds → different durations or angle values.
        let differs = t1.frames.len() != t2.frames.len()
            || t1
                .frames
                .iter()
                .zip(&t2.frames)
                .any(|(a, b)| (a.hip_flexion - b.hip_flexion).abs() > deg(1.0));
        assert!(differs, "intra-class variation missing");
    }

    #[test]
    fn velocities_match_finite_differences() {
        let t = track(MotionClass::Squat, 7);
        let v = t.velocities();
        assert_eq!(v.len(), t.frames.len());
        let i = t.frames.len() / 2;
        let expected = (t.frames[i].knee_flexion - t.frames[i - 1].knee_flexion) * t.fs;
        assert!((v[i].knee_flexion - expected).abs() < 1e-9);
    }

    #[test]
    fn style_sampling_is_bounded() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let s = TrialStyle::sample(&mut rng);
            assert!(s.amplitude > 0.8 && s.amplitude < 1.2);
            assert!(s.speed > 0.8 && s.speed < 1.2);
            assert!(s.tremor >= 0.5 && s.tremor <= 1.5);
            assert!(s.phase >= 0.0 && s.phase <= 2.0 * PI);
            assert!(s.shift.abs() <= 0.06 + 1e-12);
            assert!(s.warp >= 0.85 && s.warp <= 1.18);
        }
    }
}
