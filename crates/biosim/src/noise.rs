//! Noise primitives shared by the mocap and EMG synthesizers.

use rand::Rng;

/// Standard-normal sample via the Box–Muller transform.
pub fn randn<R: Rng>(rng: &mut R) -> f64 {
    // Avoid log(0) by offsetting into (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A one-pole smoothed Gaussian noise process (band-limited random walk).
///
/// Models slow physiological/instrumental drifts: electrode baseline
/// wander, postural sway, electrode-gain drift.
#[derive(Debug, Clone)]
pub struct SmoothNoise {
    state: f64,
    alpha: f64,
    sigma: f64,
}

impl SmoothNoise {
    /// `alpha ∈ (0, 1]` is the smoothing constant (smaller = slower);
    /// `sigma` scales the stationary standard deviation.
    pub fn new(alpha: f64, sigma: f64) -> Self {
        Self {
            state: 0.0,
            alpha: alpha.clamp(1e-6, 1.0),
            sigma,
        }
    }

    /// Advances the process one step and returns the new value.
    ///
    /// AR(1): `x ← ρ·x + σ·√(1−ρ²)·ε` with `ρ = 1 − alpha`, which keeps the
    /// stationary standard deviation equal to `sigma` for any `alpha`.
    pub fn step<R: Rng>(&mut self, rng: &mut R) -> f64 {
        let rho = 1.0 - self.alpha;
        let innov = self.sigma * (1.0 - rho * rho).max(0.0).sqrt();
        self.state = rho * self.state + innov * randn(rng);
        self.state
    }

    /// Current value without advancing.
    pub fn value(&self) -> f64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn randn_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn randn_is_finite() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(randn(&mut rng).is_finite());
        }
    }

    #[test]
    fn smooth_noise_is_smooth() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut slow = SmoothNoise::new(0.01, 1.0);
        let mut fast = SmoothNoise::new(0.5, 1.0);
        let slow_vals: Vec<f64> = (0..5000).map(|_| slow.step(&mut rng)).collect();
        let fast_vals: Vec<f64> = (0..5000).map(|_| fast.step(&mut rng)).collect();
        let roughness = |v: &[f64]| {
            v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (v.len() - 1) as f64
        };
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        // Normalized step size must be smaller for the slower process.
        assert!(
            roughness(&slow_vals) / rms(&slow_vals).max(1e-9)
                < roughness(&fast_vals) / rms(&fast_vals).max(1e-9)
        );
    }

    #[test]
    fn smooth_noise_bounded_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut p = SmoothNoise::new(0.05, 2.0);
        let vals: Vec<f64> = (0..20_000).map(|_| p.step(&mut rng)).collect();
        let rms = (vals.iter().map(|x| x * x).sum::<f64>() / vals.len() as f64).sqrt();
        // Stationary scale should be within a factor ~3 of sigma.
        assert!(rms > 0.3 && rms < 6.0, "rms {rms}");
        assert!((p.value()).is_finite());
    }
}
