//! # kinemyo-biosim
//!
//! Synthetic acquisition substrate for the `kinemyo` workspace: everything
//! the paper's laboratory produced — synchronized motion-capture and
//! surface-EMG recordings of human motions — generated in software.
//!
//! The paper (Sec. 5) used a 16-camera Vicon rig, a Delsys Myomonitor, and
//! a custom trigger circuit with live participants. This crate substitutes:
//!
//! * [`skeleton`] — pelvis-rooted forward kinematics rendering global 3-D
//!   marker trajectories at 120 Hz (with optical jitter and postural sway);
//! * [`motion`] — parametric joint-angle generators for 12 motion classes
//!   with per-trial randomized amplitude/speed/phase/tremor;
//! * [`muscle`] — kinematics-driven muscle excitation plus Hill-type
//!   activation dynamics;
//! * [`emg`] — activation-modulated stochastic interference patterns at
//!   1000 Hz with thermal noise, 60 Hz power-line pickup, baseline drift,
//!   electrode-gain variation and fatigue;
//! * [`acquisition`] — the trigger/synchronization module and the paper's
//!   conditioning chain (20–450 Hz band-pass → full-wave rectification →
//!   down-sampling to 120 Hz);
//! * [`dataset`] — the full test bed: participants × classes × trials,
//!   deterministic per seed, JSON-serializable;
//! * [`faults`] — seeded sensor-fault injection (dropped mocap frames, EMG
//!   dropout/saturation, NaN glitches, inter-stream desync) for testing the
//!   core crate's graceful-degradation layer;
//! * [`replay`] — seeded traffic-replay corpus: timestamped, interleaved
//!   mocap/EMG frame streams (multi-subject, with blended motion
//!   transitions) for driving the serve daemon's streaming sessions.
//!
//! See `DESIGN.md` §2 for why each substitution preserves the behaviour the
//! paper's evaluation depends on.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` is the NaN-rejecting validation idiom used throughout this
// workspace: `x <= 0.0` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod acquisition;
pub mod anthropometry;
pub mod binfmt;
pub mod dataset;
pub mod emg;
pub mod error;
pub mod faults;
pub mod limb;
pub mod motion;
pub mod muscle;
pub mod noise;
pub mod replay;
pub mod skeleton;
pub mod vec3;

pub use acquisition::AcquisitionConfig;
pub use binfmt::{class_code, class_from_code};
pub use dataset::{Dataset, DatasetSpec, MotionRecord};
pub use emg::EmgSynthConfig;
pub use error::{BiosimError, Result};
pub use faults::{inject_faults, FaultLog, FaultSpec};
pub use limb::{Limb, MotionClass, Muscle, Segment};
pub use replay::{generate_replay, ReplayFrame, ReplaySpec, SubjectStream};
pub use skeleton::{MocapNoise, Placement, Skeleton};
pub use vec3::Vec3;

#[cfg(test)]
mod proptests {
    use crate::limb::{Limb, MotionClass};
    use crate::motion::{generate_angles, TrialStyle};
    use crate::muscle::excitations;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn any_class() -> impl Strategy<Value = MotionClass> {
        prop_oneof![
            Just(MotionClass::RaiseArm),
            Just(MotionClass::ThrowBall),
            Just(MotionClass::WaveHand),
            Just(MotionClass::Punch),
            Just(MotionClass::DrinkCup),
            Just(MotionClass::ArmCircle),
            Just(MotionClass::Walk),
            Just(MotionClass::Kick),
            Just(MotionClass::Squat),
            Just(MotionClass::StepUp),
            Just(MotionClass::ToeTap),
            Just(MotionClass::HeelRaise),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn any_style_produces_finite_bounded_angles(
            class in any_class(),
            amplitude in 0.7..1.3f64,
            speed in 0.7..1.3f64,
            phase in 0.0..6.2f64,
            tremor in 0.0..2.0f64,
            shift in -0.08..0.08f64,
            warp in 0.8..1.25f64,
            seed in 0u64..1000,
        ) {
            let style = TrialStyle { amplitude, speed, phase, tremor, shift, warp };
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let track = generate_angles(class, &style, 120.0, &mut rng);
            prop_assert!(track.frames.len() >= 2);
            for f in &track.frames {
                for v in [f.shoulder_elevation, f.shoulder_azimuth, f.elbow_flexion,
                          f.hip_flexion, f.knee_flexion, f.ankle_flexion] {
                    prop_assert!(v.is_finite());
                    prop_assert!(v.abs() < std::f64::consts::PI);
                }
                prop_assert!((0.0..=1.0).contains(&f.grip));
            }
        }

        #[test]
        fn excitations_always_bounded(
            class in any_class(),
            seed in 0u64..500,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let style = TrialStyle::sample(&mut rng);
            let track = generate_angles(class, &style, 120.0, &mut rng);
            let limb: Limb = class.limb();
            let e = excitations(limb, &track);
            prop_assert_eq!(e.cols(), limb.emg_channels());
            for i in 0..e.rows() {
                for j in 0..e.cols() {
                    prop_assert!((0.0..=1.0).contains(&e[(i, j)]));
                }
            }
        }
    }
}
