//! Surface-EMG signal synthesis.
//!
//! Models the physics the Delsys Myomonitor measures: an activation-
//! modulated stochastic interference pattern occupying the 20–450 Hz
//! surface-EMG band, contaminated by exactly the nuisance effects the
//! paper lists (Sec. 7): thermal noise, power-line interference, baseline
//! drift, electrode-gain variation between trials, and fatigue-induced
//! spectral compression.

use crate::error::{BiosimError, Result};
use crate::noise::{randn, SmoothNoise};
use kinemyo_dsp::butterworth;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Parameters of the EMG synthesizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmgSynthConfig {
    /// EMG sampling rate, Hz (paper: 1000).
    pub fs: f64,
    /// Full-scale (maximum voluntary contraction) amplitude, volts.
    pub mvc_volts: f64,
    /// Thermal/electrode white-noise std relative to MVC.
    pub thermal_rel: f64,
    /// Power-line (60 Hz) amplitude relative to MVC (sampled up to this).
    pub powerline_rel: f64,
    /// Baseline-drift std relative to MVC.
    pub drift_rel: f64,
    /// Coefficient of variation of per-trial electrode gain (the paper:
    /// "change in electrode characteristics").
    pub gain_cv: f64,
    /// Fatigue amount in `[0, 1]`: fraction of carrier power that migrates
    /// to a low-frequency band by the end of the trial (median-frequency
    /// downshift).
    pub fatigue: f64,
}

impl EmgSynthConfig {
    /// Realistic defaults matching the paper's acquisition chain.
    pub fn realistic() -> Self {
        Self {
            fs: 1000.0,
            mvc_volts: 1.0e-3,
            thermal_rel: 0.015,
            powerline_rel: 0.02,
            drift_rel: 0.03,
            gain_cv: 0.25,
            fatigue: 0.0,
        }
    }

    /// Noise-free configuration (for testing the modulation path).
    pub fn clean() -> Self {
        Self {
            thermal_rel: 0.0,
            powerline_rel: 0.0,
            drift_rel: 0.0,
            gain_cv: 0.0,
            fatigue: 0.0,
            ..Self::realistic()
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.fs > 0.0) {
            return Err(BiosimError::InvalidConfig {
                reason: format!("EMG sample rate must be positive, got {}", self.fs),
            });
        }
        if !(self.mvc_volts > 0.0) {
            return Err(BiosimError::InvalidConfig {
                reason: "MVC amplitude must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.fatigue) {
            return Err(BiosimError::InvalidConfig {
                reason: format!("fatigue must be in [0,1], got {}", self.fatigue),
            });
        }
        Ok(())
    }
}

/// Generates a unit-RMS band-limited stochastic carrier: white Gaussian
/// noise shaped into the given band by a 2nd-order Butterworth band-pass.
fn carrier<R: Rng>(n: usize, fs: f64, f_lo: f64, f_hi: f64, rng: &mut R) -> Result<Vec<f64>> {
    let white: Vec<f64> = (0..n).map(|_| randn(rng)).collect();
    let mut bp = butterworth::bandpass(2, f_lo, f_hi, fs)?;
    let mut shaped = bp.process(&white);
    let rms = (shaped.iter().map(|v| v * v).sum::<f64>() / n.max(1) as f64).sqrt();
    if rms > 0.0 {
        for v in &mut shaped {
            *v /= rms;
        }
    }
    Ok(shaped)
}

/// Linear interpolation of a 120 Hz activation envelope up to the EMG rate.
fn upsample_activation(act: &[f64], from_fs: f64, to_fs: f64, n_out: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n_out);
    if act.is_empty() {
        return vec![0.0; n_out];
    }
    for i in 0..n_out {
        let t = i as f64 / to_fs;
        let pos = t * from_fs;
        let i0 = pos.floor() as usize;
        let frac = pos - i0 as f64;
        let a0 = act[i0.min(act.len() - 1)];
        let a1 = act[(i0 + 1).min(act.len() - 1)];
        out.push(a0 * (1.0 - frac) + a1 * frac);
    }
    out
}

/// Synthesizes one raw EMG channel at `cfg.fs` from a muscle-activation
/// envelope sampled at `act_fs` (the 120 Hz mocap rate).
///
/// `duration_s` controls the raw signal length (normally the motion
/// duration). Returns samples in volts.
pub fn synthesize_channel<R: Rng>(
    activation: &[f64],
    act_fs: f64,
    duration_s: f64,
    cfg: &EmgSynthConfig,
    rng: &mut R,
) -> Result<Vec<f64>> {
    cfg.validate()?;
    if !(act_fs > 0.0) {
        return Err(BiosimError::InvalidConfig {
            reason: format!("activation rate must be positive, got {act_fs}"),
        });
    }
    let n = (duration_s * cfg.fs).round().max(1.0) as usize;
    let act = upsample_activation(activation, act_fs, cfg.fs, n);

    // Fresh carrier noise per trial — two trials of the same motion never
    // share an interference pattern (the paper's non-stationarity).
    let main = carrier(n, cfg.fs, 30.0, 350.0, rng)?;
    let low = if cfg.fatigue > 0.0 {
        carrier(n, cfg.fs, 20.0, 120.0, rng)?
    } else {
        Vec::new()
    };

    // Per-trial gain: lognormal-ish via exp of a normal.
    let gain = (randn(rng) * cfg.gain_cv).exp();
    // Power-line interference with random amplitude and phase.
    let pl_amp = cfg.powerline_rel * cfg.mvc_volts * rng.random::<f64>();
    let pl_phase = rng.random::<f64>() * 2.0 * PI;
    // Slow baseline drift.
    let mut drift = SmoothNoise::new(2.0 / cfg.fs, cfg.drift_rel * cfg.mvc_volts);
    // Slow multiplicative amplitude wander (electrode contact), ±10 %.
    let mut amp_wander = SmoothNoise::new(1.0 / cfg.fs, 0.10);

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / cfg.fs;
        let progress = i as f64 / n.max(1) as f64;
        let fat_w = cfg.fatigue * progress;
        let carrier_sample = if fat_w > 0.0 {
            main[i] * (1.0 - fat_w) + low[i] * fat_w
        } else {
            main[i]
        };
        let local_gain = gain * (1.0 + amp_wander.step(rng));
        let muscle = cfg.mvc_volts * local_gain * act[i] * carrier_sample;
        let noise = cfg.thermal_rel * cfg.mvc_volts * randn(rng)
            + pl_amp * (2.0 * PI * 60.0 * t + pl_phase).sin()
            + drift.step(rng);
        out.push(muscle + noise);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo_dsp::fft::median_frequency;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn step_activation() -> Vec<f64> {
        // 120 Hz envelope: 1 s rest, 1 s full activation, 1 s rest.
        let mut a = vec![0.0; 120];
        a.extend(vec![1.0; 120]);
        a.extend(vec![0.0; 120]);
        a
    }

    fn seg_rms(x: &[f64], lo: usize, hi: usize) -> f64 {
        let seg = &x[lo..hi];
        (seg.iter().map(|v| v * v).sum::<f64>() / seg.len() as f64).sqrt()
    }

    #[test]
    fn amplitude_tracks_activation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = EmgSynthConfig::clean();
        let emg = synthesize_channel(&step_activation(), 120.0, 3.0, &cfg, &mut rng).unwrap();
        assert_eq!(emg.len(), 3000);
        let active = seg_rms(&emg, 1200, 1900);
        let rest = seg_rms(&emg, 100, 900);
        assert!(
            active > 20.0 * rest.max(1e-12),
            "active {active}, rest {rest}"
        );
        // Active RMS near MVC scale.
        assert!(active > 0.3e-3 && active < 3.0e-3, "active rms {active}");
    }

    #[test]
    fn spectrum_lives_in_the_emg_band() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg = EmgSynthConfig::clean();
        let act = vec![1.0; 360];
        let emg = synthesize_channel(&act, 120.0, 3.0, &cfg, &mut rng).unwrap();
        let mf = median_frequency(&emg, 1000.0).unwrap();
        assert!(
            (60.0..250.0).contains(&mf),
            "median frequency {mf} outside surface-EMG range"
        );
    }

    #[test]
    fn fatigue_shifts_median_frequency_down() {
        let act = vec![1.0; 600];
        let cfg_fresh = EmgSynthConfig::clean();
        let cfg_tired = EmgSynthConfig {
            fatigue: 0.8,
            ..EmgSynthConfig::clean()
        };
        let mut rng1 = ChaCha8Rng::seed_from_u64(3);
        let mut rng2 = ChaCha8Rng::seed_from_u64(3);
        let fresh = synthesize_channel(&act, 120.0, 5.0, &cfg_fresh, &mut rng1).unwrap();
        let tired = synthesize_channel(&act, 120.0, 5.0, &cfg_tired, &mut rng2).unwrap();
        // Compare the final second.
        let mf_fresh = median_frequency(&fresh[4000..], 1000.0).unwrap();
        let mf_tired = median_frequency(&tired[4000..], 1000.0).unwrap();
        assert!(
            mf_tired < mf_fresh - 10.0,
            "fatigued {mf_tired} vs fresh {mf_fresh}"
        );
    }

    #[test]
    fn trials_differ_given_different_rng_states() {
        let act = step_activation();
        let cfg = EmgSynthConfig::realistic();
        let a =
            synthesize_channel(&act, 120.0, 3.0, &cfg, &mut ChaCha8Rng::seed_from_u64(10)).unwrap();
        let b =
            synthesize_channel(&act, 120.0, 3.0, &cfg, &mut ChaCha8Rng::seed_from_u64(11)).unwrap();
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.0, "same-motion trials must have different EMG");
        // But the envelope correlates: both active in the middle.
        assert!(seg_rms(&a, 1300, 1800) > 3.0 * seg_rms(&a, 100, 600));
        assert!(seg_rms(&b, 1300, 1800) > 3.0 * seg_rms(&b, 100, 600));
    }

    #[test]
    fn deterministic_given_same_seed() {
        let act = step_activation();
        let cfg = EmgSynthConfig::realistic();
        let a =
            synthesize_channel(&act, 120.0, 3.0, &cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b =
            synthesize_channel(&act, 120.0, 3.0, &cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_floor_present_with_realistic_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cfg = EmgSynthConfig::realistic();
        let act = vec![0.0; 360]; // fully rested muscle
        let emg = synthesize_channel(&act, 120.0, 3.0, &cfg, &mut rng).unwrap();
        let rms = seg_rms(&emg, 0, emg.len());
        assert!(rms > 1e-6, "rest should still show noise, got {rms}");
        assert!(
            rms < 0.3e-3,
            "rest noise should be far below MVC, got {rms}"
        );
    }

    #[test]
    fn config_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut cfg = EmgSynthConfig::realistic();
        cfg.fs = 0.0;
        assert!(synthesize_channel(&[1.0], 120.0, 1.0, &cfg, &mut rng).is_err());
        let mut cfg = EmgSynthConfig::realistic();
        cfg.fatigue = 2.0;
        assert!(synthesize_channel(&[1.0], 120.0, 1.0, &cfg, &mut rng).is_err());
        let cfg = EmgSynthConfig::realistic();
        assert!(synthesize_channel(&[1.0], 0.0, 1.0, &cfg, &mut rng).is_err());
        let mut cfg = EmgSynthConfig::realistic();
        cfg.mvc_volts = -1.0;
        assert!(synthesize_channel(&[1.0], 120.0, 1.0, &cfg, &mut rng).is_err());
    }

    #[test]
    fn empty_activation_yields_noise_only() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let cfg = EmgSynthConfig::realistic();
        let emg = synthesize_channel(&[], 120.0, 1.0, &cfg, &mut rng).unwrap();
        assert_eq!(emg.len(), 1000);
        assert!(emg.iter().all(|v| v.is_finite()));
    }
}
