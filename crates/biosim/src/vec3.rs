//! Minimal 3-D vector math for skeletal forward kinematics.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// A 3-D vector (millimetres in the capture coordinate system, matching
/// the paper's motion-capture resolution).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (lateral, +X to the participant's right).
    pub x: f64,
    /// Y component (vertical, +Y up).
    pub y: f64,
    /// Z component (sagittal, +Z forward).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in the same direction; returns `Vec3::ZERO` for the zero
    /// vector (callers in the FK path guarantee non-zero bone vectors).
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self * (1.0 / n)
        }
    }

    /// Rotates `self` around unit `axis` by `angle` radians
    /// (Rodrigues' formula).
    pub fn rotate_about(self, axis: Vec3, angle: f64) -> Vec3 {
        let k = axis.normalized();
        let (s, c) = angle.sin_cos();
        self * c + k.cross(self) * s + k * (k.dot(self) * (1.0 - c))
    }

    /// Distance to another point.
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Returns the components as `[x, y, z]`.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        self * -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        let a = Vec3::new(1.0, 2.0, 3.0);
        assert!(a.cross(a).norm() < 1e-15);
    }

    #[test]
    fn norm_and_normalize() {
        let v = Vec3::new(3.0, 0.0, 4.0);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn rodrigues_rotation_quarter_turn() {
        let v = Vec3::X.rotate_about(Vec3::Z, FRAC_PI_2);
        assert!((v - Vec3::Y).norm() < 1e-12);
        let w = Vec3::X.rotate_about(Vec3::Y, FRAC_PI_2);
        assert!((w - (-Vec3::Z)).norm() < 1e-12);
    }

    #[test]
    fn rotation_preserves_length() {
        let v = Vec3::new(1.5, -2.0, 0.7);
        for angle in [0.1, 1.0, PI, 5.0] {
            let r = v.rotate_about(Vec3::new(1.0, 1.0, 1.0), angle);
            assert!((r.norm() - v.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn full_turn_is_identity() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let r = v.rotate_about(Vec3::Y, 2.0 * PI);
        assert!((r - v).norm() < 1e-12);
    }

    #[test]
    fn distance_symmetric() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 2.0, 2.0);
        assert!((a.distance(b) - 3.0).abs() < 1e-12);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn to_array_roundtrip() {
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).to_array(), [1.0, 2.0, 3.0]);
    }
}
