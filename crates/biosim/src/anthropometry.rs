//! Per-participant body dimensions.
//!
//! The paper's test bed has "different human motions performed by different
//! participants" (Sec. 5); body-size variation is one of the reasons
//! semantically identical motions differ geometrically. Dimensions are in
//! millimetres (the motion-capture resolution the paper notes).

use crate::vec3::Vec3;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Segment lengths and joint offsets for one participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anthropometry {
    /// Upper-arm (humerus) length, mm.
    pub upper_arm_mm: f64,
    /// Forearm (radius) length, mm.
    pub forearm_mm: f64,
    /// Hand length (wrist to knuckles), mm.
    pub hand_mm: f64,
    /// Thigh (femur) length, mm.
    pub thigh_mm: f64,
    /// Shank (tibia) length, mm.
    pub shank_mm: f64,
    /// Foot length (ankle to toe), mm.
    pub foot_mm: f64,
    /// Pelvis-marker height above the floor when standing, mm.
    pub pelvis_height_mm: f64,
    /// Right-shoulder joint offset from the pelvis marker, mm.
    pub shoulder_offset: Vec3,
    /// Right-hip joint offset from the pelvis marker, mm.
    pub hip_offset: Vec3,
    /// Clavicle-marker offset from the pelvis marker, mm.
    pub clavicle_marker_offset: Vec3,
}

impl Anthropometry {
    /// Population-average adult dimensions.
    pub fn nominal() -> Self {
        Self {
            upper_arm_mm: 310.0,
            forearm_mm: 260.0,
            hand_mm: 90.0,
            thigh_mm: 420.0,
            shank_mm: 410.0,
            foot_mm: 230.0,
            pelvis_height_mm: 1000.0,
            shoulder_offset: Vec3::new(180.0, 470.0, 0.0),
            hip_offset: Vec3::new(90.0, -60.0, 0.0),
            clavicle_marker_offset: Vec3::new(90.0, 450.0, 40.0),
        }
    }

    /// Samples a participant: every dimension scaled by a common stature
    /// factor (±8 %) plus small independent per-segment variation (±3 %).
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let nominal = Self::nominal();
        let stature = 1.0 + (rng.random::<f64>() - 0.5) * 0.16;
        let mut jitter = |v: f64| v * stature * (1.0 + (rng.random::<f64>() - 0.5) * 0.06);
        let upper_arm_mm = jitter(nominal.upper_arm_mm);
        let forearm_mm = jitter(nominal.forearm_mm);
        let hand_mm = jitter(nominal.hand_mm);
        let thigh_mm = jitter(nominal.thigh_mm);
        let shank_mm = jitter(nominal.shank_mm);
        let foot_mm = jitter(nominal.foot_mm);
        let pelvis_height_mm = jitter(nominal.pelvis_height_mm);
        Self {
            upper_arm_mm,
            forearm_mm,
            hand_mm,
            thigh_mm,
            shank_mm,
            foot_mm,
            pelvis_height_mm,
            shoulder_offset: nominal.shoulder_offset * stature,
            hip_offset: nominal.hip_offset * stature,
            clavicle_marker_offset: nominal.clavicle_marker_offset * stature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn nominal_is_humanlike() {
        let a = Anthropometry::nominal();
        assert!(a.upper_arm_mm > 200.0 && a.upper_arm_mm < 400.0);
        assert!(a.thigh_mm > a.foot_mm);
        assert!(a.shoulder_offset.y > 0.0, "shoulders are above the pelvis");
        assert!(a.hip_offset.y < 0.0, "hips are below the pelvis marker");
    }

    #[test]
    fn sampling_varies_but_stays_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut arms = Vec::new();
        for _ in 0..50 {
            let a = Anthropometry::sample(&mut rng);
            assert!(
                a.upper_arm_mm > 240.0 && a.upper_arm_mm < 390.0,
                "{}",
                a.upper_arm_mm
            );
            assert!(a.shank_mm > 300.0 && a.shank_mm < 520.0);
            arms.push(a.upper_arm_mm);
        }
        let min = arms.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = arms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 10.0, "sampling should vary ({min}..{max})");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a1 = Anthropometry::sample(&mut ChaCha8Rng::seed_from_u64(9));
        let a2 = Anthropometry::sample(&mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a1, a2);
    }
}
