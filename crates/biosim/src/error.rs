//! Error types for the acquisition simulator.

use std::fmt;

/// Errors produced by `kinemyo-biosim`.
#[derive(Debug)]
pub enum BiosimError {
    /// A simulation parameter was invalid.
    InvalidConfig {
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A downstream DSP stage failed.
    Dsp(kinemyo_dsp::DspError),
    /// A downstream linear-algebra operation failed.
    Linalg(kinemyo_linalg::LinalgError),
    /// Dataset (de)serialization failed.
    Serialization(String),
    /// Filesystem I/O failed while saving/loading a dataset.
    Io(std::io::Error),
}

impl fmt::Display for BiosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BiosimError::InvalidConfig { reason } => {
                write!(f, "invalid simulation config: {reason}")
            }
            BiosimError::Dsp(e) => write!(f, "dsp error: {e}"),
            BiosimError::Linalg(e) => write!(f, "linalg error: {e}"),
            BiosimError::Serialization(e) => write!(f, "serialization error: {e}"),
            BiosimError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for BiosimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BiosimError::Dsp(e) => Some(e),
            BiosimError::Linalg(e) => Some(e),
            BiosimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kinemyo_dsp::DspError> for BiosimError {
    fn from(e: kinemyo_dsp::DspError) -> Self {
        BiosimError::Dsp(e)
    }
}

impl From<kinemyo_linalg::LinalgError> for BiosimError {
    fn from(e: kinemyo_linalg::LinalgError) -> Self {
        BiosimError::Linalg(e)
    }
}

impl From<std::io::Error> for BiosimError {
    fn from(e: std::io::Error) -> Self {
        BiosimError::Io(e)
    }
}

impl From<serde_json::Error> for BiosimError {
    fn from(e: serde_json::Error) -> Self {
        BiosimError::Serialization(e.to_string())
    }
}

/// Result alias for simulation operations.
pub type Result<T> = std::result::Result<T, BiosimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = BiosimError::InvalidConfig {
            reason: "zero participants".into(),
        };
        assert!(e.to_string().contains("zero participants"));
        let dsp: BiosimError = kinemyo_dsp::DspError::InvalidArgument { reason: "x".into() }.into();
        assert!(dsp.to_string().contains("dsp error"));
        let la: BiosimError = kinemyo_linalg::LinalgError::Empty { op: "svd" }.into();
        assert!(la.to_string().contains("linalg error"));
        let io: BiosimError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
    }
}
