//! Synchronized dual-modality acquisition.
//!
//! Reproduces the paper's Sec. 5 hardware chain in software:
//!
//! 1. a **trigger module** starts both devices at the same instant (the
//!    paper's Fig. 5 circuit; we model residual start-latency jitter);
//! 2. the Myomonitor band-passes EMG to 20–450 Hz at 1000 Hz;
//! 3. the processed signal is **full-wave rectified** and **down-sampled
//!    to 120 Hz** to align with the motion-capture frame rate.

use crate::error::{BiosimError, Result};
use kinemyo_dsp::butterworth;
use kinemyo_dsp::envelope::full_wave_rectify_mut;
use kinemyo_dsp::Resampler;
use kinemyo_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Acquisition chain parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcquisitionConfig {
    /// Motion-capture frame rate, Hz (paper: 120).
    pub mocap_fs: f64,
    /// EMG sample rate, Hz (paper: 1000).
    pub emg_fs: f64,
    /// Std of the residual trigger start-latency between the two devices,
    /// milliseconds (an ideal trigger is 0).
    pub trigger_jitter_ms: f64,
    /// Apply a 60 Hz power-line notch before rectification. The paper's
    /// chain does not mention one (60 Hz sits inside the 20–450 Hz band
    /// and survives the band-pass); enabling this removes that
    /// contamination.
    #[serde(default)]
    pub notch_60hz: bool,
}

impl Default for AcquisitionConfig {
    fn default() -> Self {
        Self {
            mocap_fs: 120.0,
            emg_fs: 1000.0,
            trigger_jitter_ms: 1.0,
            notch_60hz: false,
        }
    }
}

impl AcquisitionConfig {
    fn validate(&self) -> Result<()> {
        if !(self.mocap_fs > 0.0) || !(self.emg_fs > 0.0) {
            return Err(BiosimError::InvalidConfig {
                reason: format!(
                    "sample rates must be positive (mocap {}, emg {})",
                    self.mocap_fs, self.emg_fs
                ),
            });
        }
        if self.trigger_jitter_ms < 0.0 {
            return Err(BiosimError::InvalidConfig {
                reason: "trigger jitter must be >= 0".into(),
            });
        }
        Ok(())
    }
}

/// Applies the paper's EMG conditioning to one raw channel:
/// 20–450 Hz Butterworth band-pass → full-wave rectification → polyphase
/// down-sampling from `emg_fs` to `mocap_fs`.
pub fn process_emg_channel(raw: &[f64], cfg: &AcquisitionConfig) -> Result<Vec<f64>> {
    cfg.validate()?;
    let mut bp = butterworth::emg_bandpass(cfg.emg_fs)?;
    let mut filtered = bp.process(raw);
    if cfg.notch_60hz {
        let coeffs = kinemyo_dsp::BiquadCoeffs::notch(60.0, cfg.emg_fs, 30.0)?;
        let mut notch = kinemyo_dsp::SosFilter::new(vec![coeffs]);
        filtered = notch.process(&filtered);
    }
    full_wave_rectify_mut(&mut filtered);
    // Reduce 120/1000 (or whatever the configured pair is) to a ratio.
    let up = cfg.mocap_fs.round() as usize;
    let down = cfg.emg_fs.round() as usize;
    let resampler = Resampler::new(up, down, 24)?;
    Ok(resampler.resample(&filtered))
}

/// Simulates the trigger module: returns the EMG start offset in *samples*
/// (positive = EMG started late relative to mocap).
pub fn trigger_offset_samples<R: Rng>(cfg: &AcquisitionConfig, rng: &mut R) -> i64 {
    if cfg.trigger_jitter_ms <= 0.0 {
        return 0;
    }
    let jitter_ms = crate::noise::randn(rng) * cfg.trigger_jitter_ms;
    (jitter_ms / 1000.0 * cfg.emg_fs).round() as i64
}

/// Shifts a raw EMG stream by the trigger offset: a late start (`offset >
/// 0`) means the first samples of the true signal were never captured, so
/// the stream is left-truncated and zero-padded at the tail; an early start
/// captures pre-trigger silence, modeled as zero-padding at the head.
pub fn apply_trigger_offset(raw: &[f64], offset: i64) -> Vec<f64> {
    let n = raw.len();
    let mut out = vec![0.0; n];
    if offset >= 0 {
        let o = (offset as usize).min(n);
        out[..n - o].copy_from_slice(&raw[o..]);
    } else {
        let o = ((-offset) as usize).min(n);
        out[o..].copy_from_slice(&raw[..n - o]);
    }
    out
}

/// A fully synchronized, processed trial: both modalities at the mocap
/// frame rate with a common t = 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynchronizedStreams {
    /// Motion joint matrix, `frames × (3·segments)`.
    pub mocap: Matrix,
    /// Processed EMG, `frames × channels`, volts (rectified envelope).
    pub emg: Matrix,
}

/// Aligns a mocap joint matrix with per-channel raw EMG: applies the
/// trigger offset, the conditioning chain, and truncates both modalities to
/// the common frame count.
pub fn synchronize<R: Rng>(
    mocap: Matrix,
    raw_emg_channels: &[Vec<f64>],
    cfg: &AcquisitionConfig,
    rng: &mut R,
) -> Result<SynchronizedStreams> {
    cfg.validate()?;
    if raw_emg_channels.is_empty() {
        return Err(BiosimError::InvalidConfig {
            reason: "at least one EMG channel is required".into(),
        });
    }
    let offset = trigger_offset_samples(cfg, rng);
    let mut processed: Vec<Vec<f64>> = Vec::with_capacity(raw_emg_channels.len());
    for raw in raw_emg_channels {
        let shifted = apply_trigger_offset(raw, offset);
        processed.push(process_emg_channel(&shifted, cfg)?);
    }
    let frames = processed
        .iter()
        .map(|c| c.len())
        .min()
        .unwrap_or(0)
        .min(mocap.rows());
    let mocap_t = mocap.slice_rows(0, frames)?;
    let mut emg = Matrix::zeros(frames, processed.len());
    for (ch, col) in processed.iter().enumerate() {
        for (i, &v) in col.iter().take(frames).enumerate() {
            emg[(i, ch)] = v;
        }
    }
    Ok(SynchronizedStreams {
        mocap: mocap_t,
        emg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::PI;

    fn burst_signal() -> Vec<f64> {
        // 3 s at 1000 Hz: silence, then a 150 Hz "EMG-like" burst, silence.
        (0..3000)
            .map(|i| {
                let t = i as f64 / 1000.0;
                if (1.0..2.0).contains(&t) {
                    (2.0 * PI * 150.0 * t).sin() * 1e-3
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn processing_chain_produces_120hz_envelope() {
        let cfg = AcquisitionConfig::default();
        let out = process_emg_channel(&burst_signal(), &cfg).unwrap();
        assert_eq!(out.len(), 360); // 3 s at 120 Hz
                                    // Envelope positive during the burst, near zero outside.
        let mid: f64 = out[140..220].iter().sum::<f64>() / 80.0;
        let head: f64 = out[10..90].iter().sum::<f64>() / 80.0;
        assert!(mid > 10.0 * head.max(1e-9), "mid {mid} head {head}");
        // Rectified envelope of a ±1 mV tone ≈ 2/π mV mean.
        assert!(mid > 0.3e-3 && mid < 1.0e-3, "mid {mid}");
    }

    #[test]
    fn rectification_makes_envelope_nonnegative_mostly() {
        let cfg = AcquisitionConfig::default();
        let out = process_emg_channel(&burst_signal(), &cfg).unwrap();
        // The anti-alias filter can ring slightly negative, but the bulk
        // must be non-negative.
        let neg = out.iter().filter(|&&v| v < -1e-5).count();
        assert!(neg < out.len() / 20, "{neg} strongly negative samples");
    }

    #[test]
    fn trigger_offset_zero_without_jitter() {
        let cfg = AcquisitionConfig {
            trigger_jitter_ms: 0.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(trigger_offset_samples(&cfg, &mut rng), 0);
    }

    #[test]
    fn trigger_offset_scale() {
        let cfg = AcquisitionConfig {
            trigger_jitter_ms: 5.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let offsets: Vec<i64> = (0..200)
            .map(|_| trigger_offset_samples(&cfg, &mut rng))
            .collect();
        // 5 ms at 1000 Hz = 5 samples std; all within ±5 sigma.
        assert!(offsets.iter().all(|o| o.abs() < 26));
        assert!(offsets.iter().any(|&o| o != 0));
    }

    #[test]
    fn apply_offset_shifts_correctly() {
        let raw = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(apply_trigger_offset(&raw, 2), vec![3.0, 4.0, 5.0, 0.0, 0.0]);
        assert_eq!(
            apply_trigger_offset(&raw, -2),
            vec![0.0, 0.0, 1.0, 2.0, 3.0]
        );
        assert_eq!(apply_trigger_offset(&raw, 0), raw);
        assert_eq!(apply_trigger_offset(&raw, 99), vec![0.0; 5]);
        assert_eq!(apply_trigger_offset(&raw, -99), vec![0.0; 5]);
    }

    #[test]
    fn synchronize_aligns_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cfg = AcquisitionConfig::default();
        let mocap = Matrix::zeros(360, 12);
        let raw = vec![burst_signal(), burst_signal()];
        let s = synchronize(mocap, &raw, &cfg, &mut rng).unwrap();
        assert_eq!(s.mocap.rows(), s.emg.rows());
        assert_eq!(s.emg.cols(), 2);
        assert!(s.mocap.rows() <= 360);
        assert!(s.mocap.rows() >= 350, "should lose at most a few frames");
    }

    #[test]
    fn synchronize_rejects_empty_channels() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let cfg = AcquisitionConfig::default();
        assert!(synchronize(Matrix::zeros(10, 12), &[], &cfg, &mut rng).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = AcquisitionConfig {
            mocap_fs: 0.0,
            ..Default::default()
        };
        assert!(process_emg_channel(&[0.0; 100], &bad).is_err());
        let bad2 = AcquisitionConfig {
            trigger_jitter_ms: -1.0,
            ..Default::default()
        };
        assert!(process_emg_channel(&[0.0; 100], &bad2).is_err());
    }

    #[test]
    fn notch_option_removes_power_line() {
        // A pure 60 Hz "interference" tone: the default chain passes it
        // (it is inside the EMG band); the notch-enabled chain kills it.
        let tone: Vec<f64> = (0..4000)
            .map(|i| (2.0 * PI * 60.0 * i as f64 / 1000.0).sin() * 1e-3)
            .collect();
        let plain = process_emg_channel(&tone, &AcquisitionConfig::default()).unwrap();
        let notched = process_emg_channel(
            &tone,
            &AcquisitionConfig {
                notch_60hz: true,
                ..Default::default()
            },
        )
        .unwrap();
        let mean = |v: &[f64]| v[100..400].iter().sum::<f64>() / 300.0;
        assert!(
            mean(&notched) < mean(&plain) / 10.0,
            "notch should suppress 60 Hz: {} vs {}",
            mean(&notched),
            mean(&plain)
        );
    }

    #[test]
    fn drift_is_removed_by_bandpass() {
        // Pure slow drift (2 Hz) should be almost eliminated.
        let cfg = AcquisitionConfig::default();
        let drift: Vec<f64> = (0..3000)
            .map(|i| (2.0 * PI * 2.0 * i as f64 / 1000.0).sin() * 1e-3)
            .collect();
        let out = process_emg_channel(&drift, &cfg).unwrap();
        let mean: f64 = out[60..300].iter().sum::<f64>() / 240.0;
        assert!(mean < 0.1e-3, "drift leak {mean}");
    }
}
