//! Dataset generation: the simulated counterpart of the paper's Motion
//! Capture Laboratory test bed (Sec. 5) — multiple participants each
//! performing multiple trials of every motion class, captured by the
//! synchronized mocap + EMG chain.

use crate::acquisition::{synchronize, AcquisitionConfig};
use crate::anthropometry::Anthropometry;
use crate::emg::{synthesize_channel, EmgSynthConfig};
use crate::error::Result;
use crate::limb::{Limb, MotionClass};
use crate::motion::{generate_angles, TrialStyle};
use crate::muscle::activations;
use crate::noise::randn;
use crate::skeleton::{render_mocap, MocapNoise, Placement, Skeleton};
use crate::vec3::Vec3;
use kinemyo_linalg::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One captured trial: synchronized 120 Hz mocap + processed EMG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MotionRecord {
    /// Unique record id within the dataset.
    pub id: usize,
    /// Ground-truth motion class.
    pub class: MotionClass,
    /// Participant index.
    pub participant: usize,
    /// Trial index within (participant, class).
    pub trial: usize,
    /// Global joint matrix, `frames × (3·segments)`, mm.
    pub mocap: Matrix,
    /// Processed EMG envelope, `frames × channels`, volts.
    pub emg: Matrix,
    /// Global pelvis position per frame (for the local transform).
    pub pelvis: Vec<Vec3>,
    /// Ground-truth heading of the trial (rotation about vertical), rad.
    /// The paper's translation-only transform ignores it; the
    /// heading-normalization ablation uses it as an oracle.
    #[serde(default)]
    pub heading_rad: f64,
}

impl MotionRecord {
    /// Number of synchronized frames.
    pub fn frames(&self) -> usize {
        self.mocap.rows()
    }
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Limb under study.
    pub limb: Limb,
    /// Number of participants.
    pub participants: usize,
    /// Trials of each class per participant.
    pub trials_per_class: usize,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// EMG synthesizer settings.
    pub emg: EmgSynthConfig,
    /// Optical noise settings.
    pub mocap_noise: MocapNoise,
    /// Acquisition chain settings.
    pub acquisition: AcquisitionConfig,
    /// Max horizontal placement offset of a trial in the capture volume,
    /// mm (exercises the paper's pelvis-local translation).
    pub placement_offset_mm: f64,
    /// Heading spread between trials, radians. Default 0: participants
    /// performing on instruction face a consistent direction, and the
    /// paper's local transform is translation-only, so it cannot cancel
    /// heading. Raise this to stress that limitation (see the
    /// `ablation_heading` bench, which pairs it with the
    /// heading-normalizing transform extension).
    pub facing_spread_rad: f64,
}

impl DatasetSpec {
    /// The right-hand test bed with realistic noise.
    pub fn hand_default() -> Self {
        Self {
            limb: Limb::RightHand,
            participants: 3,
            trials_per_class: 8,
            seed: 2007,
            emg: EmgSynthConfig::realistic(),
            mocap_noise: MocapNoise::lab(),
            acquisition: AcquisitionConfig::default(),
            placement_offset_mm: 1500.0,
            facing_spread_rad: 0.0,
        }
    }

    /// The right-leg test bed with realistic noise.
    pub fn leg_default() -> Self {
        Self {
            limb: Limb::RightLeg,
            ..Self::hand_default()
        }
    }

    /// The whole-body test bed: all 7 segments, all 6 EMG channels, all
    /// 12 motion classes (the paper's Sec. 5 flexibility claim).
    pub fn whole_body_default() -> Self {
        Self {
            limb: Limb::WholeBody,
            ..Self::hand_default()
        }
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides participant / trial counts.
    pub fn with_size(mut self, participants: usize, trials_per_class: usize) -> Self {
        self.participants = participants;
        self.trials_per_class = trials_per_class;
        self
    }
}

/// A generated dataset: the spec plus all records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// The generating specification (kept for reproducibility).
    pub spec: DatasetSpec,
    /// All captured trials.
    pub records: Vec<MotionRecord>,
}

impl Dataset {
    /// Generates the dataset deterministically from `spec.seed`.
    pub fn generate(spec: DatasetSpec) -> Result<Self> {
        let classes = MotionClass::all_for(spec.limb);
        let muscles = spec.limb.muscles();
        let mut records = Vec::new();
        let mut id = 0;

        for p in 0..spec.participants {
            let mut prng = ChaCha8Rng::seed_from_u64(
                spec.seed ^ (0xA5A5_0000u64 + p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let skeleton = Skeleton::new(Anthropometry::sample(&mut prng));
            // Per-participant electrode-placement gain per muscle.
            let participant_gains: Vec<f64> = muscles
                .iter()
                .map(|_| (randn(&mut prng) * 0.20).exp())
                .collect();

            for (ci, &class) in classes.iter().enumerate() {
                for trial in 0..spec.trials_per_class {
                    let mut trng = ChaCha8Rng::seed_from_u64(
                        spec.seed
                            .wrapping_add((p as u64) << 40)
                            .wrapping_add((ci as u64) << 20)
                            .wrapping_add(trial as u64)
                            .wrapping_mul(0x2545_F491_4F6C_DD1D),
                    );
                    let style = TrialStyle::sample(&mut trng);
                    let track =
                        generate_angles(class, &style, spec.acquisition.mocap_fs, &mut trng);
                    let placement = Placement::sample(
                        &mut trng,
                        spec.placement_offset_mm,
                        spec.facing_spread_rad,
                    );
                    let render = render_mocap(
                        spec.limb,
                        &track,
                        &skeleton,
                        &placement,
                        &spec.mocap_noise,
                        &mut trng,
                    );
                    // Muscle activations at the mocap rate, scaled by the
                    // participant's electrode gains.
                    let act = activations(spec.limb, &track);
                    let duration_s = track.frames.len() as f64 / track.fs;
                    let mut raw_channels = Vec::with_capacity(muscles.len());
                    for (m, gain) in participant_gains.iter().enumerate() {
                        let envelope: Vec<f64> = (0..act.rows())
                            .map(|i| (act[(i, m)] * gain).min(1.0))
                            .collect();
                        raw_channels.push(synthesize_channel(
                            &envelope, track.fs, duration_s, &spec.emg, &mut trng,
                        )?);
                    }
                    let synced = synchronize(
                        render.joint_matrix,
                        &raw_channels,
                        &spec.acquisition,
                        &mut trng,
                    )?;
                    let frames = synced.mocap.rows();
                    let mut pelvis = render.pelvis;
                    pelvis.truncate(frames);
                    records.push(MotionRecord {
                        id,
                        class,
                        participant: p,
                        heading_rad: placement.facing_rad,
                        trial,
                        mocap: synced.mocap,
                        emg: synced.emg,
                        pelvis,
                    });
                    id += 1;
                }
            }
        }
        Ok(Self { spec, records })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct classes present, in stable order.
    pub fn classes(&self) -> Vec<MotionClass> {
        MotionClass::all_for(self.spec.limb)
            .iter()
            .copied()
            .filter(|c| self.records.iter().any(|r| r.class == *c))
            .collect()
    }

    /// Serializes to pretty JSON at `path`.
    pub fn save_json(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a dataset previously written by [`Dataset::save_json`].
    pub fn load_json(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(limb: Limb) -> DatasetSpec {
        let mut spec = match limb {
            Limb::RightHand => DatasetSpec::hand_default(),
            Limb::RightLeg => DatasetSpec::leg_default(),
            Limb::WholeBody => DatasetSpec::whole_body_default(),
        };
        spec.participants = 1;
        spec.trials_per_class = 2;
        spec
    }

    #[test]
    fn generates_expected_record_count() {
        let ds = Dataset::generate(tiny_spec(Limb::RightHand)).unwrap();
        assert_eq!(ds.len(), 6 * 2); // 6 classes × 2 trials × 1 participant
        assert!(!ds.is_empty());
        assert_eq!(ds.classes().len(), 6);
    }

    #[test]
    fn record_shapes_are_consistent() {
        let ds = Dataset::generate(tiny_spec(Limb::RightLeg)).unwrap();
        for r in &ds.records {
            assert_eq!(r.mocap.cols(), 9, "3 segments × 3");
            assert_eq!(r.emg.cols(), 2, "2 EMG channels");
            assert_eq!(r.mocap.rows(), r.emg.rows());
            assert_eq!(r.pelvis.len(), r.frames());
            assert!(r.frames() > 100, "at least ~1 s of frames");
            assert!(!r.mocap.has_non_finite());
            assert!(!r.emg.has_non_finite());
        }
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let ds = Dataset::generate(tiny_spec(Limb::RightHand)).unwrap();
        for (i, r) in ds.records.iter().enumerate() {
            assert_eq!(r.id, i);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(tiny_spec(Limb::RightHand)).unwrap();
        let b = Dataset::generate(tiny_spec(Limb::RightHand)).unwrap();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert!(ra.mocap.approx_eq(&rb.mocap, 0.0));
            assert!(ra.emg.approx_eq(&rb.emg, 0.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(tiny_spec(Limb::RightHand)).unwrap();
        let b = Dataset::generate(tiny_spec(Limb::RightHand).with_seed(999)).unwrap();
        let differs = a
            .records
            .iter()
            .zip(&b.records)
            .any(|(x, y)| !x.mocap.approx_eq(&y.mocap, 1e-9));
        assert!(differs);
    }

    #[test]
    fn emg_is_active_during_motion() {
        let ds = Dataset::generate(tiny_spec(Limb::RightHand)).unwrap();
        // The raise-arm records must show biceps envelope activity well
        // above the noise floor somewhere in the trial.
        let raise: Vec<_> = ds
            .records
            .iter()
            .filter(|r| r.class == MotionClass::RaiseArm)
            .collect();
        assert!(!raise.is_empty());
        for r in raise {
            let peak = (0..r.emg.rows()).map(|i| r.emg[(i, 0)]).fold(0.0, f64::max);
            assert!(peak > 5e-5, "biceps envelope peak {peak}");
        }
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("kinemyo_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        let mut spec = tiny_spec(Limb::RightLeg);
        spec.trials_per_class = 1;
        let ds = Dataset::generate(spec).unwrap();
        ds.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        assert!(back.records[0].mocap.approx_eq(&ds.records[0].mocap, 0.0));
        std::fs::remove_file(&path).ok();
    }
}
