//! Traffic-replay corpus: seeded, timestamped frame streams for driving
//! the serve daemon's streaming sessions (ROADMAP item 5's replay
//! corpus).
//!
//! A [`ReplaySpec`] is a compact `limb:subjects:motions:seed` string —
//! the same text travels on the `kinemyo client --op stream --replay`
//! command line and into scripts — and expands deterministically into
//! one [`SubjectStream`] per subject: several complete motion trials
//! concatenated with short linear-blend **transition segments** between
//! them, so a replayed session exercises compound motion boundaries, not
//! just steady-state trials. Every frame carries a 120 Hz timestamp and
//! the interleaved payload a wire session expects (global mocap row,
//! pelvis position, processed EMG row).

use crate::dataset::{Dataset, DatasetSpec};
use crate::error::{BiosimError, Result};
use crate::limb::{Limb, MotionClass};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Frames blended between two consecutive motions of a stream.
const TRANSITION_FRAMES: usize = 24;

/// Parsed replay specification: `limb:subjects:motions:seed`.
///
/// `limb` is one of `hand`, `leg`, `body`; trailing fields may be
/// omitted and default to 1 subject, 3 motions, seed 2007.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplaySpec {
    /// Limb whose motion classes the stream draws from.
    pub limb: Limb,
    /// Number of independent subject streams.
    pub subjects: usize,
    /// Motions concatenated per subject stream.
    pub motions: usize,
    /// Master seed; the whole corpus derives from it.
    pub seed: u64,
}

impl ReplaySpec {
    /// Parses the `limb:subjects:motions:seed` form.
    pub fn parse(text: &str) -> Result<Self> {
        let invalid = |reason: String| BiosimError::InvalidConfig { reason };
        let mut parts = text.split(':');
        let limb = match parts.next().unwrap_or("") {
            "hand" => Limb::RightHand,
            "leg" => Limb::RightLeg,
            "body" => Limb::WholeBody,
            other => {
                return Err(invalid(format!(
                    "replay limb must be hand|leg|body, got {other:?}"
                )))
            }
        };
        let mut field = |name: &str, default: u64| -> Result<u64> {
            match parts.next() {
                None | Some("") => Ok(default),
                Some(raw) => raw
                    .parse::<u64>()
                    .map_err(|_| invalid(format!("replay {name} must be an integer, got {raw:?}"))),
            }
        };
        let subjects = field("subjects", 1)? as usize;
        let motions = field("motions", 3)? as usize;
        let seed = field("seed", 2007)?;
        if parts.next().is_some() {
            return Err(invalid(format!(
                "replay spec {text:?} has trailing fields (expected limb:subjects:motions:seed)"
            )));
        }
        if subjects == 0 || motions == 0 {
            return Err(invalid(
                "replay subjects and motions must be at least 1".into(),
            ));
        }
        Ok(Self {
            limb,
            subjects,
            motions,
            seed,
        })
    }

    /// Renders the canonical `limb:subjects:motions:seed` form.
    pub fn render(&self) -> String {
        let limb = match self.limb {
            Limb::RightHand => "hand",
            Limb::RightLeg => "leg",
            Limb::WholeBody => "body",
        };
        format!("{limb}:{}:{}:{}", self.subjects, self.motions, self.seed)
    }
}

/// One timestamped acquisition frame of a replay stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayFrame {
    /// Milliseconds since the stream started (120 Hz frame clock).
    pub t_ms: u64,
    /// Global mocap row, `3 × segments` values, mm.
    pub mocap: Vec<f64>,
    /// Global pelvis position for the frame, mm.
    pub pelvis: [f64; 3],
    /// Processed EMG row, one value per channel, volts.
    pub emg: Vec<f64>,
}

/// One subject's replay stream: the ground-truth motion sequence plus
/// every frame, transition blends included.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubjectStream {
    /// Subject index within the spec.
    pub subject: usize,
    /// Ground-truth classes of the concatenated motions, in play order.
    pub classes: Vec<MotionClass>,
    /// Timestamped frames, strictly increasing `t_ms`.
    pub frames: Vec<ReplayFrame>,
}

/// Expands a spec into its subject streams, deterministically per seed.
///
/// Each subject gets an independent single-participant capture of every
/// class for the limb; a seeded draw (with replacement) picks `motions`
/// trials, which are concatenated with [`TRANSITION_FRAMES`] linearly
/// blended frames bridging each boundary.
pub fn generate_replay(spec: &ReplaySpec) -> Result<Vec<SubjectStream>> {
    let base = match spec.limb {
        Limb::RightHand => DatasetSpec::hand_default(),
        Limb::RightLeg => DatasetSpec::leg_default(),
        Limb::WholeBody => DatasetSpec::whole_body_default(),
    };
    let mut streams = Vec::with_capacity(spec.subjects);
    for subject in 0..spec.subjects {
        let capture_seed = spec
            .seed
            .wrapping_add((subject as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let dataset = Dataset::generate(base.clone().with_size(1, 1).with_seed(capture_seed))?;
        let mut rng = ChaCha8Rng::seed_from_u64(capture_seed ^ 0x5EED_5EED_5EED_5EED);
        let picks: Vec<usize> = (0..spec.motions)
            .map(|_| rng.random_range(0..dataset.records.len()))
            .collect();

        let frame_period_ms = 1000.0 / base.acquisition.mocap_fs;
        let mut classes = Vec::with_capacity(spec.motions);
        let mut frames: Vec<ReplayFrame> = Vec::new();
        let mut clock = 0usize; // frame index on the 120 Hz clock
        for &pick in &picks {
            let record = &dataset.records[pick];
            classes.push(record.class);
            let first = replay_frame(record, 0);
            if let Some(prev) = frames.last().cloned() {
                for step in 1..=TRANSITION_FRAMES {
                    let alpha = step as f64 / (TRANSITION_FRAMES + 1) as f64;
                    frames.push(blend(&prev, &first, alpha, clock, frame_period_ms));
                    clock += 1;
                }
            }
            for f in 0..record.frames() {
                let mut frame = replay_frame(record, f);
                frame.t_ms = (clock as f64 * frame_period_ms) as u64;
                frames.push(frame);
                clock += 1;
            }
        }
        streams.push(SubjectStream {
            subject,
            classes,
            frames,
        });
    }
    Ok(streams)
}

fn replay_frame(record: &crate::dataset::MotionRecord, f: usize) -> ReplayFrame {
    let p = record.pelvis[f];
    ReplayFrame {
        t_ms: 0,
        mocap: record.mocap.row(f).to_vec(),
        pelvis: [p.x, p.y, p.z],
        emg: record.emg.row(f).to_vec(),
    }
}

fn blend(
    a: &ReplayFrame,
    b: &ReplayFrame,
    alpha: f64,
    clock: usize,
    frame_period_ms: f64,
) -> ReplayFrame {
    let mix = |x: f64, y: f64| x * (1.0 - alpha) + y * alpha;
    ReplayFrame {
        t_ms: (clock as f64 * frame_period_ms) as u64,
        mocap: a
            .mocap
            .iter()
            .zip(&b.mocap)
            .map(|(&x, &y)| mix(x, y))
            .collect(),
        pelvis: [
            mix(a.pelvis[0], b.pelvis[0]),
            mix(a.pelvis[1], b.pelvis[1]),
            mix(a.pelvis[2], b.pelvis[2]),
        ],
        emg: a.emg.iter().zip(&b.emg).map(|(&x, &y)| mix(x, y)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_and_partial_specs() {
        let full = ReplaySpec::parse("leg:2:4:99").unwrap();
        assert_eq!(
            full,
            ReplaySpec {
                limb: Limb::RightLeg,
                subjects: 2,
                motions: 4,
                seed: 99
            }
        );
        assert_eq!(full.render(), "leg:2:4:99");
        let partial = ReplaySpec::parse("hand").unwrap();
        assert_eq!(partial.subjects, 1);
        assert_eq!(partial.motions, 3);
        assert_eq!(partial.seed, 2007);
        assert!(ReplaySpec::parse("arm:1:1:1").is_err());
        assert!(ReplaySpec::parse("hand:x").is_err());
        assert!(ReplaySpec::parse("hand:0:1:1").is_err());
        assert!(ReplaySpec::parse("hand:1:1:1:1").is_err());
    }

    #[test]
    fn streams_are_deterministic_and_well_formed() {
        let spec = ReplaySpec::parse("hand:2:3:42").unwrap();
        let a = generate_replay(&spec).unwrap();
        let b = generate_replay(&spec).unwrap();
        assert_eq!(a.len(), 2);
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.classes, sb.classes);
            assert_eq!(sa.frames, sb.frames, "byte-identical per seed");
        }
        let limb = Limb::RightHand;
        for stream in &a {
            assert_eq!(stream.classes.len(), 3);
            assert!(!stream.frames.is_empty());
            let mut last_t = None;
            for f in &stream.frames {
                assert_eq!(f.mocap.len(), limb.mocap_cols());
                assert_eq!(f.emg.len(), limb.emg_channels());
                assert!(f.mocap.iter().chain(&f.emg).all(|v| v.is_finite()));
                if let Some(prev) = last_t {
                    assert!(f.t_ms > prev, "timestamps strictly increase");
                }
                last_t = Some(f.t_ms);
            }
        }
    }

    #[test]
    fn transitions_bridge_motion_boundaries() {
        let spec = ReplaySpec::parse("hand:1:2:7").unwrap();
        let streams = generate_replay(&spec).unwrap();
        let single = generate_replay(&ReplaySpec::parse("hand:1:1:7").unwrap()).unwrap();
        // Two motions must add more than one motion's frames plus the
        // blended bridge — i.e. the bridge frames exist.
        assert!(streams[0].frames.len() > single[0].frames.len() + TRANSITION_FRAMES);
    }

    #[test]
    fn different_seeds_produce_different_streams() {
        let a = generate_replay(&ReplaySpec::parse("hand:1:3:1").unwrap()).unwrap();
        let b = generate_replay(&ReplaySpec::parse("hand:1:3:2").unwrap()).unwrap();
        assert!(a[0].classes != b[0].classes || a[0].frames != b[0].frames);
    }
}
