//! Muscle excitation and activation dynamics.
//!
//! Surface EMG amplitude tracks muscle *activation*, which lags neural
//! *excitation* through first-order calcium dynamics. Excitation is derived
//! from the joint kinematics each muscle actuates: agonists fire with
//! joint velocity in their pulling direction plus a static holding
//! component. This is why the synthetic EMG is informative about the motion
//! class while remaining non-stationary (the paper's central premise).

use crate::limb::{Limb, Muscle};
use crate::motion::AngleTrack;
use kinemyo_linalg::Matrix;

/// Rectified-linear helper.
#[inline]
fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// Reference angular velocity that saturates velocity-driven excitation
/// (rad/s) for arm muscles.
const OMEGA_REF_ARM: f64 = 6.0;
/// Reference angular velocity for shank muscles.
const OMEGA_REF_LEG: f64 = 4.0;

/// Computes per-frame neural excitation in `[0, 1]` for every muscle of the
/// limb. Returns a `frames × muscles` matrix in [`Limb::muscles`] order.
pub fn excitations(limb: Limb, track: &AngleTrack) -> Matrix {
    let vels = track.velocities();
    let muscles = limb.muscles();
    let n = track.frames.len();
    let mut out = Matrix::zeros(n, muscles.len());
    for i in 0..n {
        let a = &track.frames[i];
        let v = &vels[i];
        for (m_idx, muscle) in muscles.iter().enumerate() {
            let u = match muscle {
                Muscle::Biceps => {
                    // Concentric elbow flexion + gravity hold when the
                    // forearm is flexed + assist during shoulder raise.
                    0.85 * relu(v.elbow_flexion) / OMEGA_REF_ARM
                        + 0.30 * relu(a.elbow_flexion.sin()) * 0.6
                        + 0.20 * relu(v.shoulder_elevation) / OMEGA_REF_ARM
                }
                Muscle::Triceps => {
                    // Elbow extension (e.g. throw release, punch).
                    0.95 * relu(-v.elbow_flexion) / OMEGA_REF_ARM
                        + 0.15 * relu(-v.shoulder_elevation) / OMEGA_REF_ARM
                }
                Muscle::UpperForearm => {
                    // Wrist/finger extensors: co-contract with grip and
                    // stabilize during fast elbow motion.
                    0.55 * a.grip
                        + 0.25 * v.elbow_flexion.abs() / OMEGA_REF_ARM
                        + 0.10 * v.shoulder_azimuth.abs() / OMEGA_REF_ARM
                }
                Muscle::LowerForearm => {
                    // Wrist/finger flexors: dominated by grip effort.
                    0.80 * a.grip + 0.10 * v.elbow_flexion.abs() / OMEGA_REF_ARM
                }
                Muscle::FrontShin => {
                    // Tibialis anterior: dorsiflexion velocity + dorsiflexed
                    // hold + foot-lift assist during hip swing.
                    0.85 * relu(v.ankle_flexion) / OMEGA_REF_LEG
                        + 0.35 * relu(a.ankle_flexion) / 0.40
                        + 0.15 * relu(v.hip_flexion) / OMEGA_REF_LEG
                }
                Muscle::BackShin => {
                    // Gastrocnemius/soleus: plantarflexion velocity (gated
                    // off while the foot is dorsiflexed — lowering the foot
                    // from a toe-tap is passive, not a calf contraction) +
                    // plantarflexed hold (heel raise) + push-off with knee
                    // extension.
                    let plantar_gate = 1.0 / (1.0 + (18.0 * a.ankle_flexion).exp());
                    0.85 * relu(-v.ankle_flexion) / OMEGA_REF_LEG * plantar_gate
                        + 0.45 * relu(-a.ankle_flexion) / 0.45
                        + 0.20 * relu(-v.knee_flexion) / OMEGA_REF_ARM
                }
            };
            out[(i, m_idx)] = u.clamp(0.0, 1.0);
        }
    }
    out
}

/// First-order activation dynamics: activation follows excitation with a
/// fast rise (`tau_act`) and slower decay (`tau_deact`), the standard
/// Hill-type activation model.
pub fn activation_dynamics(excitation: &[f64], fs: f64, tau_act: f64, tau_deact: f64) -> Vec<f64> {
    let dt = 1.0 / fs;
    let mut act = 0.0_f64;
    let mut out = Vec::with_capacity(excitation.len());
    for &u in excitation {
        let tau = if u > act { tau_act } else { tau_deact };
        act += dt * (u - act) / tau.max(dt);
        act = act.clamp(0.0, 1.0);
        out.push(act);
    }
    out
}

/// Convenience: excitation matrix → activation matrix with default time
/// constants (15 ms rise, 50 ms decay).
pub fn activations(limb: Limb, track: &AngleTrack) -> Matrix {
    let exc = excitations(limb, track);
    let mut out = Matrix::zeros(exc.rows(), exc.cols());
    for m in 0..exc.cols() {
        let col: Vec<f64> = (0..exc.rows()).map(|i| exc[(i, m)]).collect();
        let act = activation_dynamics(&col, track.fs, 0.015, 0.050);
        for (i, v) in act.into_iter().enumerate() {
            out[(i, m)] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limb::MotionClass;
    use crate::motion::{generate_angles, TrialStyle};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn track(class: MotionClass) -> AngleTrack {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        generate_angles(class, &TrialStyle::nominal(), 120.0, &mut rng)
    }

    fn channel_peak(m: &Matrix, col: usize) -> f64 {
        (0..m.rows()).map(|i| m[(i, col)]).fold(0.0, f64::max)
    }

    fn channel_mean(m: &Matrix, col: usize) -> f64 {
        (0..m.rows()).map(|i| m[(i, col)]).sum::<f64>() / m.rows() as f64
    }

    #[test]
    fn excitations_are_bounded() {
        for class in [MotionClass::ThrowBall, MotionClass::Walk] {
            let t = track(class);
            let e = excitations(class.limb(), &t);
            for i in 0..e.rows() {
                for j in 0..e.cols() {
                    assert!((0.0..=1.0).contains(&e[(i, j)]));
                }
            }
        }
    }

    #[test]
    fn raise_arm_activates_biceps_over_triceps_on_the_way_up() {
        let t = track(MotionClass::RaiseArm);
        let e = excitations(Limb::RightHand, &t);
        // During the rising half, biceps/deltoid-proxy must beat triceps.
        let half = e.rows() / 2;
        let bic: f64 = (0..half).map(|i| e[(i, 0)]).sum();
        let tri: f64 = (0..half).map(|i| e[(i, 1)]).sum();
        assert!(bic > tri, "biceps {bic} vs triceps {tri}");
    }

    #[test]
    fn punch_fires_triceps() {
        let t = track(MotionClass::Punch);
        let e = excitations(Limb::RightHand, &t);
        assert!(
            channel_peak(&e, 1) > 0.5,
            "triceps peak {}",
            channel_peak(&e, 1)
        );
        // And grips hard → lower forearm active.
        assert!(channel_peak(&e, 3) > 0.4);
    }

    #[test]
    fn toe_tap_prefers_front_shin() {
        let t = track(MotionClass::ToeTap);
        let e = excitations(Limb::RightLeg, &t);
        assert!(
            channel_mean(&e, 0) > 2.0 * channel_mean(&e, 1),
            "front {} vs back {}",
            channel_mean(&e, 0),
            channel_mean(&e, 1)
        );
    }

    #[test]
    fn heel_raise_prefers_back_shin() {
        let t = track(MotionClass::HeelRaise);
        let e = excitations(Limb::RightLeg, &t);
        assert!(
            channel_mean(&e, 1) > 2.0 * channel_mean(&e, 0),
            "back {} vs front {}",
            channel_mean(&e, 1),
            channel_mean(&e, 0)
        );
    }

    #[test]
    fn different_classes_have_different_profiles() {
        let e_throw = excitations(Limb::RightHand, &track(MotionClass::ThrowBall));
        let e_drink = excitations(Limb::RightHand, &track(MotionClass::DrinkCup));
        // Ballistic elbow extension saturates the triceps; the slow cup
        // return does not get near saturation.
        assert!(
            channel_peak(&e_throw, 1) > 0.9,
            "throw triceps {}",
            channel_peak(&e_throw, 1)
        );
        assert!(
            channel_peak(&e_drink, 1) < 0.8,
            "drink triceps {}",
            channel_peak(&e_drink, 1)
        );
        // And the grip-driven forearm channels separate them further.
        assert!(channel_peak(&e_throw, 3) > channel_peak(&e_drink, 3));
    }

    #[test]
    fn activation_lags_and_smooths_excitation() {
        // Step excitation: activation rises with tau_act, decays with
        // tau_deact (slower).
        let fs = 1000.0;
        let mut u = vec![0.0; 200];
        u.extend(vec![1.0; 300]);
        u.extend(vec![0.0; 500]);
        let act = activation_dynamics(&u, fs, 0.015, 0.050);
        assert_eq!(act.len(), u.len());
        // At step onset activation is still low.
        assert!(act[205] < 0.5);
        // Fully risen by ~5 time constants.
        assert!(act[490] > 0.95);
        // Decay slower than rise: at 15 ms after offset, still > 0.6.
        assert!(act[515] > 0.6, "act {}", act[515]);
        // Everything bounded.
        for &a in &act {
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn activations_matrix_shape() {
        let t = track(MotionClass::Walk);
        let a = activations(Limb::RightLeg, &t);
        assert_eq!(a.rows(), t.frames.len());
        assert_eq!(a.cols(), 2);
        assert!(!a.has_non_finite());
    }

    #[test]
    fn rest_produces_near_zero_activation() {
        let t = AngleTrack {
            fs: 120.0,
            frames: vec![Default::default(); 240],
        };
        let a = activations(Limb::RightHand, &t);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(a[(i, j)] < 0.05, "rest activation {}", a[(i, j)]);
            }
        }
    }
}
