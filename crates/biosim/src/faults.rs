//! Sensor-fault injection: the realistic failure taxonomy of a live
//! mocap + EMG acquisition rig, applied to already-synchronized records.
//!
//! The paper's motivating application is online prosthetic control
//! (Sec. 5), where the clean laboratory assumptions of [`crate::dataset`]
//! break: optical markers occlude whole frames, EMG electrodes detach
//! (flatline) or pop against the amplifier rail (saturation), cabling
//! glitches produce non-finite samples, and the two streams drift out of
//! sync when the trigger clock wanders. This module injects each of those
//! faults deterministically (seeded per record) and reports exactly what
//! it did in a [`FaultLog`], so the guard layer's detection counts can be
//! checked against ground truth.
//!
//! Faults compose: a single [`FaultSpec`] can enable any subset, and
//! [`FaultSpec::from_rate`] scales the whole taxonomy from one severity
//! scalar for sweeps.

use crate::dataset::MotionRecord;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Composable, seeded specification of the injected sensor faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed for the fault RNG; combined with the record id, so every
    /// record gets an independent but reproducible fault pattern.
    pub seed: u64,
    /// Per-frame probability that the whole mocap frame (all markers and
    /// the pelvis) is lost — modeled as a NaN row, the way a real
    /// reconstruction pipeline reports an occluded frame.
    pub mocap_drop_rate: f64,
    /// Per-sample probability that an EMG sample becomes NaN (cable or
    /// ADC glitch).
    pub emg_nan_rate: f64,
    /// Per-frame, per-channel probability that an electrode-detach
    /// episode starts (the channel flatlines at exactly 0 V).
    pub emg_dropout_rate: f64,
    /// Length of each dropout episode, frames.
    pub emg_dropout_len: usize,
    /// Per-frame, per-channel probability that an electrode-pop episode
    /// starts (the channel pins to the saturation rail).
    pub emg_saturation_rate: f64,
    /// Length of each saturation episode, frames.
    pub emg_saturation_len: usize,
    /// The amplifier rail the saturated samples pin to, volts.
    pub saturation_volts: f64,
    /// Bound on the inter-stream desync drift, frames. The EMG stream's
    /// read position random-walks within `±desync_max_frames` of the mocap
    /// clock.
    pub desync_max_frames: usize,
    /// Frames between random-walk steps of the desync offset (0 disables
    /// desync entirely).
    pub desync_step_frames: usize,
}

impl FaultSpec {
    /// A spec that injects nothing (useful as a sweep baseline).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            mocap_drop_rate: 0.0,
            emg_nan_rate: 0.0,
            emg_dropout_rate: 0.0,
            emg_dropout_len: 30,
            emg_saturation_rate: 0.0,
            emg_saturation_len: 10,
            saturation_volts: 5e-3,
            desync_max_frames: 0,
            desync_step_frames: 0,
        }
    }

    /// Scales the whole fault taxonomy from one severity scalar in
    /// `[0, 1]`: `rate` is the mocap frame-drop probability, and the other
    /// fault classes are derived at realistic relative frequencies.
    pub fn from_rate(rate: f64, seed: u64) -> Self {
        Self {
            mocap_drop_rate: rate,
            emg_nan_rate: rate * 0.2,
            emg_dropout_rate: rate * 0.05,
            emg_saturation_rate: rate * 0.025,
            desync_max_frames: if rate > 0.0 { 4 } else { 0 },
            desync_step_frames: if rate > 0.0 { 30 } else { 0 },
            ..Self::none(seed)
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when the spec injects nothing.
    pub fn is_none(&self) -> bool {
        self.mocap_drop_rate <= 0.0
            && self.emg_nan_rate <= 0.0
            && self.emg_dropout_rate <= 0.0
            && self.emg_saturation_rate <= 0.0
            && (self.desync_max_frames == 0 || self.desync_step_frames == 0)
    }
}

/// Ground-truth log of the faults actually injected into one record.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultLog {
    /// Mocap frames replaced by NaN rows.
    pub mocap_frames_dropped: usize,
    /// EMG samples replaced by NaN.
    pub emg_nan_samples: usize,
    /// EMG samples flattened to 0 V by dropout episodes.
    pub emg_flatline_samples: usize,
    /// EMG samples pinned to the saturation rail.
    pub emg_saturated_samples: usize,
    /// Largest absolute desync offset reached, frames.
    pub max_desync_frames: usize,
    /// Number of frames at which the two streams were out of sync.
    pub desynced_frames: usize,
}

impl FaultLog {
    /// Merges another log's counts into this one (for dataset totals).
    pub fn merge(&mut self, other: &FaultLog) {
        self.mocap_frames_dropped += other.mocap_frames_dropped;
        self.emg_nan_samples += other.emg_nan_samples;
        self.emg_flatline_samples += other.emg_flatline_samples;
        self.emg_saturated_samples += other.emg_saturated_samples;
        self.max_desync_frames = self.max_desync_frames.max(other.max_desync_frames);
        self.desynced_frames += other.desynced_frames;
    }

    /// Total corrupted EMG samples across all fault classes.
    pub fn emg_samples_corrupted(&self) -> usize {
        self.emg_nan_samples + self.emg_flatline_samples + self.emg_saturated_samples
    }
}

/// Applies `spec` to a clean record, returning the corrupted copy and the
/// exact log of what was injected. Deterministic in `(spec.seed,
/// record.id)`; the input record is untouched.
///
/// Injection order is fixed — desync, dropout, saturation, NaN, mocap
/// drops — so later faults can overwrite earlier ones exactly as a real
/// rig would (a NaN glitch on a detached electrode is still a NaN).
pub fn inject_faults(record: &MotionRecord, spec: &FaultSpec) -> (MotionRecord, FaultLog) {
    let mut out = record.clone();
    let mut log = FaultLog::default();
    let mut rng = ChaCha8Rng::seed_from_u64(
        spec.seed ^ (record.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let frames = out.mocap.rows();
    let channels = out.emg.cols();

    // 1. Bounded desync drift: the EMG content at frame f is what the
    //    muscle produced at frame f - d(f), where d random-walks within
    //    ±desync_max_frames. Positive d = EMG lags the mocap clock.
    if spec.desync_max_frames > 0 && spec.desync_step_frames > 0 {
        let original = out.emg.clone();
        let max = spec.desync_max_frames as i64;
        let mut d: i64 = 0;
        for f in 0..frames {
            if f > 0 && f % spec.desync_step_frames == 0 {
                d += if rng.random_bool(0.5) { 1 } else { -1 };
                d = d.clamp(-max, max);
            }
            if d != 0 {
                log.desynced_frames += 1;
                log.max_desync_frames = log.max_desync_frames.max(d.unsigned_abs() as usize);
            }
            let src = (f as i64 - d).clamp(0, frames as i64 - 1) as usize;
            for ch in 0..channels {
                out.emg[(f, ch)] = original[(src, ch)];
            }
        }
    }

    // 2. Electrode-detach episodes: exact 0 V flatline per channel.
    if spec.emg_dropout_rate > 0.0 {
        inject_episodes(
            &mut out,
            &mut rng,
            spec.emg_dropout_rate,
            spec.emg_dropout_len,
            |_| 0.0,
            &mut log.emg_flatline_samples,
        );
    }

    // 3. Electrode-pop episodes: samples pin to the amplifier rail.
    if spec.emg_saturation_rate > 0.0 {
        let rail = spec.saturation_volts;
        inject_episodes(
            &mut out,
            &mut rng,
            spec.emg_saturation_rate,
            spec.emg_saturation_len,
            |_| rail,
            &mut log.emg_saturated_samples,
        );
    }

    // 4. Non-finite EMG samples.
    if spec.emg_nan_rate > 0.0 {
        for f in 0..frames {
            for ch in 0..channels {
                if rng.random_bool(spec.emg_nan_rate.min(1.0)) {
                    if out.emg[(f, ch)].is_finite() {
                        // Don't double-count a sample a previous NaN pass
                        // (there is none today) already hit.
                        log.emg_nan_samples += 1;
                    }
                    out.emg[(f, ch)] = f64::NAN;
                }
            }
        }
    }

    // 5. Dropped mocap frames: the whole marker row plus the pelvis.
    if spec.mocap_drop_rate > 0.0 {
        let cols = out.mocap.cols();
        for f in 0..frames {
            if rng.random_bool(spec.mocap_drop_rate.min(1.0)) {
                for c in 0..cols {
                    out.mocap[(f, c)] = f64::NAN;
                }
                out.pelvis[f] = crate::vec3::Vec3::new(f64::NAN, f64::NAN, f64::NAN);
                log.mocap_frames_dropped += 1;
            }
        }
    }

    (out, log)
}

/// Injects constant-value episodes (flatline or rail) per channel,
/// counting every sample written.
fn inject_episodes<R: Rng>(
    out: &mut MotionRecord,
    rng: &mut R,
    start_rate: f64,
    len: usize,
    value: impl Fn(f64) -> f64,
    counter: &mut usize,
) {
    let frames = out.emg.rows();
    let channels = out.emg.cols();
    for ch in 0..channels {
        let mut remaining = 0usize;
        for f in 0..frames {
            if remaining == 0 && rng.random_bool(start_rate.min(1.0)) {
                remaining = len.max(1);
            }
            if remaining > 0 {
                out.emg[(f, ch)] = value(out.emg[(f, ch)]);
                *counter += 1;
                remaining -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetSpec};

    fn record() -> MotionRecord {
        let mut spec = DatasetSpec::hand_default();
        spec.participants = 1;
        spec.trials_per_class = 1;
        Dataset::generate(spec).unwrap().records.remove(0)
    }

    #[test]
    fn none_spec_is_identity() {
        let r = record();
        let (faulted, log) = inject_faults(&r, &FaultSpec::none(1));
        assert_eq!(log, FaultLog::default());
        assert!(faulted.mocap.approx_eq(&r.mocap, 0.0));
        assert!(faulted.emg.approx_eq(&r.emg, 0.0));
        assert!(FaultSpec::none(1).is_none());
        assert!(!FaultSpec::from_rate(0.1, 1).is_none());
    }

    #[test]
    fn injection_is_deterministic() {
        let r = record();
        let spec = FaultSpec::from_rate(0.05, 99);
        let (a, la) = inject_faults(&r, &spec);
        let (b, lb) = inject_faults(&r, &spec);
        assert_eq!(la, lb);
        for f in 0..a.mocap.rows() {
            for c in 0..a.mocap.cols() {
                let (x, y) = (a.mocap[(f, c)], b.mocap[(f, c)]);
                assert!(x == y || (x.is_nan() && y.is_nan()));
            }
        }
    }

    #[test]
    fn mocap_drop_counts_match_nan_rows() {
        let r = record();
        let spec = FaultSpec {
            mocap_drop_rate: 0.03,
            ..FaultSpec::none(7)
        };
        let (faulted, log) = inject_faults(&r, &spec);
        let nan_rows = (0..faulted.mocap.rows())
            .filter(|&f| faulted.mocap.row(f).iter().all(|v| v.is_nan()))
            .count();
        assert!(log.mocap_frames_dropped > 0, "rate 3% over ~400 frames");
        assert_eq!(nan_rows, log.mocap_frames_dropped);
        // Pelvis of a dropped frame is NaN too.
        let f = (0..faulted.mocap.rows())
            .find(|&f| faulted.mocap[(f, 0)].is_nan())
            .unwrap();
        assert!(faulted.pelvis[f].x.is_nan());
    }

    #[test]
    fn emg_nan_counts_match() {
        let r = record();
        let spec = FaultSpec {
            emg_nan_rate: 0.01,
            ..FaultSpec::none(11)
        };
        let (faulted, log) = inject_faults(&r, &spec);
        let nan_samples = (0..faulted.emg.rows())
            .flat_map(|f| (0..faulted.emg.cols()).map(move |c| (f, c)))
            .filter(|&(f, c)| faulted.emg[(f, c)].is_nan())
            .count();
        assert!(log.emg_nan_samples > 0);
        assert_eq!(nan_samples, log.emg_nan_samples);
        // Mocap untouched.
        assert!(faulted.mocap.approx_eq(&r.mocap, 0.0));
    }

    #[test]
    fn dropout_episodes_flatline_exact_zero() {
        let r = record();
        let spec = FaultSpec {
            emg_dropout_rate: 0.01,
            emg_dropout_len: 20,
            ..FaultSpec::none(13)
        };
        let (faulted, log) = inject_faults(&r, &spec);
        assert!(log.emg_flatline_samples >= 20, "at least one episode");
        let zeros = (0..faulted.emg.rows())
            .flat_map(|f| (0..faulted.emg.cols()).map(move |c| (f, c)))
            .filter(|&(f, c)| faulted.emg[(f, c)] == 0.0 && r.emg[(f, c)] != 0.0)
            .count();
        assert!(zeros > 0);
    }

    #[test]
    fn saturation_pins_to_rail() {
        let r = record();
        let spec = FaultSpec {
            emg_saturation_rate: 0.01,
            emg_saturation_len: 10,
            saturation_volts: 4.2e-3,
            ..FaultSpec::none(17)
        };
        let (faulted, log) = inject_faults(&r, &spec);
        assert!(log.emg_saturated_samples >= 10);
        let at_rail = (0..faulted.emg.rows())
            .flat_map(|f| (0..faulted.emg.cols()).map(move |c| (f, c)))
            .filter(|&(f, c)| faulted.emg[(f, c)] == 4.2e-3)
            .count();
        assert_eq!(at_rail, log.emg_saturated_samples);
    }

    #[test]
    fn desync_is_bounded_and_logged() {
        let r = record();
        let spec = FaultSpec {
            desync_max_frames: 5,
            desync_step_frames: 10,
            ..FaultSpec::none(19)
        };
        let (faulted, log) = inject_faults(&r, &spec);
        assert!(log.max_desync_frames <= 5);
        assert!(log.desynced_frames > 0, "a random walk leaves zero quickly");
        // Values are permuted, never invented: every faulted sample exists
        // in the original channel.
        for ch in 0..faulted.emg.cols() {
            for f in 0..faulted.emg.rows() {
                let v = faulted.emg[(f, ch)];
                let lo = f.saturating_sub(5);
                let hi = (f + 6).min(faulted.emg.rows());
                assert!(
                    (lo..hi).any(|s| r.emg[(s, ch)] == v),
                    "sample at frame {f} not within ±5 of source"
                );
            }
        }
    }

    #[test]
    fn from_rate_scales_monotonically() {
        let r = record();
        let (_, lo) = inject_faults(&r, &FaultSpec::from_rate(0.01, 23));
        let (_, hi) = inject_faults(&r, &FaultSpec::from_rate(0.10, 23));
        assert!(hi.mocap_frames_dropped > lo.mocap_frames_dropped);
        assert!(hi.emg_samples_corrupted() > lo.emg_samples_corrupted());
    }

    #[test]
    fn log_merge_accumulates() {
        let mut a = FaultLog {
            mocap_frames_dropped: 2,
            emg_nan_samples: 3,
            max_desync_frames: 1,
            ..FaultLog::default()
        };
        let b = FaultLog {
            mocap_frames_dropped: 5,
            emg_flatline_samples: 7,
            max_desync_frames: 4,
            desynced_frames: 9,
            ..FaultLog::default()
        };
        a.merge(&b);
        assert_eq!(a.mocap_frames_dropped, 7);
        assert_eq!(a.emg_nan_samples, 3);
        assert_eq!(a.emg_flatline_samples, 7);
        assert_eq!(a.max_desync_frames, 4);
        assert_eq!(a.desynced_frames, 9);
        assert_eq!(a.emg_samples_corrupted(), 10);
    }
}
