//! Configurable pipeline variants for the ablation studies.
//!
//! The main crate exposes the paper's pipeline; the ablations need
//! variants that swap one stage at a time (mean-pose features instead of
//! weighted SVD, hard k-means instead of FCM, heading-normalized local
//! transform instead of translation-only). Building them here from the
//! public stage APIs keeps the core crate honest — every swap is a
//! composition of exported pieces.

use kinemyo::biosim::{Limb, MotionClass, MotionRecord};
use kinemyo::pelvis_matrix;
use kinemyo_dsp::WindowSpec;
use kinemyo_features::{
    emg_features, hard_histogram_vector, mean_pose_windows, motion_feature_vector, to_pelvis_local,
    to_pelvis_local_heading, wsvd_windows, EmgFeatureSet, Modality,
};
use kinemyo_fuzzy::{fcm_fit, gk_fit, kmeans_fit, FcmConfig, GkConfig, KMeansConfig};
use kinemyo_linalg::stats::ZScore;
use kinemyo_linalg::vector::sq_euclidean;
use kinemyo_linalg::Matrix;
use kinemyo_modb::{classify, knn, knn_correct_pct, mean_pct, FeatureDb};

/// Which motion-capture window feature to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// The paper's weighted-SVD features (Eqs. 2–3).
    Wsvd,
    /// Mean marker position per window (ablation baseline).
    MeanPose,
}

/// Which clustering / motion-vector representation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterKind {
    /// FCM + min/max-of-highest-membership vectors (the paper).
    Fuzzy,
    /// Hard k-means + normalized cluster-visit histogram.
    Hard,
    /// Gustafson–Kessel (adaptive-metric fuzzy) + min/max vectors.
    GustafsonKessel,
}

/// Which local transform to apply to the motion matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// The paper's pelvis-translation-only transform (Sec. 3.2).
    Translation,
    /// Translation + heading cancellation (extension; uses the record's
    /// ground-truth heading as an oracle).
    HeadingNormalized,
}

/// One ablation pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct VariantConfig {
    /// Window length, ms.
    pub window_ms: f64,
    /// Cluster count.
    pub clusters: usize,
    /// Modality selection.
    pub modality: Modality,
    /// Mocap feature kind.
    pub feature: FeatureKind,
    /// EMG feature set (IAV is the paper's choice).
    pub emg_feature: EmgFeatureSet,
    /// Clustering kind.
    pub cluster: ClusterKind,
    /// Local-transform kind.
    pub transform: TransformKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VariantConfig {
    fn default() -> Self {
        Self {
            window_ms: 100.0,
            clusters: 15,
            modality: Modality::Combined,
            feature: FeatureKind::Wsvd,
            emg_feature: EmgFeatureSet::Iav,
            cluster: ClusterKind::Fuzzy,
            transform: TransformKind::Translation,
            seed: 2007,
        }
    }
}

/// Window feature points for one record under the variant settings.
fn variant_points(r: &MotionRecord, window: &WindowSpec, cfg: &VariantConfig) -> Matrix {
    let ranges = window.ranges(r.mocap.rows());
    let pelvis = pelvis_matrix(&r.pelvis);
    let local = match cfg.transform {
        TransformKind::Translation => to_pelvis_local(&r.mocap, &pelvis),
        TransformKind::HeadingNormalized => {
            to_pelvis_local_heading(&r.mocap, &pelvis, r.heading_rad)
        }
    }
    .expect("record shapes are consistent");
    let mocap_f = match cfg.feature {
        FeatureKind::Wsvd => wsvd_windows(&local, &ranges),
        FeatureKind::MeanPose => mean_pose_windows(&local, &ranges),
    }
    .expect("window ranges are in bounds");
    let emg_f = emg_features(&r.emg, &ranges, cfg.emg_feature).expect("emg windows in bounds");
    match cfg.modality {
        Modality::Combined => emg_f.hstack(&mocap_f).expect("same window count"),
        Modality::EmgOnly => emg_f,
        Modality::MocapOnly => mocap_f,
    }
}

/// Evaluates a full train/query round of the variant pipeline, returning
/// `(misclassification %, mean kNN correct %)` with k = 5.
pub fn evaluate_variant(
    train: &[&MotionRecord],
    queries: &[&MotionRecord],
    _limb: Limb,
    cfg: &VariantConfig,
) -> (f64, f64) {
    let window = WindowSpec::from_ms(cfg.window_ms, 120.0).expect("valid window");

    // Stage 1: window points.
    let train_points: Vec<Matrix> = train
        .iter()
        .map(|r| variant_points(r, &window, cfg))
        .collect();
    let mut stacked = train_points[0].clone();
    for p in &train_points[1..] {
        stacked = stacked.vstack(p).expect("same dims");
    }

    // Stage 2: standardize.
    let scaler = ZScore::fit(&stacked).expect("non-empty");
    let stacked = scaler.transform(&stacked).expect("fitted dims");

    // Stage 3: cluster + per-motion vectors.
    let mut db = FeatureDb::new(match cfg.cluster {
        ClusterKind::Fuzzy | ClusterKind::GustafsonKessel => 2 * cfg.clusters,
        ClusterKind::Hard => cfg.clusters,
    });
    match cfg.cluster {
        ClusterKind::Fuzzy => {
            let model = fcm_fit(
                &stacked,
                &FcmConfig::new(cfg.clusters)
                    .with_seed(cfg.seed)
                    .with_restarts(2),
            )
            .expect("fcm converges");
            let mut offset = 0;
            for (r, pts) in train.iter().zip(&train_points) {
                let m = model
                    .memberships
                    .slice_rows(offset, offset + pts.rows())
                    .expect("in bounds");
                offset += pts.rows();
                let fv = motion_feature_vector(&m).expect("valid memberships");
                db.insert(r.id, r.class, fv.into_vec()).expect("fits dim");
            }
            evaluate_queries(queries, &window, cfg, &scaler, &db, move |point| {
                model.memberships_for(point).expect("fitted dims")
            })
        }
        ClusterKind::GustafsonKessel => {
            let model = gk_fit(
                &stacked,
                &GkConfig {
                    seed: cfg.seed,
                    ..GkConfig::new(cfg.clusters)
                },
            )
            .expect("gk converges");
            let mut offset = 0;
            for (r, pts) in train.iter().zip(&train_points) {
                let m = model
                    .memberships
                    .slice_rows(offset, offset + pts.rows())
                    .expect("in bounds");
                offset += pts.rows();
                let fv = motion_feature_vector(&m).expect("valid memberships");
                db.insert(r.id, r.class, fv.into_vec()).expect("fits dim");
            }
            evaluate_queries(queries, &window, cfg, &scaler, &db, move |point| {
                model.memberships_for(point).expect("fitted dims")
            })
        }
        ClusterKind::Hard => {
            let model = kmeans_fit(
                &stacked,
                &KMeansConfig {
                    seed: cfg.seed,
                    ..KMeansConfig::new(cfg.clusters)
                },
            )
            .expect("kmeans converges");
            let mut offset = 0;
            let c = cfg.clusters;
            for (r, pts) in train.iter().zip(&train_points) {
                // One-hot membership rows from the hard labels.
                let mut m = Matrix::zeros(pts.rows(), c);
                for w in 0..pts.rows() {
                    m[(w, model.labels[offset + w])] = 1.0;
                }
                offset += pts.rows();
                let fv = hard_histogram_vector(&m).expect("valid histogram");
                db.insert(r.id, r.class, fv.into_vec()).expect("fits dim");
            }
            let centers = model.centers.clone();
            evaluate_queries(queries, &window, cfg, &scaler, &db, move |point| {
                // One-hot membership of the nearest center.
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for k in 0..centers.rows() {
                    let d = sq_euclidean(centers.row(k), point);
                    if d < best_d {
                        best_d = d;
                        best = k;
                    }
                }
                let mut u = vec![0.0; centers.rows()];
                u[best] = 1.0;
                u
            })
        }
    }
}

/// Shared query loop: project each query's windows through
/// `membership_fn`, reduce to the variant's motion vector, retrieve k = 5.
fn evaluate_queries(
    queries: &[&MotionRecord],
    window: &WindowSpec,
    cfg: &VariantConfig,
    scaler: &ZScore,
    db: &FeatureDb<MotionClass>,
    membership_fn: impl Fn(&[f64]) -> Vec<f64>,
) -> (f64, f64) {
    let mut wrong = 0usize;
    let mut pcts = Vec::with_capacity(queries.len());
    for q in queries {
        let points = variant_points(q, window, cfg);
        let points = scaler.transform(&points).expect("fitted dims");
        let c = db.dim()
            / if matches!(
                cfg.cluster,
                ClusterKind::Fuzzy | ClusterKind::GustafsonKessel
            ) {
                2
            } else {
                1
            };
        let mut memberships = Matrix::zeros(points.rows(), c);
        for w in 0..points.rows() {
            let u = membership_fn(points.row(w));
            memberships.row_mut(w).copy_from_slice(&u);
        }
        let fv = match cfg.cluster {
            ClusterKind::Fuzzy | ClusterKind::GustafsonKessel => {
                motion_feature_vector(&memberships).expect("valid")
            }
            ClusterKind::Hard => hard_histogram_vector(&memberships).expect("valid"),
        };
        let neighbors = knn(db, fv.as_slice(), 5).expect("db non-empty");
        let predicted = classify(&neighbors, |c| *c).expect("neighbours exist");
        if predicted != q.class {
            wrong += 1;
        }
        let labels: Vec<MotionClass> = neighbors.iter().map(|n| n.meta).collect();
        pcts.push(knn_correct_pct(&q.class, &labels));
    }
    (wrong as f64 / queries.len() as f64 * 100.0, mean_pct(&pcts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kinemyo::biosim::{Dataset, DatasetSpec};
    use kinemyo::stratified_split;

    #[test]
    fn variant_default_matches_paper_pipeline_closely() {
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
        let (train, query) = stratified_split(&ds.records, 1);
        let (mis, knn_pct) = evaluate_variant(
            &train,
            &query,
            Limb::RightHand,
            &VariantConfig {
                clusters: 8,
                ..VariantConfig::default()
            },
        );
        assert!((0.0..=100.0).contains(&mis));
        assert!((0.0..=100.0).contains(&knn_pct));
    }

    #[test]
    fn hard_variant_runs() {
        let ds = Dataset::generate(DatasetSpec::hand_default().with_size(1, 3)).unwrap();
        let (train, query) = stratified_split(&ds.records, 1);
        let (mis, _) = evaluate_variant(
            &train,
            &query,
            Limb::RightHand,
            &VariantConfig {
                clusters: 8,
                cluster: ClusterKind::Hard,
                ..VariantConfig::default()
            },
        );
        assert!((0.0..=100.0).contains(&mis));
    }
}
